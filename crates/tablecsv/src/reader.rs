//! High-level CSV reading with the paper's §3.3 parsing & curation rules.
//!
//! [`read_csv`] performs, in order:
//!
//! 1. **Dialect sniffing** (or uses a caller-forced dialect).
//! 2. **Preamble skipping** — leading empty lines and `#`-comment lines.
//! 3. **Header extraction** — the first surviving record is the header row.
//! 4. **Bad-line removal** — empty lines and rows whose field count deviates
//!    from the header width are discarded (and counted).
//! 5. **Trailing-delimiter realignment** — when *all* rows carry exactly one
//!    extra, empty trailing field (or the header carries one extra empty
//!    name), the redundant separator column is removed instead of declaring
//!    every row bad.
//! 6. **Rejection** of files where the bad-line fraction exceeds a threshold,
//!    reproducing the 0.7 % of files the paper could not parse into tables.

use serde::{Deserialize, Serialize};

use crate::{sniff, CsvError, Dialect, Parser};

/// Options controlling [`read_csv`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReadOptions {
    /// Force a dialect instead of sniffing.
    pub dialect: Option<Dialect>,
    /// Maximum tolerated fraction of bad lines before the file is rejected.
    pub max_bad_line_fraction: f64,
    /// Maximum number of records read (guards against adversarial input).
    pub max_rows: usize,
}

impl Default for ReadOptions {
    fn default() -> Self {
        ReadOptions {
            dialect: None,
            max_bad_line_fraction: 0.5,
            max_rows: 1_000_000,
        }
    }
}

/// What happened to each raw row; used for pipeline statistics
/// (`expt_pipeline_rates`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RowFate {
    /// Kept as a data row.
    Kept,
    /// Dropped: empty line.
    EmptyLine,
    /// Dropped: field count deviated from the header width.
    WidthMismatch,
}

/// The result of reading a CSV file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParsedCsv {
    /// Detected (or forced) dialect.
    pub dialect: Dialect,
    /// Header names (first row).
    pub header: Vec<String>,
    /// Data records, all exactly `header.len()` wide.
    pub records: Vec<Vec<String>>,
    /// Number of rows dropped as bad lines.
    pub bad_lines: usize,
    /// Number of preamble lines (comments/empties before the header) skipped.
    /// Comment lines are consumed silently by the parser, so this counts only
    /// the leading *empty* records.
    pub preamble_lines: usize,
    /// Whether trailing-delimiter realignment was applied.
    pub realigned: bool,
}

fn is_blank_record(rec: &[String]) -> bool {
    rec.iter().all(|f| f.trim().is_empty())
}

/// Reads a CSV document applying the GitTables parsing rules. See the module
/// documentation for the exact sequence.
///
/// # Errors
/// * [`CsvError::Empty`] for whitespace-only input,
/// * [`CsvError::UndetectableDialect`] when sniffing fails,
/// * [`CsvError::UnterminatedQuote`] on an unclosed quoted field,
/// * [`CsvError::NoRows`] when nothing but the header survives,
/// * [`CsvError::TooManyBadLines`] when bad rows exceed the threshold.
pub fn read_csv(input: &str, options: &ReadOptions) -> Result<ParsedCsv, CsvError> {
    // Strip a UTF-8 byte-order mark; exported CSVs from Windows tooling
    // commonly carry one and it must not become part of the first header.
    let input = input.strip_prefix('\u{feff}').unwrap_or(input);
    if input.trim().is_empty() {
        return Err(CsvError::Empty);
    }
    let dialect = match options.dialect {
        Some(d) => d,
        None => sniff(input).ok_or(CsvError::UndetectableDialect)?,
    };
    let mut parser = Parser::new(input, dialect);

    // Preamble: skip leading blank records (comments are eaten by the parser).
    let mut preamble_lines = 0usize;
    let header = loop {
        match parser.next_record()? {
            None => return Err(CsvError::NoRows),
            Some(rec) if is_blank_record(&rec) => preamble_lines += 1,
            Some(rec) => break rec,
        }
    };
    let width = header.len();

    let mut raw_rows: Vec<Vec<String>> = Vec::new();
    let mut bad_lines = 0usize;
    let mut empty_lines = 0usize;
    while let Some(rec) = parser.next_record()? {
        if raw_rows.len() >= options.max_rows {
            break;
        }
        if is_blank_record(&rec) {
            empty_lines += 1;
            continue;
        }
        raw_rows.push(rec);
    }

    // Trailing-delimiter realignment (paper §3.3): all data rows one wider
    // than the header with an empty last field ⇒ drop that field; or header
    // one wider than all rows with an empty last name ⇒ drop that name.
    let mut header = header;
    let mut realigned = false;
    if !raw_rows.is_empty() {
        let all_one_wider = raw_rows
            .iter()
            .all(|r| r.len() == width + 1 && r.last().is_some_and(|f| f.trim().is_empty()));
        if all_one_wider {
            for r in &mut raw_rows {
                r.pop();
            }
            realigned = true;
        } else if width >= 2
            && header.last().is_some_and(|h| h.trim().is_empty())
            && raw_rows.iter().all(|r| r.len() == width - 1)
        {
            header.pop();
            realigned = true;
        }
    }
    let width = header.len();

    // Bad-line removal: rows whose width still deviates.
    let mut records = Vec::with_capacity(raw_rows.len());
    for rec in raw_rows {
        if rec.len() == width {
            records.push(rec);
        } else {
            bad_lines += 1;
        }
    }
    bad_lines += empty_lines;

    let total = records.len() + bad_lines;
    if total > 0 && bad_lines as f64 / total as f64 > options.max_bad_line_fraction {
        return Err(CsvError::TooManyBadLines {
            bad: bad_lines,
            total,
        });
    }
    if records.is_empty() {
        return Err(CsvError::NoRows);
    }
    Ok(ParsedCsv {
        dialect,
        header,
        records,
        bad_lines,
        preamble_lines,
        realigned,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read(s: &str) -> ParsedCsv {
        read_csv(s, &ReadOptions::default()).unwrap()
    }

    #[test]
    fn basic() {
        let p = read("a,b\n1,2\n3,4\n");
        assert_eq!(p.header, vec!["a", "b"]);
        assert_eq!(p.records.len(), 2);
        assert_eq!(p.bad_lines, 0);
    }

    #[test]
    fn preamble_comments_and_blanks() {
        let p = read("# generated\n\n# more\na,b\n1,2\n");
        assert_eq!(p.header, vec!["a", "b"]);
        assert_eq!(p.preamble_lines, 1); // the blank line
        assert_eq!(p.records.len(), 1);
    }

    #[test]
    fn bad_lines_dropped() {
        let p = read("a,b\n1,2\n1,2,3\nonly_one\n3,4\n");
        assert_eq!(p.records.len(), 2);
        assert_eq!(p.bad_lines, 2);
    }

    #[test]
    fn interior_empty_lines_counted_bad() {
        let p = read("a,b\n1,2\n\n3,4\n");
        assert_eq!(p.records.len(), 2);
        assert_eq!(p.bad_lines, 1);
    }

    #[test]
    fn trailing_delimiter_realignment_rows() {
        // Every data row ends with a redundant separator.
        let p = read("a,b\n1,2,\n3,4,\n");
        assert!(p.realigned);
        assert_eq!(p.records, vec![vec!["1", "2"], vec!["3", "4"]]);
        assert_eq!(p.bad_lines, 0);
    }

    #[test]
    fn trailing_delimiter_realignment_header() {
        // Header ends with a redundant separator instead.
        let p = read_csv(
            "a,b,\n1,2\n3,4\n",
            &ReadOptions {
                dialect: Some(Dialect::default()),
                ..Default::default()
            },
        )
        .unwrap();
        assert!(p.realigned);
        assert_eq!(p.header, vec!["a", "b"]);
        assert_eq!(p.records.len(), 2);
    }

    #[test]
    fn no_realignment_when_inconsistent() {
        // Only one of two rows has the trailing separator: that row is bad.
        let p = read("a,b\n1,2,\n3,4\n");
        assert!(!p.realigned);
        assert_eq!(p.records.len(), 1);
        assert_eq!(p.bad_lines, 1);
    }

    #[test]
    fn too_many_bad_lines_rejected() {
        let opts = ReadOptions {
            dialect: Some(Dialect::default()),
            ..Default::default()
        };
        let err = read_csv("a,b\n1\n2\n3\n1,2\n", &opts).unwrap_err();
        assert!(matches!(
            err,
            CsvError::TooManyBadLines { bad: 3, total: 4 }
        ));
    }

    #[test]
    fn empty_input_rejected() {
        assert_eq!(
            read_csv("", &ReadOptions::default()).unwrap_err(),
            CsvError::Empty
        );
        assert_eq!(
            read_csv("  \n ", &ReadOptions::default()).unwrap_err(),
            CsvError::Empty
        );
    }

    #[test]
    fn header_only_rejected() {
        let err = read_csv("a,b\n", &ReadOptions::default()).unwrap_err();
        assert_eq!(err, CsvError::NoRows);
    }

    #[test]
    fn forced_dialect() {
        let opts = ReadOptions {
            dialect: Some(Dialect::semicolon()),
            ..Default::default()
        };
        let p = read_csv("a;b\n1;2\n", &opts).unwrap();
        assert_eq!(p.header, vec!["a", "b"]);
    }

    #[test]
    fn sniffed_semicolon() {
        let p = read("x;y;z\n1;2;3\n4;5;6\n");
        assert_eq!(p.dialect.delimiter, b';');
        assert_eq!(p.records.len(), 2);
    }

    #[test]
    fn max_rows_cap() {
        let mut s = String::from("a,b\n");
        for i in 0..100 {
            s.push_str(&format!("{i},{i}\n"));
        }
        let opts = ReadOptions {
            max_rows: 10,
            ..Default::default()
        };
        let p = read_csv(&s, &opts).unwrap();
        assert_eq!(p.records.len(), 10);
    }

    #[test]
    fn utf8_bom_stripped() {
        let p = read("\u{feff}id,name\n1,a\n2,b\n");
        assert_eq!(p.header[0], "id");
        assert_eq!(p.records.len(), 2);
    }

    #[test]
    fn quoted_fields_survive() {
        let p = read("name,notes\n\"Doe, Jane\",\"says \"\"hi\"\"\"\nBob,ok\n");
        assert_eq!(p.records[0][0], "Doe, Jane");
        assert_eq!(p.records[0][1], "says \"hi\"");
    }
}
