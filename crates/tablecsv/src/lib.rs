//! From-scratch CSV parsing substrate for the GitTables reproduction.
//!
//! The GitTables pipeline (paper §3.3) parses CSV files with the Pandas reader
//! plus Python's `Sniffer` for delimiter detection, with custom handling of
//! comment preambles, "bad lines", and trailing-delimiter misalignment. This
//! crate reimplements that functional contract:
//!
//! * [`Sniffer`] infers the CSV *dialect* (delimiter and quote character) from
//!   a sample, by scoring row-shape consistency across candidate delimiters —
//!   the same idea as Python's `csv.Sniffer`.
//! * [`Parser`] is a streaming RFC-4180-style record reader supporting quoted
//!   fields, embedded delimiters/newlines, doubled-quote escapes, CR/LF/CRLF
//!   line endings, and comment lines.
//! * [`read_csv`] combines both with the paper's curation rules: preamble
//!   skipping (empty lines / `#` comments), bad-line removal, and realignment
//!   of rows that carry redundant trailing separators.
//!
//! # Example
//!
//! ```
//! let data = "# exported 2021-06-14\nid;name;price\n1;ant;0.5\n2;bee;1.5\n";
//! let parsed = gittables_tablecsv::read_csv(data, &Default::default()).unwrap();
//! assert_eq!(parsed.dialect.delimiter, b';');
//! assert_eq!(parsed.header, vec!["id", "name", "price"]);
//! assert_eq!(parsed.records.len(), 2);
//! ```

#![warn(missing_docs)]

pub mod dialect;
pub mod error;
pub mod parser;
pub mod reader;
pub mod scan;
pub mod sniffer;
pub mod writer;

pub use dialect::Dialect;
pub use error::CsvError;
pub use parser::{Parser, RawRecord};
pub use reader::{read_csv, read_csv_columns, ParsedColumns, ParsedCsv, ReadOptions, RowFate};
pub use sniffer::{sniff, sniff_naive, Sniffer};
pub use writer::write_csv;
