//! Hand-rolled `memchr`-style byte scanning.
//!
//! The container has no crate registry, so the classic `memchr` crate is
//! reimplemented here with the same SWAR (SIMD-within-a-register) technique:
//! the haystack is walked one machine word at a time and a branch-free
//! zero-byte test locates candidate positions, so the record parser scans
//! unquoted spans for delimiter/quote/newline in one pass instead of a
//! per-byte state machine.

const LO: u64 = 0x0101_0101_0101_0101;
const HI: u64 = 0x8080_8080_8080_8080;

/// Broadcasts a byte into every lane of a word.
#[inline]
const fn splat(b: u8) -> u64 {
    LO * b as u64
}

/// Word with the high bit set in every lane that held a zero byte
/// (Mycroft's classic zero-in-word test; no false negatives, and false
/// positives are impossible for the post-XOR pattern used here).
#[inline]
const fn zero_lanes(x: u64) -> u64 {
    x.wrapping_sub(LO) & !x & HI
}

/// Index of the first byte equal to `n1` in `hay`.
#[inline]
#[must_use]
pub fn memchr(n1: u8, hay: &[u8]) -> Option<usize> {
    let s1 = splat(n1);
    let mut chunks = hay.chunks_exact(8);
    let mut offset = 0;
    for chunk in &mut chunks {
        let w = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        let hit = zero_lanes(w ^ s1);
        if hit != 0 {
            return Some(offset + (hit.trailing_zeros() / 8) as usize);
        }
        offset += 8;
    }
    chunks
        .remainder()
        .iter()
        .position(|&b| b == n1)
        .map(|i| offset + i)
}

/// Index of the first byte equal to `n1` or `n2` in `hay`.
#[inline]
#[must_use]
pub fn memchr2(n1: u8, n2: u8, hay: &[u8]) -> Option<usize> {
    let (s1, s2) = (splat(n1), splat(n2));
    let mut chunks = hay.chunks_exact(8);
    let mut offset = 0;
    for chunk in &mut chunks {
        let w = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        let hit = zero_lanes(w ^ s1) | zero_lanes(w ^ s2);
        if hit != 0 {
            return Some(offset + (hit.trailing_zeros() / 8) as usize);
        }
        offset += 8;
    }
    chunks
        .remainder()
        .iter()
        .position(|&b| b == n1 || b == n2)
        .map(|i| offset + i)
}

/// Index of the first byte equal to `n1`, `n2`, or `n3` in `hay`.
#[inline]
#[must_use]
pub fn memchr3(n1: u8, n2: u8, n3: u8, hay: &[u8]) -> Option<usize> {
    let (s1, s2, s3) = (splat(n1), splat(n2), splat(n3));
    let mut chunks = hay.chunks_exact(8);
    let mut offset = 0;
    for chunk in &mut chunks {
        let w = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        let hit = zero_lanes(w ^ s1) | zero_lanes(w ^ s2) | zero_lanes(w ^ s3);
        if hit != 0 {
            return Some(offset + (hit.trailing_zeros() / 8) as usize);
        }
        offset += 8;
    }
    chunks
        .remainder()
        .iter()
        .position(|&b| b == n1 || b == n2 || b == n3)
        .map(|i| offset + i)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Byte-at-a-time oracle.
    fn naive3(n1: u8, n2: u8, n3: u8, hay: &[u8]) -> Option<usize> {
        hay.iter().position(|&b| b == n1 || b == n2 || b == n3)
    }

    #[test]
    fn finds_first_at_every_alignment() {
        let mut hay = vec![b'x'; 41];
        for pos in 0..hay.len() {
            hay[pos] = b',';
            assert_eq!(memchr(b',', &hay), Some(pos), "pos {pos}");
            assert_eq!(memchr2(b',', b'\n', &hay), Some(pos));
            assert_eq!(memchr3(b',', b'\n', b'\r', &hay), Some(pos));
            hay[pos] = b'x';
        }
        assert_eq!(memchr(b',', &hay), None);
        assert_eq!(memchr3(b',', b'\n', b'\r', &hay), None);
    }

    #[test]
    fn matches_naive_on_mixed_input() {
        let hay: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        for (a, b, c) in [(b'a', b'b', b'c'), (0u8, 255u8, 128u8), (9, 10, 13)] {
            for start in [0usize, 1, 3, 7, 8, 9, 250] {
                assert_eq!(
                    memchr3(a, b, c, &hay[start..]),
                    naive3(a, b, c, &hay[start..])
                );
            }
        }
    }

    #[test]
    fn empty_and_short_haystacks() {
        assert_eq!(memchr(b'a', b""), None);
        assert_eq!(memchr(b'a', b"a"), Some(0));
        assert_eq!(memchr2(b'a', b'b', b"xb"), Some(1));
        assert_eq!(memchr3(b'a', b'b', b'c', b"xyzc"), Some(3));
    }

    #[test]
    fn duplicate_needles_allowed() {
        assert_eq!(memchr3(b',', b',', b',', b"ab,cd"), Some(2));
        assert_eq!(memchr2(b'\n', b'\n', b"q\n"), Some(1));
    }
}
