//! CSV dialect detection ("sniffing").
//!
//! Python's `csv.Sniffer` — used by the GitTables pipeline (§3.3) — infers the
//! delimiter by checking which candidate character splits the sample into rows
//! of the most *consistent* width. [`Sniffer`] reimplements that idea:
//!
//! 1. For each candidate delimiter, parse a bounded sample with the full
//!    quote-aware parser.
//! 2. Score the candidate by the fraction of rows whose field count equals the
//!    modal field count, weighted by the modal width (more columns ⇒ more
//!    evidence the character really is a separator).
//! 3. Pick the best-scoring candidate; ties break by candidate priority
//!    (comma > semicolon > tab > pipe > colon).
//!
//! [`sniff_naive`] is the frequency-counting strawman kept for the ablation
//! bench (DESIGN.md §4.1): it picks the most frequent candidate byte, which
//! fails on files where free-text columns contain commas.

use crate::dialect::CANDIDATE_DELIMITERS;
use crate::{Dialect, Parser};

/// Maximum number of sample rows examined when sniffing.
const SAMPLE_ROWS: usize = 64;

/// Dialect sniffer with configurable candidates.
#[derive(Debug, Clone)]
pub struct Sniffer {
    candidates: Vec<u8>,
    sample_rows: usize,
}

impl Default for Sniffer {
    fn default() -> Self {
        Sniffer {
            candidates: CANDIDATE_DELIMITERS.to_vec(),
            sample_rows: SAMPLE_ROWS,
        }
    }
}

/// The outcome of sniffing one candidate delimiter.
#[derive(Debug, Clone, Copy, PartialEq)]
struct CandidateScore {
    delimiter: u8,
    /// Consistency in `[0, 1]`: fraction of sample rows with the modal width.
    consistency: f64,
    /// Modal number of fields per row.
    modal_width: usize,
}

impl Sniffer {
    /// Creates a sniffer with custom candidate delimiters (priority order).
    #[must_use]
    pub fn with_candidates(candidates: &[u8]) -> Self {
        Sniffer {
            candidates: candidates.to_vec(),
            ..Sniffer::default()
        }
    }

    /// Limits the number of sample rows examined.
    #[must_use]
    pub fn with_sample_rows(mut self, rows: usize) -> Self {
        self.sample_rows = rows.max(1);
        self
    }

    fn score(&self, input: &str, delimiter: u8) -> Option<CandidateScore> {
        let dialect = Dialect::with_delimiter(delimiter);
        let mut parser = Parser::new(input, dialect);
        let mut widths = Vec::with_capacity(self.sample_rows);
        for _ in 0..self.sample_rows {
            // Borrowed records: sniffing only needs row shapes, so no field
            // is ever materialized while scoring candidates.
            match parser.next_raw() {
                Ok(Some(rec)) => {
                    // Ignore blank lines for shape statistics.
                    if !(rec.len() == 1 && rec.is_blank()) {
                        widths.push(rec.len());
                    }
                }
                Ok(None) => break,
                // Quote errors under this candidate: heavily penalized but not
                // disqualifying (the real delimiter may still parse cleanly).
                Err(_) => return None,
            }
        }
        if widths.is_empty() {
            return None;
        }
        // Modal width and its frequency.
        let mut counts = std::collections::HashMap::new();
        for &w in &widths {
            *counts.entry(w).or_insert(0usize) += 1;
        }
        let (&modal_width, &modal_count) = counts
            .iter()
            .max_by_key(|(w, c)| (**c, **w))
            .expect("non-empty");
        // A delimiter that never splits anything gives width 1; that is only
        // plausible for genuinely single-column files, so give it a floor
        // score that any real split beats.
        let consistency = modal_count as f64 / widths.len() as f64;
        Some(CandidateScore {
            delimiter,
            consistency,
            modal_width,
        })
    }

    /// Sniffs the dialect of `input`. Returns `None` when no candidate yields
    /// a consistent multi-row shape (e.g. binary junk).
    #[must_use]
    pub fn sniff(&self, input: &str) -> Option<Dialect> {
        if input.trim().is_empty() {
            return None;
        }
        let mut best: Option<(f64, usize, CandidateScore)> = None;
        for (priority, &cand) in self.candidates.iter().enumerate() {
            let Some(score) = self.score(input, cand) else {
                continue;
            };
            // Rank by (splits at all, consistency, modal width, priority).
            let splits = usize::from(score.modal_width > 1);
            let key = (
                splits as f64 * 2.0 + score.consistency * score_weight(score.modal_width),
                usize::MAX - priority,
                score,
            );
            let better = match &best {
                None => true,
                Some((k, p, _)) => (key.0, key.1) > (*k, *p),
            };
            if better {
                best = Some(key);
            }
        }
        best.map(|(_, _, s)| Dialect::with_delimiter(s.delimiter))
    }
}

/// Weight that mildly favours wider consistent tables: a candidate that
/// consistently yields 8 columns is stronger evidence than one yielding 2.
fn score_weight(modal_width: usize) -> f64 {
    1.0 + (modal_width.min(32) as f64).ln() / 8.0
}

/// Sniffs with the default candidate set. See [`Sniffer::sniff`].
#[must_use]
pub fn sniff(input: &str) -> Option<Dialect> {
    Sniffer::default().sniff(input)
}

/// Naive frequency-based sniffing (ablation baseline): picks the candidate
/// byte occurring most often in the sample, ignoring quoting and row shape.
#[must_use]
pub fn sniff_naive(input: &str) -> Option<Dialect> {
    let sample: &str = &input[..input.len().min(4096)];
    let mut best: Option<(usize, u8)> = None;
    for &cand in CANDIDATE_DELIMITERS {
        let count = sample.bytes().filter(|&b| b == cand).count();
        if count > 0 && best.is_none_or(|(c, _)| count > c) {
            best = Some((count, cand));
        }
    }
    best.map(|(_, d)| Dialect::with_delimiter(d))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comma() {
        let d = sniff("a,b,c\n1,2,3\n4,5,6\n").unwrap();
        assert_eq!(d.delimiter, b',');
    }

    #[test]
    fn semicolon() {
        let d = sniff("a;b;c\n1;2;3\n").unwrap();
        assert_eq!(d.delimiter, b';');
    }

    #[test]
    fn tab() {
        let d = sniff("a\tb\n1\t2\n").unwrap();
        assert_eq!(d.delimiter, b'\t');
    }

    #[test]
    fn pipe() {
        let d = sniff("a|b|c\n1|2|3\n").unwrap();
        assert_eq!(d.delimiter, b'|');
    }

    #[test]
    fn delimiter_inside_quotes_not_confused() {
        // Commas appear often inside quoted text but the real separator is ';'.
        let data = "name;notes\n\"a, b, c\";x\n\"d, e, f\";y\n\"g, h\";z\n";
        let d = sniff(data).unwrap();
        assert_eq!(d.delimiter, b';');
        // The naive baseline gets this wrong — documents the ablation claim.
        assert_eq!(sniff_naive(data).unwrap().delimiter, b',');
    }

    #[test]
    fn empty_input() {
        assert!(sniff("").is_none());
        assert!(sniff("   \n  ").is_none());
        assert!(sniff_naive("").is_none());
    }

    #[test]
    fn single_column_file_defaults_to_comma() {
        // No candidate splits; sniffing still succeeds with the priority
        // choice so genuinely single-column files parse.
        let d = sniff("value\n1\n2\n3\n").unwrap();
        assert_eq!(d.delimiter, b',');
    }

    #[test]
    fn prefers_consistent_over_frequent() {
        // ':' appears 6x in the time column; ';' splits consistently 2-wide.
        let data = "time;event\n10:00:01;start\n10:00:02;stop\n10:00:03;start\n";
        let d = sniff(data).unwrap();
        assert_eq!(d.delimiter, b';');
    }

    #[test]
    fn ragged_penalized() {
        // Comma splits into consistent 3 columns; pipe appears once.
        let data = "a,b,c|x\n1,2,3\n4,5,6\n7,8,9\n";
        assert_eq!(sniff(data).unwrap().delimiter, b',');
    }

    #[test]
    fn custom_candidates() {
        let s = Sniffer::with_candidates(b"~");
        let d = s.sniff("a~b\n1~2\n").unwrap();
        assert_eq!(d.delimiter, b'~');
    }

    #[test]
    fn sample_rows_limit() {
        let mut data = String::from("a,b\n");
        for i in 0..1000 {
            data.push_str(&format!("{i},{i}\n"));
        }
        let s = Sniffer::default().with_sample_rows(8);
        assert_eq!(s.sniff(&data).unwrap().delimiter, b',');
    }
}
