//! FastText-style embeddings for the GitTables annotation pipeline.
//!
//! The paper's *semantic annotation* method (§3.4) embeds column names and
//! semantic types with the character-level n-gram FastText model pretrained on
//! Common Crawl, and matches them by cosine similarity; the schema-completion
//! and data-search applications (§5.2–5.3) embed multi-word attributes with
//! the Universal Sentence Encoder. Pretrained weights are an external
//! resource, so this crate implements the same *architecture* with
//! deterministic weights:
//!
//! * [`NgramEmbedder`] — each character n-gram (3..=6, with `<`/`>` word
//!   boundary markers, exactly FastText's scheme) is hashed to a deterministic
//!   pseudo-random unit vector; a word is the mean of its n-gram vectors and a
//!   phrase the mean of its word vectors. Shared sub-words ⇒ high cosine,
//!   which is the property the annotation pipeline exploits (the Fig. 4c peak
//!   at cosine 1 comes from syntactic resemblance).
//! * [`lexicon`] — a built-in synonym lexicon mixes related-word vectors into
//!   each word's embedding, giving genuinely *semantic* similarity between
//!   lexically unrelated terms (`sex` ≈ `gender`), standing in for what the
//!   Common Crawl pretraining provides.
//! * [`SentenceEncoder`] — SIF-weighted mean over token vectors, the USE
//!   substitute used for schemas and search queries.
//! * [`EmbeddingIndex`] — cosine nearest-neighbour search with an optional
//!   inverted n-gram candidate filter (the ablation of DESIGN.md §4.2).
//!
//! # Example
//!
//! ```
//! use gittables_embed::NgramEmbedder;
//!
//! let e = NgramEmbedder::default();
//! let sim_same = e.cosine("birth date", "birth date");
//! let sim_related = e.cosine("birth date", "birthdate");
//! let sim_unrelated = e.cosine("birth date", "voltage");
//! assert!((sim_same - 1.0).abs() < 1e-6);
//! assert!(sim_related > 0.3);
//! assert!(sim_unrelated < sim_related);
//! ```

#![warn(missing_docs)]

pub mod index;
pub mod lexicon;
pub mod ngram;
pub mod sentence;
pub mod vector;

pub use index::{EmbeddingIndex, Neighbor};
pub use ngram::{ngrams, GramBuf, NgramEmbedder};
pub use sentence::SentenceEncoder;
pub use vector::{cosine, dot, norm, normalize};
