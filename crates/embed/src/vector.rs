//! Dense f32 vector operations.

/// Dot product of two equal-length vectors.
///
/// # Panics
/// Debug-asserts equal lengths; in release the shorter length governs.
#[must_use]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean norm.
#[must_use]
pub fn norm(a: &[f32]) -> f32 {
    dot(a, a).sqrt()
}

/// Cosine similarity in `[-1, 1]`; `0.0` when either vector is all-zero.
#[must_use]
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    let na = norm(a);
    let nb = norm(b);
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    (dot(a, b) / (na * nb)).clamp(-1.0, 1.0)
}

/// Normalizes `a` to unit length in place; a zero vector is left unchanged.
pub fn normalize(a: &mut [f32]) {
    let n = norm(a);
    if n > 0.0 {
        for x in a {
            *x /= n;
        }
    }
}

/// Adds `b` into `a`, scaled: `a += scale * b`.
pub fn add_scaled(a: &mut [f32], b: &[f32], scale: f32) {
    debug_assert_eq!(a.len(), b.len());
    for (x, y) in a.iter_mut().zip(b) {
        *x += scale * y;
    }
}

/// Divides `a` by `by` in place (no-op when `by == 0`).
pub fn scale_inv(a: &mut [f32], by: f32) {
    if by != 0.0 {
        for x in a {
            *x /= by;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert!((norm(&[3.0, 4.0]) - 5.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_identical_is_one() {
        let v = [0.3, -0.7, 1.2];
        assert!((cosine(&v, &v) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_orthogonal_is_zero() {
        assert!(cosine(&[1.0, 0.0], &[0.0, 1.0]).abs() < 1e-6);
    }

    #[test]
    fn cosine_opposite_is_minus_one() {
        assert!((cosine(&[1.0, 2.0], &[-1.0, -2.0]) + 1.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_zero_vector() {
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 2.0]), 0.0);
    }

    #[test]
    fn normalize_unit() {
        let mut v = vec![3.0, 4.0];
        normalize(&mut v);
        assert!((norm(&v) - 1.0).abs() < 1e-6);
        let mut z = vec![0.0, 0.0];
        normalize(&mut z);
        assert_eq!(z, vec![0.0, 0.0]);
    }

    #[test]
    fn add_scaled_and_scale_inv() {
        let mut a = vec![1.0, 1.0];
        add_scaled(&mut a, &[2.0, 4.0], 0.5);
        assert_eq!(a, vec![2.0, 3.0]);
        scale_inv(&mut a, 2.0);
        assert_eq!(a, vec![1.0, 1.5]);
        scale_inv(&mut a, 0.0); // no-op
        assert_eq!(a, vec![1.0, 1.5]);
    }
}
