//! Cosine nearest-neighbour search over a fixed label set.
//!
//! The semantic annotator matches every column name against ~2.8 K ontology
//! type embeddings. [`EmbeddingIndex`] supports two strategies:
//!
//! * **brute force** — exact cosine against every label;
//! * **n-gram pruned** — an inverted index from character n-grams to labels
//!   limits the exact cosine computation to labels sharing at least one
//!   n-gram with the query, falling back to brute force when the candidate
//!   set is empty. This is the candidate-pruning ablation of DESIGN.md §4.2.
//!
//! Pruning is lossy in principle (a label with no shared n-gram can still
//! have nonzero cosine via the synonym lexicon), so lexicon synonyms of the
//! query tokens are folded into the candidate probe.
//!
//! Label embeddings live in one contiguous row-major matrix whose rows are
//! L2-pre-normalized, so scoring a candidate is a plain dot product over a
//! flat slice — no per-row pointer chasing, no norm recomputation. Top-k
//! selection is a bounded `select_nth_unstable_by` instead of a full sort,
//! and the candidate probe yields borrowed `&str` grams (no per-query
//! `Vec<String>`).

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::lexicon;
use crate::ngram::{GramBuf, NgramEmbedder};
use crate::vector::{dot, normalize};

/// A search hit: label index and cosine similarity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Neighbor {
    /// Index of the label in the order passed to [`EmbeddingIndex::build`].
    pub index: usize,
    /// Cosine similarity in `[-1, 1]`.
    pub similarity: f32,
}

/// An immutable nearest-neighbour index over label embeddings.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EmbeddingIndex {
    embedder: NgramEmbedder,
    labels: Vec<String>,
    /// Embedding dimensionality (the matrix row stride).
    dim: usize,
    /// Row-major L2-normalized label embeddings; row `i` occupies
    /// `matrix[i * dim .. (i + 1) * dim]`.
    matrix: Vec<f32>,
    /// n-gram → indices of labels containing it.
    inverted: HashMap<String, Vec<u32>>,
}

impl EmbeddingIndex {
    /// Builds an index over `labels` using `embedder`.
    #[must_use]
    pub fn build<S: AsRef<str>>(embedder: NgramEmbedder, labels: &[S]) -> Self {
        let labels: Vec<String> = labels.iter().map(|l| l.as_ref().to_string()).collect();
        let dim = embedder.dim;
        let mut matrix = Vec::with_capacity(labels.len() * dim);
        for label in &labels {
            let mut v = embedder.embed(label);
            // `embed` returns unit (or zero) vectors already; normalizing
            // here makes the invariant local instead of an assumption.
            normalize(&mut v);
            matrix.extend_from_slice(&v);
        }
        let mut inverted: HashMap<String, Vec<u32>> = HashMap::new();
        let mut grams = GramBuf::default();
        for (i, label) in labels.iter().enumerate() {
            let lower = label.to_lowercase();
            for tok in lower.split_whitespace() {
                grams.for_each_gram(tok, embedder.n_min, embedder.n_max.min(4), |gram| {
                    match inverted.get_mut(gram) {
                        Some(ids) => {
                            if ids.last() != Some(&(i as u32)) {
                                ids.push(i as u32);
                            }
                        }
                        None => {
                            inverted.insert(gram.to_string(), vec![i as u32]);
                        }
                    }
                });
            }
        }
        EmbeddingIndex {
            embedder,
            labels,
            dim,
            matrix,
            inverted,
        }
    }

    /// Number of indexed labels.
    #[must_use]
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the index is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// The indexed labels, in insertion order.
    #[must_use]
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// The embedder used to build the index.
    #[must_use]
    pub fn embedder(&self) -> &NgramEmbedder {
        &self.embedder
    }

    /// The unit-normalized query embedding.
    fn query_vector(&self, query: &str) -> Vec<f32> {
        let mut q = self.embedder.embed(query);
        normalize(&mut q);
        q
    }

    /// Cosine of the (unit) query against pre-normalized row `i`: a plain
    /// dot product over the flat matrix slice.
    #[inline]
    fn score(&self, i: usize, q: &[f32]) -> f32 {
        dot(&self.matrix[i * self.dim..(i + 1) * self.dim], q).clamp(-1.0, 1.0)
    }

    /// Exact top-`k` by brute-force cosine.
    #[must_use]
    pub fn nearest_brute(&self, query: &str, k: usize) -> Vec<Neighbor> {
        let q = self.query_vector(query);
        let mut hits: Vec<Neighbor> = (0..self.labels.len())
            .map(|i| Neighbor {
                index: i,
                similarity: self.score(i, &q),
            })
            .collect();
        top_k(&mut hits, k);
        hits
    }

    /// Top-`k` using the inverted n-gram candidate filter; falls back to
    /// brute force when no candidates share an n-gram with the query.
    #[must_use]
    pub fn nearest_pruned(&self, query: &str, k: usize) -> Vec<Neighbor> {
        let candidates = self.candidates(query);
        if candidates.is_empty() {
            return self.nearest_brute(query, k);
        }
        let q = self.query_vector(query);
        let mut hits: Vec<Neighbor> = candidates
            .into_iter()
            .map(|i| Neighbor {
                index: i,
                similarity: self.score(i, &q),
            })
            .collect();
        top_k(&mut hits, k);
        hits
    }

    /// Probes the inverted index with every n-gram of `text` (lowercased,
    /// per token), appending newly seen label indices to `out`.
    fn probe_text(&self, text: &str, grams: &mut GramBuf, seen: &mut [bool], out: &mut Vec<usize>) {
        let lower = text.to_lowercase();
        let (n_min, n_max) = (self.embedder.n_min, self.embedder.n_max.min(4));
        for tok in lower.split_whitespace() {
            grams.for_each_gram(tok, n_min, n_max, |gram| {
                if let Some(ids) = self.inverted.get(gram) {
                    for &i in ids {
                        let i = i as usize;
                        if !seen[i] {
                            seen[i] = true;
                            out.push(i);
                        }
                    }
                }
            });
        }
    }

    /// The candidate label indices sharing an n-gram with the query (or with
    /// a lexicon synonym of one of its tokens), deduplicated.
    #[must_use]
    pub fn candidates(&self, query: &str) -> Vec<usize> {
        let mut grams = GramBuf::default();
        let mut seen = vec![false; self.labels.len()];
        let mut out = Vec::new();
        self.probe_text(query, &mut grams, &mut seen, &mut out);
        for tok in query.split_whitespace() {
            for syn in lexicon::synonyms(tok) {
                self.probe_text(syn, &mut grams, &mut seen, &mut out);
            }
        }
        out
    }
}

/// Truncates `hits` to the top `k` by similarity (descending, index asc
/// ties) using a bounded selection: `select_nth_unstable_by` partitions the
/// top `k` in O(n), then only those `k` are sorted. The comparator is a
/// total order (similarities are never NaN, and the index tiebreak makes
/// keys distinct), so the result is identical to a full sort + truncate.
fn top_k(hits: &mut Vec<Neighbor>, k: usize) {
    let cmp = |a: &Neighbor, b: &Neighbor| {
        b.similarity
            .partial_cmp(&a.similarity)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.index.cmp(&b.index))
    };
    if k == 0 {
        hits.clear();
        return;
    }
    if hits.len() > k {
        hits.select_nth_unstable_by(k - 1, cmp);
        hits.truncate(k);
    }
    hits.sort_by(cmp);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn index() -> EmbeddingIndex {
        EmbeddingIndex::build(
            NgramEmbedder::default(),
            &[
                "id",
                "name",
                "birth date",
                "country",
                "price",
                "order number",
            ],
        )
    }

    #[test]
    fn exact_match_is_top() {
        let idx = index();
        let hits = idx.nearest_brute("birth date", 2);
        assert_eq!(idx.labels()[hits[0].index], "birth date");
        assert!((hits[0].similarity - 1.0).abs() < 1e-5);
    }

    #[test]
    fn pruned_agrees_with_brute_on_exact_match() {
        let idx = index();
        let b = idx.nearest_brute("order number", 1);
        let p = idx.nearest_pruned("order number", 1);
        assert_eq!(b[0].index, p[0].index);
    }

    #[test]
    fn pruned_falls_back_when_no_candidates() {
        let idx = index();
        // Query sharing no n-gram with any label (and no synonyms).
        let hits = idx.nearest_pruned("zzxqwv", 1);
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn k_larger_than_len() {
        let idx = index();
        let hits = idx.nearest_brute("id", 100);
        assert_eq!(hits.len(), idx.len());
    }

    #[test]
    fn candidates_cover_synonyms() {
        let idx = index();
        // "identifier" shares no 3-gram with "id" itself, but the lexicon
        // links them, so "id" must appear among candidates.
        let cands = idx.candidates("identifier");
        assert!(cands.iter().any(|&i| idx.labels()[i] == "id"));
    }

    #[test]
    fn results_sorted_descending() {
        let idx = index();
        let hits = idx.nearest_brute("date of birth", 6);
        for w in hits.windows(2) {
            assert!(w[0].similarity >= w[1].similarity);
        }
    }

    #[test]
    fn empty_index() {
        let idx = EmbeddingIndex::build(NgramEmbedder::default(), &Vec::<String>::new());
        assert!(idx.is_empty());
        assert!(idx.nearest_brute("x", 3).is_empty());
        assert!(idx.nearest_pruned("x", 3).is_empty());
    }

    #[test]
    fn bounded_top_k_equals_full_sort() {
        let idx = index();
        for query in ["id", "birth", "ordr numbr", "pricing"] {
            for k in 1..=idx.len() {
                let bounded = idx.nearest_brute(query, k);
                // Full sort: request everything, then truncate.
                let mut full = idx.nearest_brute(query, idx.len());
                full.truncate(k);
                assert_eq!(bounded, full, "query {query}, k {k}");
            }
        }
    }

    #[test]
    fn top_k_zero_clears() {
        let idx = index();
        assert!(idx.nearest_brute("id", 0).is_empty());
    }
}
