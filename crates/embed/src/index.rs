//! Cosine nearest-neighbour search over a fixed label set.
//!
//! The semantic annotator matches every column name against ~2.8 K ontology
//! type embeddings. [`EmbeddingIndex`] supports two strategies:
//!
//! * **brute force** — exact cosine against every label;
//! * **n-gram pruned** — an inverted index from character n-grams to labels
//!   limits the exact cosine computation to labels sharing at least one
//!   n-gram with the query, falling back to brute force when the candidate
//!   set is empty. This is the candidate-pruning ablation of DESIGN.md §4.2.
//!
//! Pruning is lossy in principle (a label with no shared n-gram can still
//! have nonzero cosine via the synonym lexicon), so lexicon synonyms of the
//! query tokens are folded into the candidate probe.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::lexicon;
use crate::ngram::{ngrams, NgramEmbedder};
use crate::vector::cosine;

/// A search hit: label index and cosine similarity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Neighbor {
    /// Index of the label in the order passed to [`EmbeddingIndex::build`].
    pub index: usize,
    /// Cosine similarity in `[-1, 1]`.
    pub similarity: f32,
}

/// An immutable nearest-neighbour index over label embeddings.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EmbeddingIndex {
    embedder: NgramEmbedder,
    labels: Vec<String>,
    vectors: Vec<Vec<f32>>,
    /// n-gram → indices of labels containing it.
    inverted: HashMap<String, Vec<u32>>,
}

impl EmbeddingIndex {
    /// Builds an index over `labels` using `embedder`.
    #[must_use]
    pub fn build<S: AsRef<str>>(embedder: NgramEmbedder, labels: &[S]) -> Self {
        let labels: Vec<String> = labels.iter().map(|l| l.as_ref().to_string()).collect();
        let vectors: Vec<Vec<f32>> = labels.iter().map(|l| embedder.embed(l)).collect();
        let mut inverted: HashMap<String, Vec<u32>> = HashMap::new();
        for (i, label) in labels.iter().enumerate() {
            for gram in label_grams(&embedder, label) {
                let entry = inverted.entry(gram).or_default();
                if entry.last() != Some(&(i as u32)) {
                    entry.push(i as u32);
                }
            }
        }
        EmbeddingIndex {
            embedder,
            labels,
            vectors,
            inverted,
        }
    }

    /// Number of indexed labels.
    #[must_use]
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the index is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// The indexed labels, in insertion order.
    #[must_use]
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// The embedder used to build the index.
    #[must_use]
    pub fn embedder(&self) -> &NgramEmbedder {
        &self.embedder
    }

    /// Exact top-`k` by brute-force cosine.
    #[must_use]
    pub fn nearest_brute(&self, query: &str, k: usize) -> Vec<Neighbor> {
        let qv = self.embedder.embed(query);
        let mut hits: Vec<Neighbor> = self
            .vectors
            .iter()
            .enumerate()
            .map(|(i, v)| Neighbor {
                index: i,
                similarity: cosine(&qv, v),
            })
            .collect();
        top_k(&mut hits, k);
        hits
    }

    /// Top-`k` using the inverted n-gram candidate filter; falls back to
    /// brute force when no candidates share an n-gram with the query.
    #[must_use]
    pub fn nearest_pruned(&self, query: &str, k: usize) -> Vec<Neighbor> {
        let candidates = self.candidates(query);
        if candidates.is_empty() {
            return self.nearest_brute(query, k);
        }
        let qv = self.embedder.embed(query);
        let mut hits: Vec<Neighbor> = candidates
            .into_iter()
            .map(|i| Neighbor {
                index: i,
                similarity: cosine(&qv, &self.vectors[i]),
            })
            .collect();
        top_k(&mut hits, k);
        hits
    }

    /// The candidate label indices sharing an n-gram with the query (or with
    /// a lexicon synonym of one of its tokens), deduplicated.
    #[must_use]
    pub fn candidates(&self, query: &str) -> Vec<usize> {
        let mut probe: Vec<String> = vec![query.to_lowercase()];
        for tok in query.split_whitespace() {
            for syn in lexicon::synonyms(tok) {
                probe.push(syn.to_string());
            }
        }
        let mut seen = vec![false; self.labels.len()];
        let mut out = Vec::new();
        for text in &probe {
            for gram in label_grams(&self.embedder, text) {
                if let Some(ids) = self.inverted.get(&gram) {
                    for &i in ids {
                        let i = i as usize;
                        if !seen[i] {
                            seen[i] = true;
                            out.push(i);
                        }
                    }
                }
            }
        }
        out
    }
}

/// N-grams of every token of a label, lowercased.
fn label_grams(embedder: &NgramEmbedder, label: &str) -> Vec<String> {
    let mut out = Vec::new();
    for tok in label.to_lowercase().split_whitespace() {
        out.extend(ngrams(tok, embedder.n_min, embedder.n_max.min(4)));
    }
    out
}

/// Truncates `hits` to the top `k` by similarity (descending, index asc ties).
fn top_k(hits: &mut Vec<Neighbor>, k: usize) {
    hits.sort_by(|a, b| {
        b.similarity
            .partial_cmp(&a.similarity)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.index.cmp(&b.index))
    });
    hits.truncate(k);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn index() -> EmbeddingIndex {
        EmbeddingIndex::build(
            NgramEmbedder::default(),
            &[
                "id",
                "name",
                "birth date",
                "country",
                "price",
                "order number",
            ],
        )
    }

    #[test]
    fn exact_match_is_top() {
        let idx = index();
        let hits = idx.nearest_brute("birth date", 2);
        assert_eq!(idx.labels()[hits[0].index], "birth date");
        assert!((hits[0].similarity - 1.0).abs() < 1e-5);
    }

    #[test]
    fn pruned_agrees_with_brute_on_exact_match() {
        let idx = index();
        let b = idx.nearest_brute("order number", 1);
        let p = idx.nearest_pruned("order number", 1);
        assert_eq!(b[0].index, p[0].index);
    }

    #[test]
    fn pruned_falls_back_when_no_candidates() {
        let idx = index();
        // Query sharing no n-gram with any label (and no synonyms).
        let hits = idx.nearest_pruned("zzxqwv", 1);
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn k_larger_than_len() {
        let idx = index();
        let hits = idx.nearest_brute("id", 100);
        assert_eq!(hits.len(), idx.len());
    }

    #[test]
    fn candidates_cover_synonyms() {
        let idx = index();
        // "identifier" shares no 3-gram with "id" itself, but the lexicon
        // links them, so "id" must appear among candidates.
        let cands = idx.candidates("identifier");
        assert!(cands.iter().any(|&i| idx.labels()[i] == "id"));
    }

    #[test]
    fn results_sorted_descending() {
        let idx = index();
        let hits = idx.nearest_brute("date of birth", 6);
        for w in hits.windows(2) {
            assert!(w[0].similarity >= w[1].similarity);
        }
    }

    #[test]
    fn empty_index() {
        let idx = EmbeddingIndex::build(NgramEmbedder::default(), &Vec::<String>::new());
        assert!(idx.is_empty());
        assert!(idx.nearest_brute("x", 3).is_empty());
        assert!(idx.nearest_pruned("x", 3).is_empty());
    }
}
