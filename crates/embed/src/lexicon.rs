//! Built-in synonym lexicon standing in for distributional semantics.
//!
//! A FastText model pretrained on Common Crawl places genuinely related words
//! (`sex`/`gender`, `cost`/`price`) near each other even when they share no
//! character n-grams. Our deterministic embedder cannot learn that from data,
//! so this module provides the curated relatedness signal instead: words in
//! the same group have each other's vectors mixed into their embeddings (see
//! [`crate::NgramEmbedder::embed_word`]). Groups are drawn from the header
//! vocabulary that GitTables-style CSVs actually use.

/// Synonym groups. Every word in a group is considered related to every other
/// word in the same group.
pub const SYNONYM_GROUPS: &[&[&str]] = &[
    &["id", "identifier", "key", "uid", "uuid", "pk", "no"],
    &["name", "title", "label", "caption"],
    &["sex", "gender"],
    &["cost", "price", "amount", "fee", "charge"],
    &["salary", "wage", "pay", "income"],
    &["country", "nation"],
    &["city", "town", "municipality", "locality"],
    &["state", "province", "region"],
    &["address", "location", "place"],
    &["zip", "zipcode", "postcode", "postal"],
    &["phone", "telephone", "mobile", "tel"],
    &["mail", "email", "e-mail"],
    &["birthday", "birthdate", "dob", "born"],
    &["firstname", "forename", "given"],
    &["surname", "lastname", "family"],
    &[
        "company",
        "organization",
        "organisation",
        "firm",
        "employer",
        "corp",
    ],
    &["job", "occupation", "profession", "role", "position"],
    &["date", "day", "time", "timestamp", "datetime", "when"],
    &["year", "yr"],
    &["quantity", "qty", "count", "num", "number", "total"],
    &[
        "description",
        "desc",
        "summary",
        "abstract",
        "notes",
        "note",
        "comment",
        "remarks",
        "text",
    ],
    &["status", "state", "condition", "stage"],
    &["type", "kind", "category", "class", "group", "genre"],
    &["value", "val", "measure", "measurement", "reading"],
    &["score", "rating", "rank", "grade", "points"],
    &["weight", "mass"],
    &["height", "elevation", "altitude"],
    &["width", "breadth"],
    &["length", "distance"],
    &["speed", "velocity"],
    &["image", "picture", "photo", "img", "thumbnail"],
    &["url", "link", "website", "href", "uri"],
    &["author", "writer", "creator"],
    &["song", "track", "tune"],
    &["film", "movie"],
    &["car", "vehicle", "automobile"],
    &["begin", "start", "from", "open"],
    &["end", "finish", "stop", "until", "close"],
    &["latitude", "lat"],
    &["longitude", "lon", "lng", "long"],
    &["avg", "average", "mean"],
    &["min", "minimum", "lowest"],
    &["max", "maximum", "highest"],
    &["pct", "percent", "percentage", "ratio", "fraction", "share"],
    &["revenue", "sales", "turnover", "earnings"],
    &["customer", "client", "buyer", "purchaser"],
    &["seller", "vendor", "supplier", "merchant"],
    &["user", "member", "account"],
    &["student", "pupil", "learner"],
    &["teacher", "instructor", "professor", "lecturer"],
    &["doctor", "physician"],
    &["species", "organism", "taxon"],
    &["gene", "locus"],
    &["error", "fault", "failure", "defect", "bug"],
    &["size", "dimension"],
    &["code", "abbreviation", "symbol", "ticker"],
    &["currency", "money"],
    &["language", "lang", "locale"],
    &["team", "club", "squad"],
    &["game", "match", "fixture"],
    &["result", "outcome"],
    &["winner", "champion"],
    &["order", "purchase"],
    &["invoice", "bill", "receipt"],
    &["delivery", "shipment", "shipping"],
    &["manager", "supervisor", "boss", "lead"],
    &["department", "division", "unit", "section"],
    &["version", "revision", "release"],
    &["model", "variant"],
    &["brand", "make", "manufacturer"],
    &["parent", "mother", "father"],
    &["child", "kid", "offspring"],
    &["spouse", "partner", "husband", "wife"],
];

/// Returns the synonyms of `word` (lowercased exact match), excluding the
/// word itself. Empty when the word is not in the lexicon.
#[must_use]
pub fn synonyms(word: &str) -> Vec<&'static str> {
    let w = word.to_lowercase();
    let mut out = Vec::new();
    for group in SYNONYM_GROUPS {
        if group.iter().any(|g| *g == w) {
            out.extend(group.iter().copied().filter(|g| *g != w));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_symmetric() {
        assert!(synonyms("sex").contains(&"gender"));
        assert!(synonyms("gender").contains(&"sex"));
    }

    #[test]
    fn case_insensitive() {
        assert!(synonyms("SEX").contains(&"gender"));
    }

    #[test]
    fn unknown_word_empty() {
        assert!(synonyms("zzzunknown").is_empty());
    }

    #[test]
    fn word_in_multiple_groups() {
        // "state" appears in both the state/province and status groups.
        let s = synonyms("state");
        assert!(s.contains(&"province"));
        assert!(s.contains(&"status"));
    }

    #[test]
    fn excludes_self() {
        assert!(!synonyms("id").contains(&"id"));
    }
}
