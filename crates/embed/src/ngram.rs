//! Character n-gram extraction and the deterministic FastText-style embedder.
//!
//! FastText represents a word as the set of its character n-grams between
//! `n_min` and `n_max` characters, with `<` and `>` appended as word boundary
//! markers, plus the full word itself. We reproduce that scheme; instead of
//! trained n-gram vectors we derive each n-gram's vector deterministically
//! from its 64-bit hash (splitmix64-expanded into pseudo-Gaussian
//! coordinates), which preserves the key property the annotation pipeline
//! needs — lexically overlapping strings receive similar vectors — without
//! external weights.

use serde::{Deserialize, Serialize};

use crate::lexicon;
use crate::vector::{add_scaled, cosine, normalize, scale_inv};

/// Extracts FastText-style character n-grams from a single word, including
/// boundary markers and the full `<word>` token.
#[must_use]
pub fn ngrams(word: &str, n_min: usize, n_max: usize) -> Vec<String> {
    let bounded: Vec<char> = std::iter::once('<')
        .chain(word.chars())
        .chain(std::iter::once('>'))
        .collect();
    let mut out = Vec::new();
    for n in n_min..=n_max {
        if n > bounded.len() {
            break;
        }
        for w in bounded.windows(n) {
            out.push(w.iter().collect());
        }
    }
    // The full token (distinguishes the word from its substrings).
    out.push(bounded.iter().collect());
    out
}

/// Reusable scratch for borrowed n-gram iteration: holds the boundary-marked
/// token (`<word>`) and its char-boundary offsets so grams can be yielded as
/// `&str` slices instead of allocating one `String` per gram (the candidate
/// probe of `EmbeddingIndex` runs this for every query).
#[derive(Debug, Default, Clone)]
pub struct GramBuf {
    buf: String,
    bounds: Vec<usize>,
}

impl GramBuf {
    /// Calls `f` with every FastText-style n-gram of `word` — boundary
    /// markers included, full `<word>` token last — in exactly the order
    /// [`ngrams`] returns them, without allocating per gram.
    pub fn for_each_gram(
        &mut self,
        word: &str,
        n_min: usize,
        n_max: usize,
        mut f: impl FnMut(&str),
    ) {
        self.buf.clear();
        self.bounds.clear();
        self.buf.push('<');
        self.buf.push_str(word);
        self.buf.push('>');
        self.bounds.extend(self.buf.char_indices().map(|(i, _)| i));
        self.bounds.push(self.buf.len());
        let nchars = self.bounds.len() - 1;
        for n in n_min..=n_max {
            if n > nchars {
                break;
            }
            for i in 0..=nchars - n {
                f(&self.buf[self.bounds[i]..self.bounds[i + n]]);
            }
        }
        // The full token (distinguishes the word from its substrings).
        f(&self.buf);
    }
}

/// FNV-1a 64-bit hash.
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The deterministic char-n-gram embedder.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NgramEmbedder {
    /// Embedding dimensionality.
    pub dim: usize,
    /// Minimum n-gram length.
    pub n_min: usize,
    /// Maximum n-gram length.
    pub n_max: usize,
    /// Weight with which synonym vectors are mixed into word vectors
    /// (`0.0` disables the lexicon — the pure-syntactic ablation).
    pub synonym_weight: f32,
    /// Seed mixed into every n-gram hash.
    pub seed: u64,
}

impl Default for NgramEmbedder {
    fn default() -> Self {
        NgramEmbedder {
            dim: 64,
            n_min: 3,
            n_max: 6,
            synonym_weight: 0.6,
            seed: 0x6174_7462_6c65, // "attble"
        }
    }
}

impl NgramEmbedder {
    /// An embedder without the synonym lexicon (syntactic-only ablation).
    #[must_use]
    pub fn without_lexicon() -> Self {
        NgramEmbedder {
            synonym_weight: 0.0,
            ..Self::default()
        }
    }

    /// Deterministic pseudo-Gaussian unit vector for one n-gram, written
    /// into a caller-provided scratch buffer of length `dim`.
    fn ngram_vector_into(&self, gram: &str, v: &mut [f32]) {
        debug_assert_eq!(v.len(), self.dim);
        let mut state = fnv1a(gram.as_bytes()) ^ self.seed;
        for x in v.iter_mut() {
            // Sum of 4 uniforms, centered: cheap approximately-Gaussian draw.
            let mut acc = 0.0f32;
            for _ in 0..4 {
                let u = (splitmix64(&mut state) >> 40) as f32 / (1u64 << 24) as f32;
                acc += u;
            }
            *x = acc - 2.0;
        }
        normalize(v);
    }

    /// Embeds a single word: mean of its n-gram vectors, mixed with synonym
    /// word vectors per the lexicon, renormalized to unit length.
    #[must_use]
    pub fn embed_word(&self, word: &str) -> Vec<f32> {
        let mut v = self.embed_word_raw(word);
        if self.synonym_weight > 0.0 {
            let syns = lexicon::synonyms(word);
            if !syns.is_empty() {
                let w = self.synonym_weight / syns.len() as f32;
                for syn in syns {
                    let sv = self.embed_word_raw(syn);
                    add_scaled(&mut v, &sv, w);
                }
            }
        }
        normalize(&mut v);
        v
    }

    /// Word embedding without lexicon mixing. Grams are iterated borrowed
    /// and each gram vector is generated into one reused scratch buffer, so
    /// embedding a word performs no per-gram allocation.
    fn embed_word_raw(&self, word: &str) -> Vec<f32> {
        let word = word.to_lowercase();
        let mut v = vec![0.0f32; self.dim];
        let mut gram_vec = vec![0.0f32; self.dim];
        let mut count = 0usize;
        let mut grams = GramBuf::default();
        grams.for_each_gram(&word, self.n_min, self.n_max, |g| {
            self.ngram_vector_into(g, &mut gram_vec);
            add_scaled(&mut v, &gram_vec, 1.0);
            count += 1;
        });
        scale_inv(&mut v, count as f32);
        normalize(&mut v);
        v
    }

    /// Embeds a phrase (whitespace-tokenized): mean of word vectors,
    /// unit-normalized. Empty/whitespace input yields the zero vector.
    #[must_use]
    pub fn embed(&self, text: &str) -> Vec<f32> {
        let mut v = vec![0.0f32; self.dim];
        let mut n = 0usize;
        for tok in text.split_whitespace() {
            add_scaled(&mut v, &self.embed_word(tok), 1.0);
            n += 1;
        }
        if n > 0 {
            scale_inv(&mut v, n as f32);
            normalize(&mut v);
        }
        v
    }

    /// Cosine similarity between the embeddings of two strings.
    #[must_use]
    pub fn cosine(&self, a: &str, b: &str) -> f32 {
        cosine(&self.embed(a), &self.embed(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ngram_extraction() {
        let g = ngrams("ab", 3, 4);
        // "<ab>": 3-grams "<ab","ab>"; 4-gram "<ab>"; full token "<ab>".
        assert!(g.contains(&"<ab".to_string()));
        assert!(g.contains(&"ab>".to_string()));
        assert_eq!(g.iter().filter(|s| s.as_str() == "<ab>").count(), 2);
    }

    #[test]
    fn ngrams_short_word() {
        // Word shorter than n_min still yields the full token.
        let g = ngrams("a", 3, 6);
        assert_eq!(g, vec!["<a>".to_string(), "<a>".to_string()]);
    }

    #[test]
    fn gram_buf_matches_ngrams() {
        for word in ["ab", "a", "order", "číslo", "日本語id"] {
            for (n_min, n_max) in [(3, 6), (2, 4), (3, 4)] {
                let mut got = Vec::new();
                GramBuf::default().for_each_gram(word, n_min, n_max, |g| got.push(g.to_string()));
                assert_eq!(got, ngrams(word, n_min, n_max), "{word} {n_min}..{n_max}");
            }
        }
    }

    #[test]
    fn fnv_distinct() {
        assert_ne!(fnv1a(b"abc"), fnv1a(b"abd"));
        assert_ne!(fnv1a(b""), fnv1a(b"a"));
    }

    #[test]
    fn identical_strings_cosine_one() {
        let e = NgramEmbedder::default();
        assert!((e.cosine("product id", "product id") - 1.0).abs() < 1e-6);
    }

    #[test]
    fn case_insensitive() {
        let e = NgramEmbedder::default();
        assert!((e.cosine("Product ID", "product id") - 1.0).abs() < 1e-6);
    }

    #[test]
    fn shared_subwords_similar() {
        let e = NgramEmbedder::default();
        let related = e.cosine("order number", "order num");
        let unrelated = e.cosine("order number", "species");
        assert!(related > 0.55, "related = {related}");
        assert!(unrelated < related - 0.2, "unrelated = {unrelated}");
    }

    #[test]
    fn lexicon_makes_synonyms_similar() {
        let with = NgramEmbedder::default();
        let without = NgramEmbedder::without_lexicon();
        let s_with = with.cosine("sex", "gender");
        let s_without = without.cosine("sex", "gender");
        assert!(
            s_with > s_without + 0.15,
            "with={s_with}, without={s_without}"
        );
    }

    #[test]
    fn empty_text_zero_vector() {
        let e = NgramEmbedder::default();
        let v = e.embed("   ");
        assert!(v.iter().all(|&x| x == 0.0));
        assert_eq!(e.cosine("", "id"), 0.0);
    }

    #[test]
    fn deterministic_across_instances() {
        let a = NgramEmbedder::default().embed("status code");
        let b = NgramEmbedder::default().embed("status code");
        assert_eq!(a, b);
    }

    #[test]
    fn different_seed_changes_embedding() {
        let a = NgramEmbedder::default();
        let b = NgramEmbedder {
            seed: 42,
            ..NgramEmbedder::default()
        };
        assert_ne!(a.embed("id"), b.embed("id"));
    }

    #[test]
    fn unit_norm() {
        let e = NgramEmbedder::default();
        let v = e.embed("customer address");
        let n = crate::vector::norm(&v);
        assert!((n - 1.0).abs() < 1e-5);
    }
}
