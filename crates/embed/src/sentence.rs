//! SIF-weighted sentence/schema encoder — the Universal Sentence Encoder
//! substitute used by schema completion (§5.2) and data search (§5.3).
//!
//! Smooth Inverse Frequency (Arora et al., 2017) weights each token by
//! `a / (a + p(w))` where `p(w)` is the word's relative frequency; frequent
//! filler words contribute less. We embed tokens with the crate's
//! [`NgramEmbedder`] and use a small built-in frequency table of common
//! header/query filler tokens.

use serde::{Deserialize, Serialize};

use crate::ngram::NgramEmbedder;
use crate::vector::{add_scaled, cosine, normalize};

/// Tokens that are near-ubiquitous in headers and natural-language queries,
/// with hand-set relative frequencies. Anything absent gets `DEFAULT_FREQ`.
const COMMON_TOKENS: &[(&str, f32)] = &[
    ("the", 0.05),
    ("a", 0.04),
    ("an", 0.02),
    ("of", 0.04),
    ("and", 0.04),
    ("or", 0.02),
    ("per", 0.01),
    ("by", 0.015),
    ("in", 0.03),
    ("for", 0.02),
    ("to", 0.03),
    ("with", 0.015),
    ("id", 0.02),
    ("name", 0.02),
    ("date", 0.015),
    ("number", 0.01),
    ("value", 0.01),
    ("type", 0.012),
];

/// Relative frequency assumed for unknown tokens.
const DEFAULT_FREQ: f32 = 0.0005;

/// SIF-weighted sentence encoder over [`NgramEmbedder`] word vectors.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SentenceEncoder {
    embedder: NgramEmbedder,
    /// SIF smoothing constant `a`.
    pub sif_a: f32,
}

impl Default for SentenceEncoder {
    fn default() -> Self {
        SentenceEncoder {
            embedder: NgramEmbedder::default(),
            sif_a: 1e-2,
        }
    }
}

impl SentenceEncoder {
    /// Creates an encoder over a custom embedder.
    #[must_use]
    pub fn new(embedder: NgramEmbedder) -> Self {
        SentenceEncoder {
            embedder,
            sif_a: 1e-2,
        }
    }

    /// The underlying word embedder.
    #[must_use]
    pub fn embedder(&self) -> &NgramEmbedder {
        &self.embedder
    }

    fn token_weight(&self, token: &str) -> f32 {
        let lower = token.to_lowercase();
        let freq = COMMON_TOKENS
            .iter()
            .find(|(t, _)| *t == lower)
            .map_or(DEFAULT_FREQ, |(_, f)| *f);
        self.sif_a / (self.sif_a + freq)
    }

    /// Embeds a sentence / attribute name / query into a unit vector.
    /// Tokenization: split on whitespace and punctuation, keep alphanumerics.
    #[must_use]
    pub fn embed(&self, text: &str) -> Vec<f32> {
        let mut v = vec![0.0f32; self.embedder.dim];
        let mut total_w = 0.0f32;
        for tok in tokenize(text) {
            let w = self.token_weight(tok);
            add_scaled(&mut v, &self.embedder.embed_word(tok), w);
            total_w += w;
        }
        if total_w > 0.0 {
            normalize(&mut v);
        }
        v
    }

    /// Cosine similarity between two encoded texts.
    #[must_use]
    pub fn similarity(&self, a: &str, b: &str) -> f32 {
        cosine(&self.embed(a), &self.embed(b))
    }

    /// Embeds a whole schema (list of attributes): mean of per-attribute
    /// embeddings, unit-normalized. Used by data search (§5.3) where entire
    /// table schemas are compared against queries.
    #[must_use]
    pub fn embed_schema<S: AsRef<str>>(&self, attributes: &[S]) -> Vec<f32> {
        let mut v = vec![0.0f32; self.embedder.dim];
        for a in attributes {
            add_scaled(&mut v, &self.embed(a.as_ref()), 1.0);
        }
        normalize(&mut v);
        v
    }
}

/// Splits into alphanumeric tokens (drops punctuation, preserves digits).
fn tokenize(text: &str) -> impl Iterator<Item = &str> {
    text.split(|c: char| !c.is_alphanumeric())
        .filter(|t| !t.is_empty())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_similarity_one() {
        let e = SentenceEncoder::default();
        assert!((e.similarity("order date", "order date") - 1.0).abs() < 1e-6);
    }

    #[test]
    fn tokenizer_strips_punctuation() {
        let toks: Vec<&str> = tokenize("order_date, requiredDate!").collect();
        assert_eq!(toks, vec!["order", "date", "requiredDate"]);
    }

    #[test]
    fn filler_words_downweighted() {
        let e = SentenceEncoder::default();
        // Adding a filler word should change the embedding less than adding a
        // content word.
        let base = e.embed("sales");
        let with_filler = e.embed("the sales");
        let with_content = e.embed("voltage sales");
        let sim_filler = cosine(&base, &with_filler);
        let sim_content = cosine(&base, &with_content);
        assert!(sim_filler > sim_content, "{sim_filler} vs {sim_content}");
    }

    #[test]
    fn related_attributes_closer_than_unrelated() {
        let e = SentenceEncoder::default();
        let related = e.similarity("order number", "order tracking number");
        let unrelated = e.similarity("order number", "species habitat");
        assert!(related > unrelated + 0.2, "{related} vs {unrelated}");
    }

    #[test]
    fn schema_embedding_unit_norm() {
        let e = SentenceEncoder::default();
        let v = e.embed_schema(&["id", "name", "price"]);
        assert!((crate::vector::norm(&v) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn empty_text_zero() {
        let e = SentenceEncoder::default();
        assert!(e.embed("—!!—").iter().all(|&x| x == 0.0));
    }

    #[test]
    fn schema_similarity_reflects_content() {
        let e = SentenceEncoder::default();
        let orders = e.embed_schema(&["order id", "order date", "total price", "status"]);
        let employees = e.embed_schema(&["emp no", "birth date", "first name", "last name"]);
        let query = e.embed("status and sales amount per product");
        let s_orders = cosine(&query, &orders);
        let s_emp = cosine(&query, &employees);
        assert!(s_orders > s_emp, "orders {s_orders} vs employees {s_emp}");
    }
}
