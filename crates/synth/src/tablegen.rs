//! Materializes a [`SchemaPlan`] into a full table (header + row-major cells).

use rand::Rng;

use crate::schema::SchemaPlan;

/// Missing-value markers rotated through when a cell is dropped.
const MISSING: &[&str] = &["", "nan", "NULL", "NA", "-"];

/// A generated table: header plus row-major records, ready for CSV rendering.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratedTable {
    /// Header names.
    pub header: Vec<String>,
    /// Row-major cell values.
    pub rows: Vec<Vec<String>>,
    /// The plan the table was generated from.
    pub plan: SchemaPlan,
}

/// Fraction of columns that carry *contamination* — occasional cells drawn
/// from a foreign value domain. Real CSV columns are rarely pure (typos,
/// free-text overrides, legacy encodings), which is why the paper's learned
/// models top out well below perfect F1.
const CONTAMINATED_COLUMN_PROB: f64 = 0.25;

/// Per-cell probability of a foreign value within a contaminated column.
const CONTAMINATION_CELL_PROB: f64 = 0.12;

/// Foreign kinds injected into contaminated columns.
const CONTAMINANTS: &[crate::values::ValueKind] = &[
    crate::values::ValueKind::Word,
    crate::values::ValueKind::Text,
    crate::values::ValueKind::Code,
    crate::values::ValueKind::Quantity,
];

/// Generates the cell contents for `plan`. The same `rng` stream drives
/// every cell, so a `(seed, plan)` pair is fully reproducible.
pub fn generate_table<R: Rng>(rng: &mut R, plan: &SchemaPlan) -> GeneratedTable {
    let header: Vec<String> = plan.columns.iter().map(|c| c.name.clone()).collect();
    // Choose one missing marker per column (files tend to be internally
    // consistent about their missing encoding).
    let markers: Vec<&str> = plan
        .columns
        .iter()
        .map(|_| MISSING[rng.gen_range(0..MISSING.len())])
        .collect();
    // Decide contamination per column up front.
    let contaminant: Vec<Option<crate::values::ValueKind>> = plan
        .columns
        .iter()
        .map(|_| {
            rng.gen_bool(CONTAMINATED_COLUMN_PROB)
                .then(|| CONTAMINANTS[rng.gen_range(0..CONTAMINANTS.len())])
        })
        .collect();
    let mut rows = Vec::with_capacity(plan.rows);
    for r in 0..plan.rows {
        let mut row = Vec::with_capacity(plan.columns.len());
        for (c, spec) in plan.columns.iter().enumerate() {
            if spec.missing_prob > 0.0 && rng.gen_bool(spec.missing_prob.min(1.0)) {
                row.push(markers[c].to_string());
            } else if let Some(kind) =
                contaminant[c].filter(|_| rng.gen_bool(CONTAMINATION_CELL_PROB))
            {
                row.push(kind.generate(rng, r));
            } else {
                row.push(spec.kind.generate(rng, r));
            }
        }
        rows.push(row);
    }
    GeneratedTable {
        header,
        rows,
        plan: plan.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Domain, SchemaSampler};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn plan(seed: u64) -> SchemaPlan {
        let mut rng = StdRng::seed_from_u64(seed);
        SchemaSampler::default().sample(&mut rng, "order", Domain::Business)
    }

    #[test]
    fn dimensions_match_plan() {
        let p = plan(1);
        let mut rng = StdRng::seed_from_u64(2);
        let t = generate_table(&mut rng, &p);
        assert_eq!(t.rows.len(), p.rows);
        assert_eq!(t.header.len(), p.columns.len());
        for row in &t.rows {
            assert_eq!(row.len(), p.columns.len());
        }
    }

    #[test]
    fn deterministic() {
        let p = plan(3);
        let mut a = StdRng::seed_from_u64(4);
        let mut b = StdRng::seed_from_u64(4);
        assert_eq!(generate_table(&mut a, &p), generate_table(&mut b, &p));
    }

    #[test]
    fn missing_prob_one_yields_all_missing() {
        let mut p = plan(5);
        for c in &mut p.columns {
            c.missing_prob = 1.0;
        }
        let mut rng = StdRng::seed_from_u64(6);
        let t = generate_table(&mut rng, &p);
        for row in &t.rows {
            for (cell, _) in row.iter().zip(&p.columns) {
                assert!(MISSING.contains(&cell.as_str()), "cell {cell:?}");
            }
        }
    }

    #[test]
    fn missing_prob_zero_yields_no_marker_cells() {
        let mut p = plan(7);
        for c in &mut p.columns {
            c.missing_prob = 0.0;
        }
        let mut rng = StdRng::seed_from_u64(8);
        let t = generate_table(&mut rng, &p);
        for row in &t.rows {
            for cell in row {
                assert!(!cell.is_empty());
            }
        }
    }
}
