//! Deterministic synthetic-data substrate for the GitTables reproduction.
//!
//! The paper's raw material — millions of CSV files in GitHub repositories —
//! is an external resource, so this crate generates a statistically faithful
//! stand-in (see DESIGN.md §1):
//!
//! * [`wordnet`] — an English noun inventory with topic categories and the
//!   offensive-topic exclusion list, driving query topics (paper §3.1 C3).
//! * [`values`] — seeded value generators per semantic domain (names, dates,
//!   countries with the Western skew of Table 6, species, prices, …).
//! * [`schema`] — domain-specific schema templates with GitTables-like
//!   dimension distributions (long-tailed rows ≈ 142, columns ≈ 12).
//! * [`tablegen`] — turns a schema plan into a full table.
//! * [`csvrender`] — renders tables to CSV text through a configurable *mess
//!   model*: delimiter choice, quoting, comment preambles, bad lines,
//!   trailing separators — the defect classes §3.3 curates away.
//! * [`sqlrender`] — renders tables to SQL-dump text in `mysqldump` /
//!   `pg_dump` / `sqlite3 .dump` / ANSI styles, the inverse of the
//!   `tablesql` ingestion path.
//! * [`repo`] — populates simulated repositories with CSV (and optionally
//!   SQL-dump) files, licenses (≈16 % permissive, §3.3) and fork flags.
//! * [`webtable`] — a VizNet/WDC-like *web table* generator (≈17 rows ×
//!   3–5 cols) used as the comparison corpus in §4.2 and Table 7.
//! * [`t2d`] — a T2Dv2-style gold standard with human-labeled DBpedia types
//!   including granularity quirks (`city` vs `location`), for §4.3.
//!
//! All generators take explicit `u64` seeds and are bit-for-bit reproducible.

#![warn(missing_docs)]

pub mod csvrender;
pub mod repo;
pub mod schema;
pub mod sqlrender;
pub mod t2d;
pub mod tablegen;
pub mod values;
pub mod webtable;
pub mod wordnet;

pub use csvrender::{render_csv, MessModel};
pub use repo::{RepoGenerator, RepoSpec, SynthFile};
pub use schema::{ColumnSpec, Domain, SchemaPlan, SchemaSampler};
pub use sqlrender::{render_sql, render_sql_dialect, SqlRenderOptions};
pub use tablegen::generate_table;
pub use values::ValueKind;
pub use webtable::WebTableGenerator;
pub use wordnet::{topics, Topic};
