//! T2Dv2-style gold standard generator for annotation-quality evaluation.
//!
//! T2Dv2 (Ritze et al.) is a hand-labeled subset of WDC WebTables mapping
//! columns to DBpedia properties; §4.3 evaluates the GitTables annotators
//! against it. The generator plants the phenomena the paper's manual review
//! surfaced:
//!
//! * columns whose human label **matches** the header exactly (`city` →
//!   `city`) — both annotators should agree;
//! * columns where the human chose a **less granular** type (header `City`
//!   labeled `location`) — the semantic/syntactic annotators legitimately
//!   disagree while being arguably better (the paper's 47 %-of-errors case);
//! * columns with **paraphrase headers** (`Latin name` labeled `latin name`
//!   but resembling `synonym` matches);
//! * **unlabeled noise** columns.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::values::ValueKind;

/// How the human label relates to the column header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GoldKind {
    /// Human label equals the (normalized) header.
    Exact,
    /// Human label is a superclass of the header's type.
    LessGranular,
    /// Header is a paraphrase of the human label.
    Paraphrase,
}

/// One gold-labeled column.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GoldColumn {
    /// Header as it appears in the table.
    pub header: String,
    /// Cell values.
    pub values: Vec<String>,
    /// The human (T2Dv2) DBpedia label.
    pub gold_label: String,
    /// Relationship class this example was generated as.
    pub kind: GoldKind,
}

/// A gold-labeled benchmark table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GoldTable {
    /// Table identifier.
    pub name: String,
    /// Labeled columns.
    pub columns: Vec<GoldColumn>,
}

/// Templates: `(header, gold label, kind, value generator)`.
const TEMPLATES: &[(&str, &str, GoldKind, ValueKind)] = &[
    ("city", "city", GoldKind::Exact, ValueKind::City),
    ("City", "location", GoldKind::LessGranular, ValueKind::City),
    ("country", "country", GoldKind::Exact, ValueKind::Country),
    (
        "Country",
        "location",
        GoldKind::LessGranular,
        ValueKind::Country,
    ),
    ("name", "name", GoldKind::Exact, ValueKind::FullName),
    (
        "Latin name",
        "latin name",
        GoldKind::Paraphrase,
        ValueKind::Species,
    ),
    ("species", "species", GoldKind::Exact, ValueKind::Species),
    ("birth date", "birth date", GoldKind::Exact, ValueKind::Date),
    ("Born", "birth date", GoldKind::Paraphrase, ValueKind::Date),
    ("year", "year", GoldKind::Exact, ValueKind::Year),
    ("Year", "date", GoldKind::LessGranular, ValueKind::Year),
    ("price", "price", GoldKind::Exact, ValueKind::Price),
    ("Cost", "price", GoldKind::Paraphrase, ValueKind::Price),
    ("title", "title", GoldKind::Exact, ValueKind::Text),
    ("artist", "artist", GoldKind::Exact, ValueKind::FullName),
    ("team", "team", GoldKind::Exact, ValueKind::Word),
    ("Squad", "team", GoldKind::Paraphrase, ValueKind::Word),
    ("capital", "capital", GoldKind::Exact, ValueKind::City),
    ("Capital", "city", GoldKind::LessGranular, ValueKind::City),
    (
        "population",
        "population",
        GoldKind::Exact,
        ValueKind::Count,
    ),
    ("area", "area", GoldKind::Exact, ValueKind::Measurement),
    (
        "elevation",
        "elevation",
        GoldKind::Exact,
        ValueKind::Measurement,
    ),
    ("address", "address", GoldKind::Exact, ValueKind::Address),
    (
        "Location",
        "address",
        GoldKind::LessGranular,
        ValueKind::Address,
    ),
    ("genre", "genre", GoldKind::Exact, ValueKind::Category),
    ("Kind", "genre", GoldKind::Paraphrase, ValueKind::Category),
    ("status", "status", GoldKind::Exact, ValueKind::Status),
    ("date", "date", GoldKind::Exact, ValueKind::Date),
    ("author", "author", GoldKind::Exact, ValueKind::FullName),
    (
        "Writer",
        "author",
        GoldKind::Paraphrase,
        ValueKind::FullName,
    ),
    // Hard cases modelled on real T2Dv2 columns whose human labels use a
    // vocabulary far from the header.
    (
        "Nation",
        "country",
        GoldKind::Paraphrase,
        ValueKind::Country,
    ),
    ("Town", "city", GoldKind::Paraphrase, ValueKind::City),
    (
        "Municipality",
        "location",
        GoldKind::LessGranular,
        ValueKind::City,
    ),
    (
        "Inhabitants",
        "population",
        GoldKind::Paraphrase,
        ValueKind::Count,
    ),
    (
        "Surface",
        "area",
        GoldKind::Paraphrase,
        ValueKind::Measurement,
    ),
    (
        "Height",
        "elevation",
        GoldKind::Paraphrase,
        ValueKind::Measurement,
    ),
    ("Club", "team", GoldKind::Paraphrase, ValueKind::Word),
    (
        "Label",
        "publisher",
        GoldKind::Paraphrase,
        ValueKind::LastName,
    ),
    ("Born", "birth place", GoldKind::Paraphrase, ValueKind::City),
    ("Period", "year", GoldKind::LessGranular, ValueKind::Year),
    (
        "Established",
        "founding date",
        GoldKind::Paraphrase,
        ValueKind::Year,
    ),
    (
        "Headquarters",
        "location",
        GoldKind::Paraphrase,
        ValueKind::City,
    ),
];

/// Generates a T2Dv2-style benchmark of `n_tables` tables with `rows` rows.
#[must_use]
pub fn generate_benchmark(seed: u64, n_tables: usize, rows: usize) -> Vec<GoldTable> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(n_tables);
    for t in 0..n_tables {
        let ncols = rng.gen_range(2..=5usize);
        let mut cols = Vec::with_capacity(ncols);
        for _ in 0..ncols {
            let (header, gold, kind, vk) = TEMPLATES[rng.gen_range(0..TEMPLATES.len())];
            let values = (0..rows).map(|r| vk.generate(&mut rng, r)).collect();
            cols.push(GoldColumn {
                header: header.to_string(),
                values,
                gold_label: gold.to_string(),
                kind,
            });
        }
        out.push(GoldTable {
            name: format!("t2d_{t}"),
            columns: cols,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_shape() {
        let b = generate_benchmark(1, 50, 17);
        assert_eq!(b.len(), 50);
        for t in &b {
            assert!((2..=5).contains(&t.columns.len()));
            for c in &t.columns {
                assert_eq!(c.values.len(), 17);
                assert!(!c.gold_label.is_empty());
            }
        }
    }

    #[test]
    fn contains_all_gold_kinds() {
        let b = generate_benchmark(2, 200, 5);
        let mut exact = false;
        let mut less = false;
        let mut para = false;
        for t in &b {
            for c in &t.columns {
                match c.kind {
                    GoldKind::Exact => exact = true,
                    GoldKind::LessGranular => less = true,
                    GoldKind::Paraphrase => para = true,
                }
            }
        }
        assert!(exact && less && para);
    }

    #[test]
    fn deterministic() {
        let a = generate_benchmark(3, 10, 5);
        let b = generate_benchmark(3, 10, 5);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.columns.len(), y.columns.len());
            for (cx, cy) in x.columns.iter().zip(&y.columns) {
                assert_eq!(cx.values, cy.values);
            }
        }
    }

    #[test]
    fn less_granular_header_differs_from_gold() {
        let b = generate_benchmark(4, 200, 3);
        for t in &b {
            for c in &t.columns {
                if c.kind == GoldKind::LessGranular {
                    assert_ne!(c.header.to_lowercase(), c.gold_label);
                }
            }
        }
    }
}
