//! Renders generated tables to CSV text through a configurable *mess model*.
//!
//! Real CSV files on GitHub are messy (van den Burg et al. 2019, cited in
//! §3.1): mixed delimiters, comment preambles, ragged rows, redundant
//! trailing separators. The [`MessModel`] injects exactly the defect classes
//! the parsing/curation pipeline of §3.3 must survive, at configurable rates,
//! so pipeline-rate experiments can match the paper's percentages (99.3 %
//! parseable, etc.).

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::tablegen::GeneratedTable;

/// Defect-injection configuration for CSV rendering.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MessModel {
    /// Weights for delimiter choice: comma, semicolon, tab, pipe.
    pub delimiter_weights: [u32; 4],
    /// Probability of a comment/metadata preamble before the header.
    pub preamble_prob: f64,
    /// Probability that every row carries a redundant trailing separator.
    pub trailing_sep_prob: f64,
    /// Per-row probability of a "bad line" (truncated or over-long row).
    pub bad_line_prob: f64,
    /// Per-file probability of an interior blank line somewhere.
    pub blank_line_prob: f64,
    /// Probability the file is unparseable garbage (paper: 0.7 % of files).
    pub garbage_prob: f64,
    /// Probability string cells get wrapped in quotes even when unneeded.
    pub gratuitous_quote_prob: f64,
}

impl Default for MessModel {
    fn default() -> Self {
        MessModel {
            // Comma dominates on GitHub; semicolon/tab/pipe follow.
            delimiter_weights: [78, 12, 7, 3],
            preamble_prob: 0.06,
            trailing_sep_prob: 0.03,
            bad_line_prob: 0.004,
            blank_line_prob: 0.02,
            garbage_prob: 0.007,
            gratuitous_quote_prob: 0.05,
        }
    }
}

impl MessModel {
    /// A model that injects no defects (clean RFC-4180 comma CSV).
    #[must_use]
    pub fn clean() -> Self {
        MessModel {
            delimiter_weights: [1, 0, 0, 0],
            preamble_prob: 0.0,
            trailing_sep_prob: 0.0,
            bad_line_prob: 0.0,
            blank_line_prob: 0.0,
            garbage_prob: 0.0,
            gratuitous_quote_prob: 0.0,
        }
    }

    fn pick_delimiter<R: Rng>(&self, rng: &mut R) -> char {
        const DELIMS: [char; 4] = [',', ';', '\t', '|'];
        let total: u32 = self.delimiter_weights.iter().sum();
        let mut pick = rng.gen_range(0..total.max(1));
        for (d, w) in DELIMS.iter().zip(self.delimiter_weights) {
            if pick < w {
                return *d;
            }
            pick -= w;
        }
        ','
    }
}

fn field_needs_quotes(f: &str, delim: char) -> bool {
    f.contains(delim) || f.contains('"') || f.contains('\n') || f.starts_with('#')
}

fn push_field<R: Rng>(out: &mut String, f: &str, delim: char, model: &MessModel, rng: &mut R) {
    let force = !f.is_empty()
        && f.chars().any(|c| c.is_alphabetic())
        && rng.gen_bool(model.gratuitous_quote_prob);
    if field_needs_quotes(f, delim) || force {
        out.push('"');
        for ch in f.chars() {
            if ch == '"' {
                out.push('"');
            }
            out.push(ch);
        }
        out.push('"');
    } else {
        out.push_str(f);
    }
}

/// Renders `table` to CSV text, injecting defects per `model`.
pub fn render_csv<R: Rng>(rng: &mut R, table: &GeneratedTable, model: &MessModel) -> String {
    if rng.gen_bool(model.garbage_prob) {
        // Unparseable content: binary-ish noise without consistent structure.
        let mut s = String::new();
        for _ in 0..rng.gen_range(3..30) {
            for _ in 0..rng.gen_range(1..60) {
                s.push((rng.gen_range(33..127u8)) as char);
            }
            s.push('\n');
        }
        return s;
    }
    let delim = model.pick_delimiter(rng);
    let trailing = rng.gen_bool(model.trailing_sep_prob);
    let mut out = String::new();

    if rng.gen_bool(model.preamble_prob) {
        for _ in 0..rng.gen_range(1..4) {
            if rng.gen_bool(0.7) {
                out.push_str("# exported by data tool v");
                out.push_str(&rng.gen_range(1..9u8).to_string());
                out.push('\n');
            } else {
                out.push('\n');
            }
        }
    }

    let write_row = |rng: &mut R, out: &mut String, cells: &[String], is_header: bool| {
        let bad = !is_header && rng.gen_bool(model.bad_line_prob);
        let cells_to_write: Vec<&String> = if bad && cells.len() > 1 && rng.gen_bool(0.5) {
            // Truncated row.
            cells.iter().take(rng.gen_range(1..cells.len())).collect()
        } else {
            cells.iter().collect()
        };
        for (i, f) in cells_to_write.iter().enumerate() {
            if i > 0 {
                out.push(delim);
            }
            push_field(out, f, delim, model, rng);
        }
        if bad && rng.gen_bool(0.5) {
            // Over-long row: extra junk field.
            out.push(delim);
            out.push_str("EXTRA");
        }
        if trailing {
            out.push(delim);
        }
        out.push('\n');
        if !is_header && rng.gen_bool(model.blank_line_prob / 10.0) {
            out.push('\n');
        }
    };

    // When the whole file carries trailing separators, the header does NOT
    // (that is the paper's misalignment case: values have one extra
    // separator relative to the header).
    {
        let delim_s = delim.to_string();
        let header_join = table
            .header
            .iter()
            .map(|h| {
                if field_needs_quotes(h, delim) {
                    format!("\"{}\"", h.replace('"', "\"\""))
                } else {
                    h.clone()
                }
            })
            .collect::<Vec<_>>()
            .join(&delim_s);
        out.push_str(&header_join);
        out.push('\n');
    }
    for row in &table.rows {
        write_row(rng, &mut out, row, false);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Domain, SchemaSampler};
    use crate::tablegen::generate_table;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn table(seed: u64) -> GeneratedTable {
        let mut rng = StdRng::seed_from_u64(seed);
        let plan = SchemaSampler::default().sample(&mut rng, "order", Domain::Business);
        generate_table(&mut rng, &plan)
    }

    #[test]
    fn clean_render_parses_back_exactly() {
        let t = table(1);
        let mut rng = StdRng::seed_from_u64(2);
        let csv = render_csv(&mut rng, &t, &MessModel::clean());
        let parsed = gittables_tablecsv::read_csv(&csv, &Default::default()).expect("parse back");
        assert_eq!(parsed.header, t.header);
        assert_eq!(parsed.records.len(), t.rows.len());
        assert_eq!(parsed.bad_lines, 0);
    }

    #[test]
    fn trailing_separator_realigns() {
        let t = table(3);
        let model = MessModel {
            trailing_sep_prob: 1.0,
            bad_line_prob: 0.0,
            blank_line_prob: 0.0,
            garbage_prob: 0.0,
            preamble_prob: 0.0,
            ..MessModel::clean()
        };
        let mut rng = StdRng::seed_from_u64(4);
        let csv = render_csv(&mut rng, &t, &model);
        let parsed = gittables_tablecsv::read_csv(&csv, &Default::default()).unwrap();
        assert!(parsed.realigned);
        assert_eq!(parsed.header.len(), t.header.len());
    }

    #[test]
    fn garbage_mode_produces_noise() {
        let t = table(5);
        let model = MessModel {
            garbage_prob: 1.0,
            ..MessModel::default()
        };
        let mut rng = StdRng::seed_from_u64(6);
        let csv = render_csv(&mut rng, &t, &model);
        assert!(!csv.contains(&t.header.join(",")));
    }

    #[test]
    fn preamble_emitted() {
        let t = table(7);
        let model = MessModel {
            preamble_prob: 1.0,
            ..MessModel::clean()
        };
        let mut rng = StdRng::seed_from_u64(8);
        let csv = render_csv(&mut rng, &t, &model);
        assert!(csv.starts_with('#') || csv.starts_with('\n'));
    }

    #[test]
    fn deterministic() {
        let t = table(9);
        let m = MessModel::default();
        let mut a = StdRng::seed_from_u64(10);
        let mut b = StdRng::seed_from_u64(10);
        assert_eq!(render_csv(&mut a, &t, &m), render_csv(&mut b, &t, &m));
    }

    #[test]
    fn default_rates_mostly_parseable() {
        // With the default mess model, ≥95 % of files should parse — the
        // paper reports 99.3 %.
        let m = MessModel::default();
        let mut ok = 0;
        for seed in 0..200 {
            let t = table(seed);
            let mut rng = StdRng::seed_from_u64(1000 + seed);
            let csv = render_csv(&mut rng, &t, &m);
            if gittables_tablecsv::read_csv(&csv, &Default::default()).is_ok() {
                ok += 1;
            }
        }
        assert!(ok >= 190, "only {ok}/200 parsed");
    }
}
