//! WordNet-style noun inventory used to form search topics.
//!
//! The paper selects 67 K unique English nouns from WordNet as query topics
//! (§3.1, criterion C3), excluding offensive topics to avoid the "WordNet
//! effect". We embed a curated noun core organized by topical category plus a
//! systematic compound expansion, yielding thousands of topics with the same
//! role: driving query diversity and linking retrieved tables to a topical
//! domain.

use serde::{Deserialize, Serialize};

use crate::schema::Domain;

/// A query topic: a noun and the content domain its tables come from.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Topic {
    /// The noun used as search term.
    pub noun: String,
    /// The domain of tables this topic tends to retrieve.
    pub domain: Domain,
}

/// Core nouns per domain. The first entries mirror the large topic subsets
/// the paper names ("thing", "object", "id").
pub const NOUN_CORE: &[(&str, Domain)] = &[
    ("thing", Domain::Generic),
    ("object", Domain::Generic),
    ("id", Domain::Generic),
    ("entity", Domain::Generic),
    ("item", Domain::Generic),
    ("record", Domain::Generic),
    ("element", Domain::Science),
    ("value", Domain::Generic),
    ("index", Domain::Generic),
    ("list", Domain::Generic),
    ("table", Domain::Generic),
    ("data", Domain::Generic),
    ("sample", Domain::Science),
    ("result", Domain::Science),
    ("person", Domain::People),
    ("employee", Domain::People),
    ("customer", Domain::Business),
    ("student", Domain::People),
    ("member", Domain::People),
    ("user", Domain::Tech),
    ("account", Domain::Business),
    ("name", Domain::People),
    ("family", Domain::People),
    ("child", Domain::People),
    ("population", Domain::Geo),
    ("city", Domain::Geo),
    ("country", Domain::Geo),
    ("state", Domain::Geo),
    ("region", Domain::Geo),
    ("street", Domain::Geo),
    ("river", Domain::Geo),
    ("mountain", Domain::Geo),
    ("airport", Domain::Geo),
    ("station", Domain::Geo),
    ("location", Domain::Geo),
    ("address", Domain::Geo),
    ("organism", Domain::Science),
    ("species", Domain::Science),
    ("isolate", Domain::Science),
    ("gene", Domain::Science),
    ("protein", Domain::Science),
    ("cell", Domain::Science),
    ("chemical", Domain::Science),
    ("compound", Domain::Science),
    ("experiment", Domain::Science),
    ("measurement", Domain::Science),
    ("sensor", Domain::Tech),
    ("temperature", Domain::Science),
    ("pressure", Domain::Science),
    ("energy", Domain::Science),
    ("weather", Domain::Science),
    ("climate", Domain::Science),
    ("product", Domain::Business),
    ("order", Domain::Business),
    ("invoice", Domain::Business),
    ("payment", Domain::Business),
    ("price", Domain::Business),
    ("sale", Domain::Business),
    ("inventory", Domain::Business),
    ("store", Domain::Business),
    ("company", Domain::Business),
    ("market", Domain::Business),
    ("stock", Domain::Business),
    ("transaction", Domain::Business),
    ("budget", Domain::Business),
    ("revenue", Domain::Business),
    ("contract", Domain::Business),
    ("shipment", Domain::Business),
    ("supplier", Domain::Business),
    ("warehouse", Domain::Business),
    ("song", Domain::Media),
    ("album", Domain::Media),
    ("artist", Domain::Media),
    ("film", Domain::Media),
    ("movie", Domain::Media),
    ("book", Domain::Media),
    ("author", Domain::Media),
    ("article", Domain::Media),
    ("episode", Domain::Media),
    ("lyrics", Domain::Media),
    ("title", Domain::Media),
    ("comment", Domain::Media),
    ("review", Domain::Media),
    ("photo", Domain::Media),
    ("video", Domain::Media),
    ("game", Domain::Sports),
    ("team", Domain::Sports),
    ("player", Domain::Sports),
    ("match", Domain::Sports),
    ("season", Domain::Sports),
    ("league", Domain::Sports),
    ("score", Domain::Sports),
    ("race", Domain::Sports),
    ("rider", Domain::Sports),
    ("tournament", Domain::Sports),
    ("event", Domain::Events),
    ("meeting", Domain::Events),
    ("conference", Domain::Events),
    ("session", Domain::Events),
    ("schedule", Domain::Events),
    ("ticket", Domain::Events),
    ("reservation", Domain::Events),
    ("booking", Domain::Events),
    ("flight", Domain::Events),
    ("trip", Domain::Events),
    ("device", Domain::Tech),
    ("server", Domain::Tech),
    ("network", Domain::Tech),
    ("machine", Domain::Tech),
    ("process", Domain::Tech),
    ("task", Domain::Tech),
    ("log", Domain::Tech),
    ("error", Domain::Tech),
    ("request", Domain::Tech),
    ("response", Domain::Tech),
    ("message", Domain::Tech),
    ("file", Domain::Tech),
    ("line", Domain::Tech),
    ("code", Domain::Tech),
    ("version", Domain::Tech),
    ("release", Domain::Tech),
    ("test", Domain::Tech),
    ("build", Domain::Tech),
    ("commit", Domain::Tech),
    ("issue", Domain::Tech),
    ("status", Domain::Generic),
    ("class", Domain::Generic),
    ("category", Domain::Generic),
    ("group", Domain::Generic),
    ("type", Domain::Generic),
    ("date", Domain::Generic),
    ("time", Domain::Generic),
    ("year", Domain::Generic),
    ("count", Domain::Generic),
    ("number", Domain::Generic),
    ("amount", Domain::Generic),
    ("total", Domain::Generic),
    ("rate", Domain::Generic),
    ("ratio", Domain::Generic),
    ("level", Domain::Generic),
];

/// Adjective-like modifiers used to expand the core into compound topics,
/// mimicking WordNet's compound noun entries.
const MODIFIERS: &[&str] = &[
    "daily",
    "weekly",
    "monthly",
    "annual",
    "global",
    "local",
    "regional",
    "national",
    "public",
    "private",
    "primary",
    "secondary",
    "final",
    "raw",
    "clean",
    "historical",
    "current",
    "active",
    "archived",
    "combined",
];

/// Topics that would retrieve offensive or out-of-scope content; excluded per
/// §3.1's "WordNet effect" mitigation.
pub const EXCLUDED_TOPICS: &[&str] = &[
    "killing", "murder", "weapon", "slur", "assault", "abuse", "torture", "massacre", "genocide",
    "suicide",
];

/// Whether a topic noun is excluded.
#[must_use]
pub fn is_excluded(noun: &str) -> bool {
    let n = noun.to_lowercase();
    EXCLUDED_TOPICS.iter().any(|e| n.contains(e))
}

/// The full topic inventory: core nouns plus modifier compounds, with
/// excluded topics removed. Deterministic order (core first, then compounds
/// in core × modifier order).
#[must_use]
pub fn topics() -> Vec<Topic> {
    let mut out = Vec::with_capacity(NOUN_CORE.len() * (1 + MODIFIERS.len()));
    for (noun, domain) in NOUN_CORE {
        if !is_excluded(noun) {
            out.push(Topic {
                noun: (*noun).to_string(),
                domain: *domain,
            });
        }
    }
    for (noun, domain) in NOUN_CORE {
        for m in MODIFIERS {
            let compound = format!("{m} {noun}");
            if !is_excluded(&compound) {
                out.push(Topic {
                    noun: compound,
                    domain: *domain,
                });
            }
        }
    }
    out
}

/// The first `n` topics (the paper analyses a 97-topic subset of its 67 K).
#[must_use]
pub fn topic_subset(n: usize) -> Vec<Topic> {
    let mut t = topics();
    t.truncate(n);
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn inventory_is_large_and_unique() {
        let t = topics();
        assert!(t.len() > 2000, "got {}", t.len());
        let set: HashSet<&str> = t.iter().map(|t| t.noun.as_str()).collect();
        assert_eq!(set.len(), t.len());
    }

    #[test]
    fn paper_headline_topics_present() {
        let t = topics();
        for noun in ["thing", "object", "id"] {
            assert!(t.iter().any(|x| x.noun == noun), "missing {noun}");
        }
    }

    #[test]
    fn excluded_topics_absent() {
        let t = topics();
        assert!(!t.iter().any(|x| is_excluded(&x.noun)));
        assert!(is_excluded("killing"));
        assert!(is_excluded("mass killing"));
        assert!(!is_excluded("species"));
    }

    #[test]
    fn subset_is_prefix() {
        let all = topics();
        let sub = topic_subset(97);
        assert_eq!(sub.len(), 97);
        assert_eq!(sub[..], all[..97]);
    }

    #[test]
    fn deterministic() {
        assert_eq!(topics(), topics());
    }
}
