//! Renders generated tables to SQL-dump text — the inverse of
//! [`crate::csvrender`] for the SQL ingestion path.
//!
//! Real SQL dumps on GitHub come from a handful of tools whose output is
//! highly stereotyped: `mysqldump` (backticked identifiers, multi-row
//! `INSERT`s, `ENGINE=` suffixes, backslash string escapes), `pg_dump`
//! (`COPY ... FROM stdin` tab blocks, `search_path` preambles, `''`
//! doubling), `sqlite3 .dump` (`PRAGMA` + `BEGIN TRANSACTION` wrappers,
//! one-row `INSERT`s) and hand-written ANSI scripts. Each rendered file
//! carries its tool's fingerprints so `gittables_tablesql`'s sniffer can
//! recover the dialect, and every value is escaped with exactly the
//! semantics that dialect's decoder reverses — rendering then parsing a
//! table is cell-for-cell lossless (empty cell ↔ `NULL`/`\N`).

use gittables_tablesql::SqlDialect;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::tablegen::GeneratedTable;

/// Dump-style configuration for SQL rendering.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SqlRenderOptions {
    /// Weights for dialect choice: MySQL, Postgres, SQLite, ANSI.
    pub dialect_weights: [u32; 4],
    /// Maximum rows per multi-row `INSERT` statement.
    pub rows_per_insert: usize,
    /// Probability a Postgres dump uses `COPY ... FROM stdin` over INSERTs.
    pub copy_prob: f64,
    /// Probability the file is unparseable garbage (mirrors
    /// [`crate::csvrender::MessModel::garbage_prob`]).
    pub garbage_prob: f64,
}

impl Default for SqlRenderOptions {
    fn default() -> Self {
        SqlRenderOptions {
            // mysqldump dominates on GitHub; pg_dump, sqlite3, ANSI follow.
            dialect_weights: [45, 30, 15, 10],
            rows_per_insert: 64,
            copy_prob: 0.8,
            garbage_prob: 0.007,
        }
    }
}

impl SqlRenderOptions {
    /// Options that always render parseable dumps (no garbage files).
    #[must_use]
    pub fn clean() -> Self {
        SqlRenderOptions {
            garbage_prob: 0.0,
            ..SqlRenderOptions::default()
        }
    }

    fn pick_dialect<R: Rng>(&self, rng: &mut R) -> SqlDialect {
        let total: u32 = self.dialect_weights.iter().sum();
        let mut pick = rng.gen_range(0..total.max(1));
        for (d, w) in SqlDialect::ALL.iter().zip(self.dialect_weights) {
            if pick < w {
                return *d;
            }
            pick -= w;
        }
        SqlDialect::Ansi
    }
}

/// Renders `table` as a SQL dump of a table called `name`, picking the
/// dialect by the configured weights.
pub fn render_sql<R: Rng>(
    rng: &mut R,
    name: &str,
    table: &GeneratedTable,
    opts: &SqlRenderOptions,
) -> String {
    if rng.gen_bool(opts.garbage_prob) {
        // Unparseable content, same noise class as the CSV garbage mode.
        let mut s = String::new();
        for _ in 0..rng.gen_range(3..30) {
            for _ in 0..rng.gen_range(1..60) {
                s.push((rng.gen_range(33..127u8)) as char);
            }
            s.push('\n');
        }
        return s;
    }
    let dialect = opts.pick_dialect(rng);
    render_sql_dialect(rng, name, table, dialect, opts)
}

/// Renders `table` in a specific `dialect` (round-trip tests pin the
/// dialect; the pipeline path picks one by weight via [`render_sql`]).
pub fn render_sql_dialect<R: Rng>(
    rng: &mut R,
    name: &str,
    table: &GeneratedTable,
    dialect: SqlDialect,
    opts: &SqlRenderOptions,
) -> String {
    let mut out = String::new();
    let qname = qualified_name(name, dialect);

    // Tool banner — the sniffer's dialect fingerprints live here.
    match dialect {
        SqlDialect::MySql => {
            out.push_str("-- MySQL dump 10.13  Distrib 8.0.32\n--\n");
            out.push_str("/*!40101 SET NAMES utf8mb4 */;\n\n");
            out.push_str("DROP TABLE IF EXISTS ");
            out.push_str(&qname);
            out.push_str(";\n");
        }
        SqlDialect::Postgres => {
            out.push_str("--\n-- PostgreSQL database dump\n--\n\n");
            out.push_str("SET search_path = public, pg_catalog;\n\n");
        }
        SqlDialect::Sqlite => {
            out.push_str("PRAGMA foreign_keys=OFF;\nBEGIN TRANSACTION;\n");
        }
        SqlDialect::Ansi => out.push_str("-- SQL dump\n"),
    }

    push_create(&mut out, &qname, table, dialect);
    out.push_str(match dialect {
        SqlDialect::MySql => " ENGINE=InnoDB DEFAULT CHARSET=utf8mb4;\n\n",
        _ => ";\n\n",
    });

    match dialect {
        SqlDialect::MySql => {
            out.push_str("LOCK TABLES ");
            out.push_str(&qname);
            out.push_str(" WRITE;\n");
            push_inserts(
                &mut out,
                &qname,
                table,
                opts.rows_per_insert,
                false,
                dialect,
            );
            out.push_str("UNLOCK TABLES;\n");
        }
        SqlDialect::Postgres => {
            if rng.gen_bool(opts.copy_prob) {
                push_copy(&mut out, &qname, table, dialect);
            } else {
                // pg_dump --inserts style: one row per statement, with an
                // explicit column list.
                push_inserts(&mut out, &qname, table, 1, true, dialect);
            }
        }
        // sqlite3 .dump emits one-row INSERTs without column lists.
        SqlDialect::Sqlite => push_inserts(&mut out, &qname, table, 1, false, dialect),
        SqlDialect::Ansi => {
            let with_cols = rng.gen_bool(0.5);
            push_inserts(
                &mut out,
                &qname,
                table,
                opts.rows_per_insert,
                with_cols,
                dialect,
            );
        }
    }

    match dialect {
        SqlDialect::Sqlite => out.push_str("COMMIT;\n"),
        SqlDialect::MySql => out.push_str("\n-- Dump completed\n"),
        _ => {}
    }
    out
}

fn push_create(out: &mut String, qname: &str, table: &GeneratedTable, dialect: SqlDialect) {
    out.push_str("CREATE TABLE ");
    out.push_str(qname);
    out.push_str(" (\n");
    for (i, col) in table.header.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str("  ");
        push_ident(out, col, dialect);
        out.push(' ');
        out.push_str(column_type(table, i, dialect));
    }
    out.push_str("\n)");
}

/// A cosmetic column type inferred from the column's cells. The decoder
/// ignores types entirely; this only makes dumps look tool-authored.
fn column_type(table: &GeneratedTable, col: usize, dialect: SqlDialect) -> &'static str {
    let mut any = false;
    let mut ints = true;
    let mut nums = true;
    for row in &table.rows {
        let Some(cell) = row.get(col) else { continue };
        if cell.is_empty() {
            continue;
        }
        any = true;
        if cell.parse::<i64>().is_err() {
            ints = false;
        }
        if !is_bare_number(cell) {
            nums = false;
            break;
        }
    }
    let (int_t, real_t, text_t) = match dialect {
        SqlDialect::MySql => ("int", "double", "text"),
        SqlDialect::Postgres => ("integer", "double precision", "text"),
        SqlDialect::Sqlite => ("INTEGER", "REAL", "TEXT"),
        SqlDialect::Ansi => ("INTEGER", "REAL", "VARCHAR(255)"),
    };
    if any && ints {
        int_t
    } else if any && nums {
        real_t
    } else {
        text_t
    }
}

fn push_inserts(
    out: &mut String,
    qname: &str,
    table: &GeneratedTable,
    batch: usize,
    with_cols: bool,
    dialect: SqlDialect,
) {
    for chunk in table.rows.chunks(batch.max(1)) {
        out.push_str("INSERT INTO ");
        out.push_str(qname);
        if with_cols {
            out.push_str(" (");
            for (i, col) in table.header.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                push_ident(out, col, dialect);
            }
            out.push(')');
        }
        out.push_str(" VALUES");
        for (i, row) in chunk.iter().enumerate() {
            out.push_str(if i == 0 { "\n(" } else { ",\n(" });
            for (j, cell) in row.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                push_value(out, cell, dialect);
            }
            out.push(')');
        }
        out.push_str(";\n");
    }
}

fn push_copy(out: &mut String, qname: &str, table: &GeneratedTable, dialect: SqlDialect) {
    out.push_str("COPY ");
    out.push_str(qname);
    out.push_str(" (");
    for (i, col) in table.header.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        push_ident(out, col, dialect);
    }
    out.push_str(") FROM stdin;\n");
    for row in &table.rows {
        for (j, cell) in row.iter().enumerate() {
            if j > 0 {
                out.push('\t');
            }
            push_copy_field(out, cell);
        }
        out.push('\n');
    }
    out.push_str("\\.\n");
}

fn push_copy_field(out: &mut String, cell: &str) {
    if cell.is_empty() {
        out.push_str("\\N");
        return;
    }
    for ch in cell.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            _ => out.push(ch),
        }
    }
}

fn push_value(out: &mut String, cell: &str, dialect: SqlDialect) {
    if cell.is_empty() {
        out.push_str("NULL");
        return;
    }
    if is_bare_number(cell) {
        out.push_str(cell);
        return;
    }
    out.push('\'');
    for ch in cell.chars() {
        match ch {
            // mysqldump writes \'; every other tool doubles the quote.
            '\'' if dialect.backslash_escapes() => out.push_str("\\'"),
            '\'' => out.push_str("''"),
            '\\' if dialect.backslash_escapes() => out.push_str("\\\\"),
            _ => out.push(ch),
        }
    }
    out.push('\'');
}

/// Whether a cell can be emitted as an unquoted numeric literal and still
/// decode verbatim: only bytes that survive the decoder's raw-token scan,
/// and a real number so the emitted SQL stays tool-plausible.
fn is_bare_number(cell: &str) -> bool {
    !cell.is_empty()
        && cell
            .bytes()
            .all(|b| matches!(b, b'0'..=b'9' | b'.' | b'-' | b'+' | b'e' | b'E'))
        && cell.parse::<f64>().is_ok()
}

fn qualified_name(name: &str, dialect: SqlDialect) -> String {
    let mut out = String::new();
    if dialect == SqlDialect::Postgres {
        out.push_str("public.");
    }
    push_ident(&mut out, name, dialect);
    out
}

fn push_ident(out: &mut String, name: &str, dialect: SqlDialect) {
    if dialect == SqlDialect::MySql {
        // mysqldump backtick-quotes every identifier unconditionally.
        out.push('`');
        for ch in name.chars() {
            if ch == '`' {
                out.push('`');
            }
            out.push(ch);
        }
        out.push('`');
        return;
    }
    if bare_ident_ok(name) {
        out.push_str(name);
    } else {
        out.push('"');
        for ch in name.chars() {
            if ch == '"' {
                out.push('"');
            }
            out.push(ch);
        }
        out.push('"');
    }
}

fn bare_ident_ok(s: &str) -> bool {
    let bytes = s.as_bytes();
    !bytes.is_empty()
        && (bytes[0].is_ascii_alphabetic() || bytes[0] == b'_')
        && bytes
            .iter()
            .all(|&b| b.is_ascii_alphanumeric() || b == b'_')
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Domain, SchemaSampler};
    use crate::tablegen::generate_table;
    use gittables_tablesql::{read_sql_tables, sniff_dialect, SqlReadOptions};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn table(seed: u64) -> GeneratedTable {
        let mut rng = StdRng::seed_from_u64(seed);
        let plan = SchemaSampler::default().sample(&mut rng, "order", Domain::Business);
        generate_table(&mut rng, &plan)
    }

    #[test]
    fn round_trips_in_every_dialect() {
        for seed in 0..8u64 {
            let t = table(seed);
            for dialect in SqlDialect::ALL {
                let mut rng = StdRng::seed_from_u64(100 + seed);
                let sql =
                    render_sql_dialect(&mut rng, "orders", &t, dialect, &SqlRenderOptions::clean());
                let parsed = read_sql_tables(&sql, &SqlReadOptions::default())
                    .unwrap_or_else(|e| panic!("{dialect:?} seed {seed}: {e}"));
                assert_eq!(parsed.tables.len(), 1, "{dialect:?}");
                let st = &parsed.tables[0];
                assert_eq!(st.header, t.header, "{dialect:?} header");
                assert_eq!(st.num_rows(), t.rows.len(), "{dialect:?} rows");
                for (i, row) in t.rows.iter().enumerate() {
                    for (j, cell) in row.iter().enumerate() {
                        assert_eq!(&st.columns[j][i], cell, "{dialect:?} cell ({i},{j})");
                    }
                }
            }
        }
    }

    #[test]
    fn rendered_dialect_is_sniffable() {
        let t = table(42);
        for dialect in SqlDialect::ALL {
            let mut rng = StdRng::seed_from_u64(7);
            let sql =
                render_sql_dialect(&mut rng, "orders", &t, dialect, &SqlRenderOptions::clean());
            assert_eq!(sniff_dialect(&sql), Some(dialect));
        }
    }

    #[test]
    fn postgres_copy_block_used() {
        let t = table(3);
        let mut rng = StdRng::seed_from_u64(4);
        let opts = SqlRenderOptions {
            copy_prob: 1.0,
            ..SqlRenderOptions::clean()
        };
        let sql = render_sql_dialect(&mut rng, "orders", &t, SqlDialect::Postgres, &opts);
        assert!(sql.contains("FROM stdin;"));
        assert!(sql.contains("\n\\.\n"));
    }

    #[test]
    fn garbage_mode_is_rejected_as_not_sql() {
        let t = table(5);
        let opts = SqlRenderOptions {
            garbage_prob: 1.0,
            ..SqlRenderOptions::default()
        };
        let mut rng = StdRng::seed_from_u64(6);
        let sql = render_sql(&mut rng, "orders", &t, &opts);
        assert!(read_sql_tables(&sql, &SqlReadOptions::default()).is_err());
    }

    #[test]
    fn deterministic() {
        let t = table(9);
        let opts = SqlRenderOptions::default();
        let mut a = StdRng::seed_from_u64(10);
        let mut b = StdRng::seed_from_u64(10);
        assert_eq!(
            render_sql(&mut a, "orders", &t, &opts),
            render_sql(&mut b, "orders", &t, &opts)
        );
    }

    #[test]
    fn quoted_identifiers_round_trip() {
        let t = GeneratedTable {
            header: vec!["order id".into(), "".into(), "Name \"x\"".into()],
            rows: vec![vec!["1".into(), "it's".into(), "a`b".into()]],
            plan: table(1).plan,
        };
        for dialect in SqlDialect::ALL {
            let mut rng = StdRng::seed_from_u64(11);
            let sql = render_sql_dialect(&mut rng, "odd", &t, dialect, &SqlRenderOptions::clean());
            let opts = SqlReadOptions {
                dialect: Some(dialect),
                ..SqlReadOptions::default()
            };
            let parsed = read_sql_tables(&sql, &opts).unwrap();
            assert_eq!(parsed.tables[0].header, t.header, "{dialect:?}");
            assert_eq!(parsed.tables[0].columns[1][0], "it's", "{dialect:?}");
        }
    }
}
