//! Domain-specific schema templates and dimension sampling.
//!
//! Tables in GitTables have long-tailed dimension distributions with mean
//! ≈ 142 rows × 12 columns (paper Table 1, Fig. 4a). [`SchemaSampler`] draws
//! dimensions from log-normal distributions matching those means and builds a
//! [`SchemaPlan`] whose columns come from per-[`Domain`] template pools, with
//! realistic header *styling* (snake_case / camelCase / Title Case / UPPER)
//! and the defect classes the curation pipeline must handle: unnamed columns,
//! numeric header names, and social-media columns (§3.3).

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::values::ValueKind;

/// Content domain of a topic / table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Domain {
    /// Orders, products, invoices, companies.
    Business,
    /// Persons, employees, students.
    People,
    /// Places, countries, coordinates.
    Geo,
    /// Biology, measurements, experiments.
    Science,
    /// Music, films, books, articles.
    Media,
    /// Teams, matches, scores.
    Sports,
    /// Meetings, bookings, trips.
    Events,
    /// Servers, logs, builds, issues.
    Tech,
    /// Mixed / unclassified.
    Generic,
}

impl Domain {
    /// All domains, for iteration.
    pub const ALL: [Domain; 9] = [
        Domain::Business,
        Domain::People,
        Domain::Geo,
        Domain::Science,
        Domain::Media,
        Domain::Sports,
        Domain::Events,
        Domain::Tech,
        Domain::Generic,
    ];
}

/// One planned column: header, value kind, and a missing-value probability.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColumnSpec {
    /// Header as it will appear in the CSV (possibly styled or defective).
    pub name: String,
    /// Generator for cell values.
    pub kind: ValueKind,
    /// Per-cell probability of emitting a missing marker.
    pub missing_prob: f64,
}

/// A planned table: topic, dimensions, and column specs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SchemaPlan {
    /// The topic that retrieved this table.
    pub topic: String,
    /// Domain the columns were drawn from.
    pub domain: Domain,
    /// Number of data rows.
    pub rows: usize,
    /// Column specifications.
    pub columns: Vec<ColumnSpec>,
}

/// Header naming styles seen on GitHub CSVs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum HeaderStyle {
    Snake,
    Camel,
    TitleSpace,
    LowerSpace,
    Upper,
}

/// Column template pools per domain: `(base header, kind)`. Base headers are
/// lowercase space-separated; styling is applied per table.
fn pool(domain: Domain) -> &'static [(&'static str, ValueKind)] {
    use ValueKind as V;
    match domain {
        Domain::Business => &[
            ("tax", V::Price),
            ("shipping cost", V::Price),
            ("units sold", V::Count),
            ("reorder level", V::Quantity),
            ("profit", V::Price),
            ("rating", V::Score),
            ("weight", V::Measurement),
            ("volume", V::Measurement),
            ("year", V::Year),
            ("month", V::Quantity),
            ("order id", V::SequentialId),
            ("product id", V::RandomId),
            ("customer id", V::RandomId),
            ("product", V::Product),
            ("product name", V::Product),
            ("category", V::Category),
            ("status", V::Status),
            ("price", V::Price),
            ("total price", V::Price),
            ("unit price", V::Price),
            ("quantity", V::Quantity),
            ("discount", V::Percentage),
            ("order date", V::Date),
            ("required date", V::Date),
            ("shipped date", V::Date),
            ("payment method", V::Word),
            ("invoice number", V::Code),
            ("tracking number", V::Code),
            ("supplier", V::LastName),
            ("warehouse", V::City),
            ("revenue", V::Price),
            ("cost", V::Price),
            ("margin", V::Percentage),
            ("currency", V::Code),
            ("region", V::Country),
            ("store", V::City),
            ("sales", V::Count),
            ("stock", V::Quantity),
        ],
        Domain::People => &[
            ("years of service", V::Quantity),
            ("bonus", V::Price),
            ("performance score", V::Score),
            ("vacation days", V::Quantity),
            ("weight", V::Measurement),
            ("height", V::Measurement),
            ("dependents", V::Quantity),
            ("id", V::SequentialId),
            ("emp no", V::RandomId),
            ("name", V::FullName),
            ("first name", V::FirstName),
            ("last name", V::LastName),
            ("email", V::Email),
            ("gender", V::Gender),
            ("birth date", V::Date),
            ("hire date", V::Date),
            ("age", V::Quantity),
            ("age group", V::AgeGroup),
            ("address", V::Address),
            ("city", V::City),
            ("state", V::City),
            ("country", V::Country),
            ("postal code", V::PostalCode),
            ("phone", V::Phone),
            ("salary", V::Price),
            ("department", V::Word),
            ("title", V::Word),
            ("status", V::Status),
            ("ethnicity", V::Ethnicity),
            ("race", V::Race),
            ("nationality", V::Nationality),
            ("manager", V::FullName),
        ],
        Domain::Geo => &[
            ("gdp", V::Measurement),
            ("growth rate", V::Percentage),
            ("median income", V::Price),
            ("rainfall", V::Measurement),
            ("avg temperature", V::Measurement),
            ("households", V::Count),
            ("rank", V::Quantity),
            ("id", V::SequentialId),
            ("name", V::City),
            ("city", V::City),
            ("country", V::Country),
            ("state", V::City),
            ("region", V::Country),
            ("latitude", V::Latitude),
            ("longitude", V::Longitude),
            ("elevation", V::Measurement),
            ("population", V::Count),
            ("area", V::Measurement),
            ("density", V::Measurement),
            ("postal code", V::PostalCode),
            ("timezone", V::Word),
            ("country code", V::Code),
            ("capital", V::City),
            ("continent", V::Word),
        ],
        Domain::Science => &[
            ("dose", V::Measurement),
            ("response", V::Measurement),
            ("p value", V::Measurement),
            ("n", V::Count),
            ("weight", V::Measurement),
            ("length", V::Measurement),
            ("depth", V::Measurement),
            ("score", V::Score),
            ("isolate id", V::RandomId),
            ("sample id", V::Code),
            ("study", V::Word),
            ("species", V::Species),
            ("organism group", V::OrganismGroup),
            ("genus", V::Word),
            ("country", V::Country),
            ("state", V::City),
            ("gender", V::Gender),
            ("age group", V::AgeGroup),
            ("value", V::Measurement),
            ("measurement", V::Measurement),
            ("temperature", V::Measurement),
            ("pressure", V::Measurement),
            ("concentration", V::Measurement),
            ("ph", V::Measurement),
            ("date", V::Date),
            ("time", V::DateTime),
            ("result", V::Status),
            ("error", V::Measurement),
            ("mean", V::Measurement),
            ("std", V::Measurement),
            ("min", V::Measurement),
            ("max", V::Measurement),
            ("count", V::Count),
            ("replicate", V::Quantity),
        ],
        Domain::Media => &[
            ("plays", V::Count),
            ("downloads", V::Count),
            ("views", V::Count),
            ("likes", V::Count),
            ("price", V::Price),
            ("sales", V::Count),
            ("rank", V::Quantity),
            ("votes", V::Count),
            ("id", V::SequentialId),
            ("title", V::Text),
            ("name", V::Text),
            ("artist", V::FullName),
            ("author", V::FullName),
            ("album", V::Text),
            ("track", V::Quantity),
            ("genre", V::Category),
            ("year", V::Year),
            ("duration", V::Quantity),
            ("rating", V::Score),
            ("lyrics", V::Text),
            ("text", V::Text),
            ("comment", V::Text),
            ("abstract", V::Text),
            ("url", V::Url),
            ("language", V::Word),
            ("publisher", V::LastName),
            ("isbn", V::Code),
            ("pages", V::Quantity),
        ],
        Domain::Sports => &[
            ("assists", V::Quantity),
            ("fouls", V::Quantity),
            ("minutes", V::Quantity),
            ("attendance", V::Count),
            ("salary", V::Price),
            ("height", V::Measurement),
            ("weight", V::Measurement),
            ("average", V::Measurement),
            ("id", V::SequentialId),
            ("player", V::FullName),
            ("team", V::Word),
            ("position", V::Word),
            ("match", V::Code),
            ("season", V::Year),
            ("round", V::Quantity),
            ("score", V::Score),
            ("points", V::Score),
            ("goals", V::Quantity),
            ("wins", V::Quantity),
            ("losses", V::Quantity),
            ("rank", V::Quantity),
            ("date", V::Date),
            ("venue", V::City),
            ("country", V::Country),
            ("time", V::DateTime),
            ("speed", V::Measurement),
            ("distance", V::Measurement),
        ],
        Domain::Events => &[
            ("tickets sold", V::Count),
            ("revenue", V::Price),
            ("duration", V::Quantity),
            ("rating", V::Score),
            ("year", V::Year),
            ("sessions", V::Quantity),
            ("id", V::SequentialId),
            ("event", V::Text),
            ("name", V::Text),
            ("date", V::Date),
            ("start time", V::DateTime),
            ("end time", V::DateTime),
            ("venue", V::City),
            ("city", V::City),
            ("country", V::Country),
            ("organizer", V::FullName),
            ("attendees", V::Count),
            ("capacity", V::Count),
            ("price", V::Price),
            ("status", V::Status),
            ("category", V::Category),
            ("booking code", V::Code),
        ],
        Domain::Tech => &[
            ("latency", V::Measurement),
            ("throughput", V::Measurement),
            ("requests", V::Count),
            ("errors", V::Count),
            ("retries", V::Quantity),
            ("disk", V::Count),
            ("pid", V::RandomId),
            ("port", V::Quantity),
            ("uptime", V::Measurement),
            ("id", V::SequentialId),
            ("line", V::Quantity),
            ("code", V::Code),
            ("status", V::Status),
            ("state", V::Status),
            ("level", V::Word),
            ("message", V::Text),
            ("text", V::Text),
            ("comment", V::Text),
            ("timestamp", V::DateTime),
            ("time", V::DateTime),
            ("date", V::Date),
            ("duration", V::Measurement),
            ("count", V::Count),
            ("value", V::Measurement),
            ("version", V::Code),
            ("host", V::Word),
            ("url", V::Url),
            ("user", V::FirstName),
            ("error rate", V::Percentage),
            ("memory", V::Count),
            ("cpu", V::Percentage),
            ("parent", V::RandomId),
            ("class", V::Word),
            ("type", V::Word),
        ],
        Domain::Generic => &[
            ("amount", V::Price),
            ("quantity", V::Quantity),
            ("number", V::Count),
            ("rate", V::Percentage),
            ("level", V::Quantity),
            ("weight", V::Measurement),
            ("size", V::Count),
            ("length", V::Measurement),
            ("average", V::Measurement),
            ("percent", V::Percentage),
            ("position", V::Quantity),
            ("sum", V::Measurement),
            ("id", V::SequentialId),
            ("name", V::Text),
            ("type", V::Word),
            ("class", V::Word),
            ("category", V::Category),
            ("group", V::Word),
            ("value", V::Measurement),
            ("count", V::Count),
            ("total", V::Count),
            ("status", V::Status),
            ("date", V::Date),
            ("time", V::DateTime),
            ("year", V::Year),
            ("description", V::Text),
            ("note", V::Text),
            ("comment", V::Text),
            ("label", V::Word),
            ("code", V::Code),
            ("key", V::Code),
            ("rank", V::Quantity),
            ("score", V::Score),
            ("min", V::Measurement),
            ("max", V::Measurement),
            ("flag", V::Bool),
            ("url", V::Url),
            ("parent", V::RandomId),
            ("index", V::SequentialId),
            ("state", V::Status),
            ("title", V::Text),
            ("author", V::FullName),
        ],
    }
}

/// Configuration knobs of the sampler; defaults reproduce the paper's
/// corpus-level statistics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SamplerConfig {
    /// Log-normal μ for rows (default gives mean ≈ 142).
    pub rows_mu: f64,
    /// Log-normal σ for rows.
    pub rows_sigma: f64,
    /// Log-normal μ for columns (default gives mean ≈ 12).
    pub cols_mu: f64,
    /// Log-normal σ for columns.
    pub cols_sigma: f64,
    /// Probability that the first column is an id column (C2: `id` is the
    /// dominant database-style type).
    pub id_first_prob: f64,
    /// Probability that a column header is left unspecified (curation rule).
    pub unnamed_prob: f64,
    /// Probability that a column header is a bare number (curation rule).
    pub numeric_header_prob: f64,
    /// Probability that a table carries a social-media column (curation rule).
    pub social_prob: f64,
    /// Base missing-cell probability per column (an exponential draw on top).
    pub missing_prob: f64,
    /// Probability a header is *mutated* away from its canonical label
    /// (abbreviated, concatenated, or context-prefixed). Real GitHub headers
    /// rarely match ontology labels exactly — this drives the paper's
    /// syntactic-26 % vs semantic-71 % annotation-coverage gap.
    pub header_mutation_prob: f64,
    /// Selection weight multiplier for numeric-valued columns (Table 4's
    /// 57.9 % numeric share).
    pub numeric_bias: f64,
    /// Hard caps keeping generated files within the GitHub 438 kB regime.
    pub max_rows: usize,
    /// Maximum number of columns.
    pub max_cols: usize,
}

impl Default for SamplerConfig {
    fn default() -> Self {
        SamplerConfig {
            rows_mu: 4.66,
            rows_sigma: 1.10,
            cols_mu: 2.44,
            cols_sigma: 0.55,
            id_first_prob: 0.55,
            unnamed_prob: 0.015,
            numeric_header_prob: 0.01,
            social_prob: 0.02,
            missing_prob: 0.03,
            header_mutation_prob: 0.75,
            numeric_bias: 1.6,
            max_rows: 4000,
            max_cols: 64,
        }
    }
}

/// Samples [`SchemaPlan`]s for a topic.
#[derive(Debug, Clone, Default)]
pub struct SchemaSampler {
    /// Sampler configuration.
    pub config: SamplerConfig,
}

/// One standard-normal draw (Box–Muller).
fn normal<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Log-normal draw clamped to `[lo, hi]`.
fn lognormal<R: Rng>(rng: &mut R, mu: f64, sigma: f64, lo: usize, hi: usize) -> usize {
    let x = (mu + sigma * normal(rng)).exp();
    (x.round() as usize).clamp(lo, hi)
}

impl SchemaSampler {
    /// Creates a sampler with a custom configuration.
    #[must_use]
    pub fn new(config: SamplerConfig) -> Self {
        SchemaSampler { config }
    }

    /// Samples a schema plan for `topic` in `domain`.
    pub fn sample<R: Rng>(&self, rng: &mut R, topic: &str, domain: Domain) -> SchemaPlan {
        let cfg = &self.config;
        let rows = lognormal(rng, cfg.rows_mu, cfg.rows_sigma, 1, cfg.max_rows);
        let want_cols = lognormal(rng, cfg.cols_mu, cfg.cols_sigma, 1, cfg.max_cols);
        let style = match rng.gen_range(0..5) {
            0 => HeaderStyle::Snake,
            1 => HeaderStyle::Camel,
            2 => HeaderStyle::TitleSpace,
            3 => HeaderStyle::LowerSpace,
            _ => HeaderStyle::Upper,
        };
        let pool = pool(domain);
        let mut columns: Vec<ColumnSpec> = Vec::with_capacity(want_cols);
        let mut used = vec![false; pool.len()];

        if rng.gen_bool(cfg.id_first_prob) {
            // Force an id-like first column.
            if let Some(i) = pool.iter().position(|(n, _)| n.contains("id")) {
                used[i] = true;
                columns.push(self.make_column(rng, pool[i].0, pool[i].1, style));
            }
        }
        // Fill remaining columns without replacement; wrap with suffixed
        // duplicates when the pool is exhausted.
        let mut round = 0usize;
        while columns.len() < want_cols {
            let free: Vec<usize> = (0..pool.len()).filter(|&i| !used[i]).collect();
            if free.is_empty() {
                round += 1;
                used.iter_mut().for_each(|u| *u = false);
                if round > 4 {
                    break;
                }
                continue;
            }
            // Weighted choice: numeric columns get `numeric_bias` weight so
            // the corpus reaches the paper's 57.9 % numeric share (Table 4)
            // even for string-heavy domains.
            let weights: Vec<f64> = free
                .iter()
                .map(|&i| {
                    if pool[i].1.is_numeric() {
                        cfg.numeric_bias
                    } else {
                        1.0
                    }
                })
                .collect();
            let total: f64 = weights.iter().sum();
            let mut pick = rng.gen_range(0.0..total);
            let mut chosen = free.len() - 1;
            for (j, w) in weights.iter().enumerate() {
                if pick < *w {
                    chosen = j;
                    break;
                }
                pick -= w;
            }
            let i = free[chosen];
            used[i] = true;
            let (base, kind) = pool[i];
            let name = if round == 0 {
                base.to_string()
            } else {
                format!("{base} {round}")
            };
            columns.push(self.make_column(rng, &name, kind, style));
        }

        // Defect injection.
        for col in &mut columns {
            if rng.gen_bool(cfg.unnamed_prob) {
                col.name = String::new();
            } else if rng.gen_bool(cfg.numeric_header_prob) {
                col.name = rng.gen_range(0..50u32).to_string();
            }
        }
        if rng.gen_bool(cfg.social_prob) && !columns.is_empty() {
            let i = rng.gen_range(0..columns.len());
            let social = ["twitter handle", "tweet", "reddit user", "facebook url"];
            columns[i].name = social[rng.gen_range(0..social.len())].to_string();
            columns[i].kind = ValueKind::Word;
        }

        SchemaPlan {
            topic: topic.to_string(),
            domain,
            rows,
            columns,
        }
    }

    fn make_column<R: Rng>(
        &self,
        rng: &mut R,
        base: &str,
        kind: ValueKind,
        style: HeaderStyle,
    ) -> ColumnSpec {
        // Missing probability: mostly near the base rate, occasionally high
        // (columns like Fig. 2's all-`nan` "State").
        let missing_prob = if rng.gen_bool(0.03) {
            rng.gen_range(0.5..1.0)
        } else {
            self.config.missing_prob * rng.gen_range(0.0..2.0)
        };
        // Ubiquitous database headers are written canonically far more often
        // than domain-specific ones (`id` is the single most common header on
        // GitHub and the paper's dominant semantic type), so they get a
        // reduced mutation probability.
        let p = if CANONICAL_HEADERS.contains(&base) {
            self.config.header_mutation_prob * 0.22
        } else {
            self.config.header_mutation_prob
        };
        let base = if rng.gen_bool(p) {
            mutate_header(rng, base)
        } else {
            base.to_string()
        };
        ColumnSpec {
            name: style_header(&base, style),
            kind,
            missing_prob,
        }
    }
}

/// Headers so conventional that projects rarely rename them; they keep
/// their canonical spelling most of the time (driving `id`'s dominance in
/// the paper's Fig. 5).
const CANONICAL_HEADERS: &[&str] = &[
    "id", "name", "date", "type", "status", "year", "time", "code", "value", "count", "total",
    "state", "title", "url", "key", "label",
];

/// Common abbreviations seen in real database headers.
const ABBREVIATIONS: &[(&str, &str)] = &[
    ("quantity", "qty"),
    ("number", "no"),
    ("average", "avg"),
    ("minimum", "min"),
    ("maximum", "max"),
    ("amount", "amt"),
    ("description", "desc"),
    ("account", "acct"),
    ("address", "addr"),
    ("department", "dept"),
    ("employee", "emp"),
    ("customer", "cust"),
    ("product", "prod"),
    ("reference", "ref"),
    ("percent", "pct"),
    ("temperature", "temp"),
    ("message", "msg"),
    ("identifier", "id"),
    ("position", "pos"),
    ("category", "cat"),
    ("organization", "org"),
    ("manager", "mgr"),
    ("required", "req"),
    ("latitude", "lat"),
    ("longitude", "lon"),
    ("value", "val"),
    ("measurement", "meas"),
    ("status", "stat"),
    ("revenue", "rev"),
];

/// Mutates a canonical header into a realistic variant:
/// word abbreviation, word concatenation, vowel stripping, or truncation.
fn mutate_header<R: Rng>(rng: &mut R, base: &str) -> String {
    use crate::values::{uniform, WORDS};
    let out = mutate_header_inner(rng, base);
    if out == base {
        // The drawn branch was a no-op for this base (e.g. a short word with
        // no abbreviation); fall back to a jargon prefix so that a mutation,
        // once decided, always produces a non-canonical header.
        format!("{} {}", uniform(rng, WORDS), base)
    } else {
        out
    }
}

fn mutate_header_inner<R: Rng>(rng: &mut R, base: &str) -> String {
    use crate::values::{uniform, WORDS};
    let words: Vec<&str> = base.split_whitespace().collect();
    match rng.gen_range(0..6) {
        // Project-specific jargon prefix ("nightly score") — out of any
        // ontology's vocabulary syntactically; the semantic method can still
        // anchor on the base word.
        4 => format!(
            "{} {}",
            uniform(rng, WORDS),
            words.last().unwrap_or(&"field")
        ),
        // Fully opaque project jargon ("shard buffer") — matches nothing;
        // these columns stay unannotated under both methods, as a large
        // share of real GitHub columns do.
        5 => format!("{} {}", uniform(rng, WORDS), uniform(rng, WORDS)),
        // Abbreviate each word where a conventional abbreviation exists.
        0 => words
            .iter()
            .map(|w| {
                ABBREVIATIONS
                    .iter()
                    .find(|(full, _)| full == w)
                    .map_or((*w).to_string(), |(_, a)| (*a).to_string())
            })
            .collect::<Vec<_>>()
            .join(" "),
        // Concatenate words without separators ("orderdate") — unsplittable
        // by normalization, so a syntactic miss but a semantic n-gram hit.
        1 if words.len() > 1 => words.concat(),
        // Strip non-leading vowels from the longest word ("sttus" style).
        2 => {
            let mut out: Vec<String> = words.iter().map(|w| (*w).to_string()).collect();
            if let Some(longest) = out.iter_mut().max_by_key(|w| w.len()) {
                if longest.len() > 4 {
                    let first = longest.chars().next().expect("non-empty word");
                    let rest: String = longest
                        .chars()
                        .skip(1)
                        .filter(|c| !"aeiou".contains(*c))
                        .collect();
                    *longest = format!("{first}{rest}");
                }
            }
            out.join(" ")
        }
        // Truncate the first word to a 3–5 character stem.
        _ => {
            let mut out: Vec<String> = words.iter().map(|w| (*w).to_string()).collect();
            if out[0].len() > 5 {
                let keep = rng.gen_range(3..=5);
                out[0].truncate(keep);
            }
            out.join(" ")
        }
    }
}

fn style_header(base: &str, style: HeaderStyle) -> String {
    let words: Vec<&str> = base.split_whitespace().collect();
    match style {
        HeaderStyle::Snake => words.join("_"),
        HeaderStyle::LowerSpace => words.join(" "),
        HeaderStyle::Upper => words.join("_").to_uppercase(),
        HeaderStyle::TitleSpace => words
            .iter()
            .map(|w| title_case(w))
            .collect::<Vec<_>>()
            .join(" "),
        HeaderStyle::Camel => {
            let mut out = String::new();
            for (i, w) in words.iter().enumerate() {
                if i == 0 {
                    out.push_str(w);
                } else {
                    out.push_str(&title_case(w));
                }
            }
            out
        }
    }
}

fn title_case(w: &str) -> String {
    let mut c = w.chars();
    match c.next() {
        Some(f) => f.to_uppercase().collect::<String>() + c.as_str(),
        None => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn dimensions_match_paper_means() {
        let s = SchemaSampler::default();
        let mut rng = StdRng::seed_from_u64(1);
        let mut rows = 0usize;
        let mut cols = 0usize;
        let n = 4000;
        for _ in 0..n {
            let p = s.sample(&mut rng, "thing", Domain::Generic);
            rows += p.rows;
            cols += p.columns.len();
        }
        let mean_rows = rows as f64 / n as f64;
        let mean_cols = cols as f64 / n as f64;
        // Paper: 142 rows, 12 columns on average. Allow generous tolerance.
        assert!((80.0..240.0).contains(&mean_rows), "mean rows {mean_rows}");
        assert!((8.0..17.0).contains(&mean_cols), "mean cols {mean_cols}");
    }

    #[test]
    fn id_columns_common() {
        let s = SchemaSampler::default();
        let mut rng = StdRng::seed_from_u64(2);
        let with_id = (0..500)
            .filter(|_| {
                let p = s.sample(&mut rng, "order", Domain::Business);
                p.columns
                    .iter()
                    .any(|c| c.name.to_lowercase().contains("id"))
            })
            .count();
        assert!(with_id > 250, "{with_id}/500");
    }

    #[test]
    fn styles_produce_messy_headers() {
        let s = SchemaSampler::default();
        let mut rng = StdRng::seed_from_u64(3);
        let mut snake = false;
        let mut camel = false;
        for _ in 0..200 {
            let p = s.sample(&mut rng, "person", Domain::People);
            for c in &p.columns {
                snake |= c.name.contains('_');
                camel |= c.name.chars().any(|ch| ch.is_uppercase())
                    && c.name.chars().any(|ch| ch.is_lowercase())
                    && !c.name.contains(['_', ' ']);
            }
        }
        assert!(snake && camel);
    }

    #[test]
    fn defects_injected_at_configured_rates() {
        let cfg = SamplerConfig {
            unnamed_prob: 1.0,
            social_prob: 0.0,
            numeric_header_prob: 0.0,
            ..Default::default()
        };
        let s = SchemaSampler::new(cfg);
        let mut rng = StdRng::seed_from_u64(4);
        let p = s.sample(&mut rng, "x", Domain::Generic);
        assert!(p.columns.iter().all(|c| c.name.is_empty()));
    }

    #[test]
    fn social_column_injection() {
        let cfg = SamplerConfig {
            social_prob: 1.0,
            ..Default::default()
        };
        let s = SchemaSampler::new(cfg);
        let mut rng = StdRng::seed_from_u64(5);
        let p = s.sample(&mut rng, "x", Domain::Media);
        let social = ["twitter", "tweet", "reddit", "facebook"];
        assert!(p
            .columns
            .iter()
            .any(|c| social.iter().any(|s| c.name.to_lowercase().contains(s))));
    }

    #[test]
    fn no_duplicate_headers_within_round() {
        let s = SchemaSampler::default();
        let mut rng = StdRng::seed_from_u64(6);
        let p = s.sample(&mut rng, "log", Domain::Tech);
        let mut names: Vec<&str> = p
            .columns
            .iter()
            .map(|c| c.name.as_str())
            .filter(|n| !n.is_empty())
            .collect();
        let before = names.len();
        names.sort_unstable();
        names.dedup();
        // Duplicates only possible via defect injection (numeric headers).
        assert!(names.len() + 2 >= before);
    }

    #[test]
    fn deterministic() {
        let s = SchemaSampler::default();
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        assert_eq!(
            s.sample(&mut a, "t", Domain::Science),
            s.sample(&mut b, "t", Domain::Science)
        );
    }

    #[test]
    fn every_domain_has_pool() {
        for d in Domain::ALL {
            assert!(!pool(d).is_empty());
        }
    }
}
