//! Seeded value generators for every semantic domain the corpus needs.
//!
//! The value distributions intentionally carry the biases the paper measures
//! in Table 6: country columns are dominated by "United States" (plus "USA"),
//! city columns by New York / London / Coquitlam / Cambridge, gender columns
//! by Male/Female/F/M, etc., so the bias-audit experiment reproduces the
//! published frequent-value lists.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// First names used for person-name generation.
pub const FIRST_NAMES: &[&str] = &[
    "James",
    "Mary",
    "John",
    "Patricia",
    "Robert",
    "Jennifer",
    "Michael",
    "Linda",
    "William",
    "Elizabeth",
    "David",
    "Barbara",
    "Richard",
    "Susan",
    "Joseph",
    "Jessica",
    "Thomas",
    "Sarah",
    "Charles",
    "Karen",
    "Daniel",
    "Nancy",
    "Matthew",
    "Lisa",
    "Anthony",
    "Betty",
    "Mark",
    "Margaret",
    "Paul",
    "Sandra",
    "Steven",
    "Ashley",
    "Andrew",
    "Kimberly",
    "Kenneth",
    "Emily",
    "George",
    "Donna",
    "Joshua",
    "Michelle",
    "Kevin",
    "Carol",
    "Brian",
    "Amanda",
    "Edward",
    "Melissa",
    "Ronald",
    "Deborah",
    "Timothy",
    "Stephanie",
    "Jason",
    "Rebecca",
    "Jeffrey",
    "Laura",
    "Ryan",
    "Sharon",
    "Jacob",
    "Cynthia",
    "Gary",
    "Kathleen",
    "Nicholas",
    "Amy",
    "Eric",
    "Angela",
    "Stephen",
    "Anna",
    "Jonathan",
    "Ruth",
    "Larry",
    "Brenda",
];

/// Last names used for person-name generation.
pub const LAST_NAMES: &[&str] = &[
    "Smith",
    "Johnson",
    "Williams",
    "Brown",
    "Jones",
    "Garcia",
    "Miller",
    "Davis",
    "Rodriguez",
    "Martinez",
    "Hernandez",
    "Lopez",
    "Gonzalez",
    "Wilson",
    "Anderson",
    "Thomas",
    "Taylor",
    "Moore",
    "Jackson",
    "Martin",
    "Lee",
    "Perez",
    "Thompson",
    "White",
    "Harris",
    "Sanchez",
    "Clark",
    "Ramirez",
    "Lewis",
    "Robinson",
    "Walker",
    "Young",
    "Allen",
    "King",
    "Wright",
    "Scott",
    "Torres",
    "Nguyen",
    "Hill",
    "Flores",
    "Green",
    "Adams",
    "Nelson",
    "Baker",
    "Hall",
    "Rivera",
    "Campbell",
    "Mitchell",
    "Carter",
    "Roberts",
    "Gomez",
    "Phillips",
    "Evans",
    "Turner",
    "Diaz",
    "Parker",
    "Cruz",
    "Edwards",
    "Collins",
    "Reyes",
    "Stewart",
    "Morris",
];

/// Countries, weighted toward Western/English-speaking per Table 6.
pub const COUNTRIES: &[(&str, u32)] = &[
    ("United States", 30),
    ("USA", 10),
    ("Canada", 14),
    ("Belgium", 10),
    ("Germany", 9),
    ("United Kingdom", 8),
    ("France", 6),
    ("Netherlands", 6),
    ("Australia", 5),
    ("Spain", 4),
    ("Italy", 4),
    ("Vietnam", 3),
    ("Japan", 3),
    ("Brazil", 3),
    ("India", 3),
    ("Mexico", 2),
    ("China", 2),
    ("Sweden", 2),
    ("Norway", 2),
    ("Poland", 2),
    ("Kenya", 1),
    ("Nigeria", 1),
    ("Egypt", 1),
    ("Argentina", 1),
    ("Chile", 1),
    ("Thailand", 1),
    ("Indonesia", 1),
    ("Turkey", 1),
    ("South Africa", 1),
    ("New Zealand", 1),
];

/// Cities, weighted per Table 6's frequent values.
pub const CITIES: &[(&str, u32)] = &[
    ("New York", 20),
    ("London", 14),
    ("Coquitlam", 10),
    ("Cambridge", 9),
    ("Toronto", 6),
    ("Chicago", 6),
    ("Los Angeles", 5),
    ("San Francisco", 5),
    ("Boston", 5),
    ("Seattle", 4),
    ("Berlin", 4),
    ("Paris", 4),
    ("Amsterdam", 4),
    ("Brussels", 3),
    ("Vancouver", 3),
    ("Austin", 3),
    ("Denver", 2),
    ("Portland", 2),
    ("Madrid", 2),
    ("Rome", 2),
    ("Sydney", 2),
    ("Melbourne", 2),
    ("Tokyo", 1),
    ("Hanoi", 1),
    ("Mumbai", 1),
    ("Lagos", 1),
    ("Nairobi", 1),
    ("Lima", 1),
    ("Pittsburgh", 1),
    ("Buffalo", 1),
];

/// Gender tokens, per Table 6's frequent values.
pub const GENDERS: &[(&str, u32)] = &[
    ("Male", 30),
    ("Female", 28),
    ("F", 14),
    ("M", 14),
    ("male", 5),
    ("female", 5),
    ("Other", 2),
    ("Unknown", 2),
];

/// Ethnicity tokens, per Table 6.
pub const ETHNICITIES: &[(&str, u32)] = &[
    ("French", 18),
    ("Dutch", 16),
    ("Spanish", 14),
    ("Mexican", 12),
    ("German", 8),
    ("Irish", 7),
    ("Italian", 6),
    ("English", 6),
    ("Chinese", 4),
    ("Indian", 4),
    ("Vietnamese", 3),
    ("Korean", 2),
];

/// Race tokens, per Table 6 (the paper's data is noisy here by design —
/// values like "Men" and "Human" appear in real race columns).
pub const RACES: &[(&str, u32)] = &[
    ("Men", 20),
    ("Human", 18),
    ("White", 16),
    ("Black", 10),
    ("Asian", 10),
    ("Women", 8),
    ("Hispanic", 6),
    ("Mixed", 4),
];

/// Nationality tokens, per Table 6.
pub const NATIONALITIES: &[(&str, u32)] = &[
    ("Hispanic", 18),
    ("White", 16),
    ("Caucasian (White)", 12),
    ("American", 10),
    ("British", 8),
    ("Canadian", 8),
    ("German", 6),
    ("French", 6),
    ("Dutch", 5),
    ("Belgian", 4),
];

/// Latin binomial species names (Fig. 2's biological tables).
pub const SPECIES: &[&str] = &[
    "Enterococcus faecium",
    "Escherichia coli",
    "Staphylococcus aureus",
    "Klebsiella pneumoniae",
    "Pseudomonas aeruginosa",
    "Streptococcus pyogenes",
    "Bacillus subtilis",
    "Salmonella enterica",
    "Listeria monocytogenes",
    "Clostridium difficile",
    "Homo sapiens",
    "Mus musculus",
    "Drosophila melanogaster",
    "Arabidopsis thaliana",
    "Danio rerio",
    "Saccharomyces cerevisiae",
    "Caenorhabditis elegans",
    "Rattus norvegicus",
    "Gallus gallus",
    "Canis lupus",
    "Felis catus",
    "Panthera leo",
    "Ursus arctos",
    "Aquila chrysaetos",
    "Passer domesticus",
    "Turdus merula",
    "Parus major",
    "Corvus corax",
    "Larus argentatus",
    "Quercus robur",
    "Pinus sylvestris",
    "Betula pendula",
];

/// Organism group labels (Fig. 2's "Organism Group" column).
pub const ORGANISM_GROUPS: &[&str] = &[
    "Enterococcus spp",
    "Escherichia spp",
    "Staphylococcus spp",
    "Klebsiella spp",
    "Pseudomonas spp",
    "Streptococcus spp",
    "Bacillus spp",
    "Salmonella spp",
    "Mammalia",
    "Aves",
    "Insecta",
    "Plantae",
    "Fungi",
];

/// Status tokens (Fig. 6b's `AVAILABLE` style).
pub const STATUSES: &[&str] = &[
    "AVAILABLE",
    "SOLD",
    "PENDING",
    "SHIPPED",
    "DELIVERED",
    "CANCELLED",
    "ACTIVE",
    "INACTIVE",
    "OPEN",
    "CLOSED",
    "NEW",
    "DONE",
    "FAILED",
    "PASSED",
    "RUNNING",
    "QUEUED",
];

/// Category labels.
pub const CATEGORIES: &[&str] = &[
    "electronics",
    "clothing",
    "food",
    "books",
    "tools",
    "sports",
    "toys",
    "garden",
    "health",
    "beauty",
    "music",
    "office",
    "automotive",
    "pets",
];

/// Product-ish nouns.
pub const PRODUCTS: &[&str] = &[
    "widget", "gadget", "bracket", "module", "panel", "cable", "sensor", "adapter", "battery",
    "charger", "casing", "filter", "valve", "gear", "lens", "frame", "switch", "router", "monitor",
    "keyboard",
];

/// Generic English words for free-text cells.
pub const WORDS: &[&str] = &[
    "alpha", "vector", "signal", "matrix", "report", "summary", "draft", "final", "review",
    "update", "backup", "primary", "legacy", "nightly", "stable", "branch", "merge", "deploy",
    "config", "default", "custom", "sample", "series", "cluster", "window", "buffer", "stream",
    "batch", "shard", "cache", "replica", "metric", "trace", "audit", "policy",
];

/// Age-group buckets (Fig. 2's "Age Group" column).
pub const AGE_GROUPS: &[&str] = &["0 to 18 Years", "19 to 64 Years", "65+ Years", "Unknown"];

/// Street suffixes for address generation.
const STREET_SUFFIXES: &[&str] = &["St", "Ave", "Blvd", "Rd", "Ln", "Dr", "Way", "Ct"];

/// Email domains.
const EMAIL_DOMAINS: &[&str] = &["example.com", "mail.com", "test.org", "corp.net", "uni.edu"];

/// Picks from a weighted list.
pub fn weighted<'a, R: Rng>(rng: &mut R, items: &[(&'a str, u32)]) -> &'a str {
    let total: u32 = items.iter().map(|(_, w)| w).sum();
    let mut pick = rng.gen_range(0..total);
    for (s, w) in items {
        if pick < *w {
            return s;
        }
        pick -= w;
    }
    items.last().expect("non-empty weighted list").0
}

/// Picks uniformly from a slice.
pub fn uniform<'a, R: Rng>(rng: &mut R, items: &[&'a str]) -> &'a str {
    items[rng.gen_range(0..items.len())]
}

/// The kind of values a synthetic column holds; mirrors the ontology's
/// semantic-type domains so generated headers and contents agree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ValueKind {
    /// Sequential integer id starting at 1.
    SequentialId,
    /// Random numeric id.
    RandomId,
    /// Full person name.
    FullName,
    /// First name only.
    FirstName,
    /// Last name only.
    LastName,
    /// Email address.
    Email,
    /// ISO date.
    Date,
    /// ISO timestamp.
    DateTime,
    /// Year.
    Year,
    /// Country name (Table 6 skew).
    Country,
    /// City name (Table 6 skew).
    City,
    /// Gender token.
    Gender,
    /// Ethnicity token.
    Ethnicity,
    /// Race token.
    Race,
    /// Nationality token.
    Nationality,
    /// Street address.
    Address,
    /// Postal code.
    PostalCode,
    /// Phone number.
    Phone,
    /// Latin species binomial.
    Species,
    /// Organism group.
    OrganismGroup,
    /// Age-group bucket.
    AgeGroup,
    /// Status token.
    Status,
    /// Category label.
    Category,
    /// Product noun.
    Product,
    /// Price with two decimals.
    Price,
    /// Small integer quantity.
    Quantity,
    /// Large integer count.
    Count,
    /// Score in `[0, 100]`.
    Score,
    /// Float measurement.
    Measurement,
    /// Latitude.
    Latitude,
    /// Longitude.
    Longitude,
    /// Percentage in `[0, 100]` with one decimal.
    Percentage,
    /// Boolean token.
    Bool,
    /// URL.
    Url,
    /// Short free text (1–4 words).
    Text,
    /// Alphanumeric code like `AB-1234`.
    Code,
    /// Generic English word.
    Word,
}

impl ValueKind {
    /// Generates one cell value. `row` is the zero-based row index (used by
    /// sequential ids).
    pub fn generate<R: Rng>(self, rng: &mut R, row: usize) -> String {
        match self {
            ValueKind::SequentialId => (row + 1).to_string(),
            ValueKind::RandomId => rng.gen_range(1_000..10_000_000u64).to_string(),
            ValueKind::FullName => {
                format!("{} {}", uniform(rng, FIRST_NAMES), uniform(rng, LAST_NAMES))
            }
            ValueKind::FirstName => uniform(rng, FIRST_NAMES).to_string(),
            ValueKind::LastName => uniform(rng, LAST_NAMES).to_string(),
            ValueKind::Email => {
                let f = uniform(rng, FIRST_NAMES).to_lowercase();
                let l = uniform(rng, LAST_NAMES).to_lowercase();
                let d = uniform(rng, EMAIL_DOMAINS);
                format!("{f}.{l}@{d}")
            }
            ValueKind::Date => {
                let y = rng.gen_range(1990..2024);
                let m = rng.gen_range(1..=12);
                let d = rng.gen_range(1..=28);
                format!("{y:04}-{m:02}-{d:02}")
            }
            ValueKind::DateTime => {
                let date = ValueKind::Date.generate(rng, row);
                format!(
                    "{date} {:02}:{:02}:{:02}",
                    rng.gen_range(0..24),
                    rng.gen_range(0..60),
                    rng.gen_range(0..60)
                )
            }
            ValueKind::Year => rng.gen_range(1950..2024u32).to_string(),
            ValueKind::Country => weighted(rng, COUNTRIES).to_string(),
            ValueKind::City => weighted(rng, CITIES).to_string(),
            ValueKind::Gender => weighted(rng, GENDERS).to_string(),
            ValueKind::Ethnicity => weighted(rng, ETHNICITIES).to_string(),
            ValueKind::Race => weighted(rng, RACES).to_string(),
            ValueKind::Nationality => weighted(rng, NATIONALITIES).to_string(),
            ValueKind::Address => format!(
                "{} {} {}",
                rng.gen_range(1..2000),
                uniform(rng, LAST_NAMES),
                uniform(rng, STREET_SUFFIXES)
            ),
            ValueKind::PostalCode => format!("{:05}", rng.gen_range(501..99951)),
            ValueKind::Phone => format!(
                "{:03}-{:03}-{:04}",
                rng.gen_range(200..1000),
                rng.gen_range(100..1000),
                rng.gen_range(0..10000)
            ),
            ValueKind::Species => uniform(rng, SPECIES).to_string(),
            ValueKind::OrganismGroup => uniform(rng, ORGANISM_GROUPS).to_string(),
            ValueKind::AgeGroup => uniform(rng, AGE_GROUPS).to_string(),
            ValueKind::Status => uniform(rng, STATUSES).to_string(),
            ValueKind::Category => uniform(rng, CATEGORIES).to_string(),
            ValueKind::Product => uniform(rng, PRODUCTS).to_string(),
            ValueKind::Price => format!("{:.2}", rng.gen_range(0.5..5000.0)),
            ValueKind::Quantity => rng.gen_range(1..500u32).to_string(),
            ValueKind::Count => rng.gen_range(0..1_000_000u64).to_string(),
            ValueKind::Score => rng.gen_range(0..=100u32).to_string(),
            ValueKind::Measurement => format!("{:.3}", rng.gen_range(-100.0..1000.0)),
            ValueKind::Latitude => format!("{:.5}", rng.gen_range(-90.0..90.0)),
            ValueKind::Longitude => format!("{:.5}", rng.gen_range(-180.0..180.0)),
            ValueKind::Percentage => format!("{:.1}", rng.gen_range(0.0..100.0)),
            ValueKind::Bool => if rng.gen_bool(0.5) { "true" } else { "false" }.to_string(),
            ValueKind::Url => format!(
                "https://{}.example.com/{}",
                uniform(rng, WORDS),
                uniform(rng, WORDS)
            ),
            ValueKind::Text => {
                let n = rng.gen_range(1..=4);
                (0..n)
                    .map(|_| uniform(rng, WORDS))
                    .collect::<Vec<_>>()
                    .join(" ")
            }
            ValueKind::Code => format!(
                "{}{}-{:04}",
                (b'A' + rng.gen_range(0..26u8)) as char,
                (b'A' + rng.gen_range(0..26u8)) as char,
                rng.gen_range(0..10000)
            ),
            ValueKind::Word => uniform(rng, WORDS).to_string(),
        }
    }

    /// Whether this kind generates numeric cells (drives the atomic-type
    /// distribution of Table 4).
    #[must_use]
    pub fn is_numeric(self) -> bool {
        matches!(
            self,
            ValueKind::SequentialId
                | ValueKind::RandomId
                | ValueKind::Year
                | ValueKind::PostalCode
                | ValueKind::Price
                | ValueKind::Quantity
                | ValueKind::Count
                | ValueKind::Score
                | ValueKind::Measurement
                | ValueKind::Latitude
                | ValueKind::Longitude
                | ValueKind::Percentage
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn sequential_id_uses_row() {
        let mut r = rng();
        assert_eq!(ValueKind::SequentialId.generate(&mut r, 0), "1");
        assert_eq!(ValueKind::SequentialId.generate(&mut r, 41), "42");
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = rng();
        let mut b = rng();
        for kind in [ValueKind::FullName, ValueKind::Date, ValueKind::Price] {
            assert_eq!(kind.generate(&mut a, 0), kind.generate(&mut b, 0));
        }
    }

    #[test]
    fn date_shape() {
        let mut r = rng();
        let d = ValueKind::Date.generate(&mut r, 0);
        assert_eq!(d.len(), 10);
        assert_eq!(&d[4..5], "-");
    }

    #[test]
    fn email_shape() {
        let mut r = rng();
        let e = ValueKind::Email.generate(&mut r, 0);
        assert!(e.contains('@') && e.contains('.'));
    }

    #[test]
    fn numeric_kinds_parse_as_numbers() {
        let mut r = rng();
        for kind in [
            ValueKind::Price,
            ValueKind::Quantity,
            ValueKind::Measurement,
            ValueKind::Latitude,
        ] {
            let v = kind.generate(&mut r, 0);
            assert!(v.parse::<f64>().is_ok(), "{kind:?} -> {v}");
            assert!(kind.is_numeric());
        }
        assert!(!ValueKind::City.is_numeric());
    }

    #[test]
    fn country_skew_matches_table6() {
        // "United States" (+"USA") must be the most frequent country.
        let mut r = rng();
        let mut us = 0;
        let mut other = std::collections::HashMap::new();
        for _ in 0..5000 {
            let c = ValueKind::Country.generate(&mut r, 0);
            if c == "United States" || c == "USA" {
                us += 1;
            } else {
                *other.entry(c).or_insert(0usize) += 1;
            }
        }
        let max_other = other.values().copied().max().unwrap_or(0);
        assert!(us > max_other, "us={us}, max_other={max_other}");
    }

    #[test]
    fn weighted_respects_zero_chance_tail() {
        let mut r = rng();
        for _ in 0..100 {
            let v = weighted(&mut r, &[("a", 1), ("b", 0)]);
            assert_eq!(v, "a");
        }
    }

    #[test]
    fn code_shape() {
        let mut r = rng();
        let c = ValueKind::Code.generate(&mut r, 0);
        assert_eq!(c.len(), 7);
        assert_eq!(&c[2..3], "-");
    }
}
