//! VizNet/WDC-style *web table* generator.
//!
//! Web tables extracted from HTML pages are structurally different from
//! GitTables (paper Table 1, §4.2): ≈11–17 rows, 3–6 columns, entity-centric
//! headers (`name`, `date`, `title`, `artist`, `location`, …; notably *not*
//! `id`), roughly 50/50 numeric-vs-string content, and short text cells.
//! [`WebTableGenerator`] reproduces those statistics so the data-shift
//! classifier (§4.2) and the cross-corpus Sherlock experiment (Table 7) have
//! a faithful comparison corpus.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::schema::{ColumnSpec, Domain, SchemaPlan};
use crate::tablegen::{generate_table, GeneratedTable};
use crate::values::ValueKind;

/// Header pool for web tables: the WDC top types (name, date, title, artist,
/// description, size, type, location, model, year — §4.2), without `id`.
const WEB_POOL: &[(&str, ValueKind)] = &[
    ("name", ValueKind::FullName),
    ("date", ValueKind::Date),
    ("title", ValueKind::Text),
    ("artist", ValueKind::FullName),
    ("description", ValueKind::Text),
    ("size", ValueKind::Quantity),
    ("type", ValueKind::Word),
    ("location", ValueKind::City),
    ("model", ValueKind::Product),
    ("year", ValueKind::Year),
    ("price", ValueKind::Price),
    ("rank", ValueKind::Quantity),
    ("country", ValueKind::Country),
    ("team", ValueKind::Word),
    ("score", ValueKind::Score),
    ("album", ValueKind::Text),
    ("genre", ValueKind::Category),
    ("address", ValueKind::Address),
    ("status", ValueKind::Status),
    ("class", ValueKind::Word),
    ("population", ValueKind::Count),
    ("height", ValueKind::Measurement),
    ("weight", ValueKind::Measurement),
    ("points", ValueKind::Score),
    ("wins", ValueKind::Quantity),
    ("goals", ValueKind::Quantity),
    ("area", ValueKind::Measurement),
    ("length", ValueKind::Measurement),
    ("number", ValueKind::Quantity),
    ("total", ValueKind::Count),
];

/// Generates small entity-centric web tables.
#[derive(Debug, Clone)]
pub struct WebTableGenerator {
    seed: u64,
}

impl WebTableGenerator {
    /// Creates a generator.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        WebTableGenerator { seed }
    }

    /// Generates the `index`-th web table.
    #[must_use]
    pub fn generate(&self, index: usize) -> GeneratedTable {
        let mut rng =
            StdRng::seed_from_u64(self.seed ^ (index as u64).wrapping_mul(0x2545_f491_4f6c_dd1d));
        // Rows: geometric-ish around 15 (web tables are small).
        let rows = 3 + rng.gen_range(0..25);
        // Columns: 2..=6, mean ≈ 3.7.
        let ncols = 2 + rng.gen_range(0..5);
        let mut idx: Vec<usize> = (0..WEB_POOL.len()).collect();
        // Fisher–Yates prefix shuffle for column choice.
        for i in 0..ncols.min(idx.len()) {
            let j = rng.gen_range(i..idx.len());
            idx.swap(i, j);
        }
        let columns: Vec<ColumnSpec> = idx[..ncols]
            .iter()
            .map(|&i| ColumnSpec {
                name: WEB_POOL[i].0.to_string(),
                kind: WEB_POOL[i].1,
                missing_prob: 0.01,
            })
            .collect();
        let plan = SchemaPlan {
            topic: "web".to_string(),
            domain: Domain::Generic,
            rows,
            columns,
        };
        let mut table = generate_table(&mut rng, &plan);
        // HTML-extracted tables are noisier than database dumps: scraping
        // artifacts, footnote markers, merged cells. Corrupt an extra slice
        // of cells with free text so web columns are *less* internally
        // consistent than GitTables columns — the reason the paper's
        // VizNet-trained model scores 0.77 in-corpus vs GitTables' 0.86.
        for row in &mut table.rows {
            for cell in row.iter_mut() {
                if rng.gen_bool(0.16) {
                    *cell = ValueKind::Text.generate(&mut rng, 0);
                }
            }
        }
        table
    }

    /// Generates `n` web tables.
    #[must_use]
    pub fn generate_many(&self, n: usize) -> Vec<GeneratedTable> {
        (0..n).map(|i| self.generate(i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dimensions_are_web_like() {
        let g = WebTableGenerator::new(1);
        let tables = g.generate_many(500);
        let mean_rows: f64 = tables.iter().map(|t| t.rows.len()).sum::<usize>() as f64 / 500.0;
        let mean_cols: f64 = tables.iter().map(|t| t.header.len()).sum::<usize>() as f64 / 500.0;
        assert!((8.0..22.0).contains(&mean_rows), "rows {mean_rows}");
        assert!((2.0..6.0).contains(&mean_cols), "cols {mean_cols}");
    }

    #[test]
    fn no_id_column() {
        let g = WebTableGenerator::new(2);
        for t in g.generate_many(100) {
            assert!(!t.header.iter().any(|h| h == "id"));
        }
    }

    #[test]
    fn deterministic() {
        let a = WebTableGenerator::new(3).generate(7);
        let b = WebTableGenerator::new(3).generate(7);
        assert_eq!(a, b);
    }

    #[test]
    fn distinct_tables() {
        let g = WebTableGenerator::new(4);
        let a = g.generate(0);
        let b = g.generate(1);
        assert!(a.header != b.header || a.rows != b.rows);
    }
}
