//! Repository population: turns schema plans into CSV files inside simulated
//! GitHub repositories.
//!
//! Reproduces the provenance structure §3.2–§4.1 relies on:
//!
//! * license distribution — ≈16 % of repositories carry a license permitting
//!   redistribution (§3.3);
//! * fork flags — forked repositories are excluded from search (§3.2);
//! * per-repository table counts — 75 % of repositories contribute ≤ 5
//!   tables, with a heavy tail of "snapshot" repositories holding many
//!   near-identical tables (§4.1);
//! * file sizes bounded by the GitHub search cap of 438 kB.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::csvrender::{render_csv, MessModel};
use crate::schema::SchemaSampler;
use crate::sqlrender::{render_sql, SqlRenderOptions};
use crate::tablegen::generate_table;
use crate::values::{uniform, LAST_NAMES, WORDS};
use crate::wordnet::Topic;

/// Licenses allowing content redistribution (counted as "permissive").
pub const PERMISSIVE_LICENSES: &[&str] = &[
    "mit",
    "apache-2.0",
    "bsd-3-clause",
    "bsd-2-clause",
    "cc0-1.0",
    "unlicense",
    "cc-by-4.0",
    "mpl-2.0",
];

/// Licenses that do not permit redistribution of contents (or no license).
pub const RESTRICTIVE_LICENSES: &[&str] = &["proprietary", "cc-by-nc-4.0"];

/// GitHub's search API file-size cap in bytes (§3.2).
pub const MAX_FILE_SIZE: usize = 438 * 1024;

/// A generated CSV file.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SynthFile {
    /// Path within the repository.
    pub path: String,
    /// Raw CSV contents.
    pub content: String,
    /// The topic whose vocabulary seeded this file.
    pub topic: String,
}

/// A generated repository.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RepoSpec {
    /// `owner/name` identifier.
    pub full_name: String,
    /// SPDX-ish license id, `None` for unlicensed.
    pub license: Option<String>,
    /// Whether this repository is a fork.
    pub fork: bool,
    /// CSV files in the repository.
    pub files: Vec<SynthFile>,
}

impl RepoSpec {
    /// Whether the license permits redistribution (the §3.3 filter).
    #[must_use]
    pub fn is_permissive(&self) -> bool {
        self.license
            .as_deref()
            .is_some_and(|l| PERMISSIVE_LICENSES.contains(&l))
    }
}

/// Configuration for repository generation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RepoConfig {
    /// Probability a repository carries a permissive license (§3.3: ≈16 %).
    pub permissive_prob: f64,
    /// Probability a repository is a fork (excluded from search).
    pub fork_prob: f64,
    /// Probability a repository is a "snapshot" repo with many files.
    pub snapshot_prob: f64,
    /// File count range for ordinary repositories.
    pub files_ordinary: (usize, usize),
    /// File count range for snapshot repositories.
    pub files_snapshot: (usize, usize),
    /// CSV mess model applied when rendering.
    pub mess: MessModel,
    /// Probability a file is rendered as a SQL dump instead of CSV. The
    /// default of `0.0` draws **no** randomness for the decision, so
    /// corpora generated before SQL ingestion existed stay bit-identical.
    pub sql_file_prob: f64,
    /// Dump-style options applied when rendering SQL files.
    pub sql: SqlRenderOptions,
}

impl Default for RepoConfig {
    fn default() -> Self {
        RepoConfig {
            permissive_prob: 0.16,
            fork_prob: 0.12,
            snapshot_prob: 0.02,
            files_ordinary: (1, 5),
            files_snapshot: (30, 120),
            mess: MessModel::default(),
            sql_file_prob: 0.0,
            sql: SqlRenderOptions::default(),
        }
    }
}

/// Deterministic repository generator.
#[derive(Debug, Clone)]
pub struct RepoGenerator {
    /// Generator configuration.
    pub config: RepoConfig,
    sampler: SchemaSampler,
    seed: u64,
}

impl RepoGenerator {
    /// Creates a generator with the default config.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        RepoGenerator {
            config: RepoConfig::default(),
            sampler: SchemaSampler::default(),
            seed,
        }
    }

    /// Creates a generator with a custom configuration.
    #[must_use]
    pub fn with_config(seed: u64, config: RepoConfig) -> Self {
        RepoGenerator {
            config,
            sampler: SchemaSampler::default(),
            seed,
        }
    }

    /// Generates the `index`-th repository for `topic`. The `(seed, topic,
    /// index)` triple fully determines the output.
    #[must_use]
    pub fn generate(&self, topic: &Topic, index: usize) -> RepoSpec {
        let mut hash = self.seed ^ (index as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        for b in topic.noun.bytes() {
            hash = hash.wrapping_mul(0x100_0000_01b3) ^ u64::from(b);
        }
        let mut rng = StdRng::seed_from_u64(hash);
        let owner = uniform(&mut rng, LAST_NAMES).to_lowercase();
        let word = uniform(&mut rng, WORDS);
        // A short hash suffix keeps full names unique (as on real GitHub)
        // even when the owner/word pools collide across indices.
        let full_name = format!(
            "{owner}/{word}-{}-{:04x}",
            topic.noun.replace(' ', "-"),
            hash & 0xffff
        );

        let license = if rng.gen_bool(self.config.permissive_prob) {
            Some(PERMISSIVE_LICENSES[rng.gen_range(0..PERMISSIVE_LICENSES.len())].to_string())
        } else if rng.gen_bool(0.3) {
            Some(RESTRICTIVE_LICENSES[rng.gen_range(0..RESTRICTIVE_LICENSES.len())].to_string())
        } else {
            None
        };
        let fork = rng.gen_bool(self.config.fork_prob);

        let snapshot = rng.gen_bool(self.config.snapshot_prob);
        let (lo, hi) = if snapshot {
            self.config.files_snapshot
        } else {
            self.config.files_ordinary
        };
        let n_files = rng.gen_range(lo..=hi);

        // Snapshot repositories reuse one schema plan across files (daily
        // dumps of the same database, §4.1). Database dumps have proper
        // headers, so the shared plan is sampled without header defects —
        // otherwise one defective plan would be amplified across the whole
        // snapshot series and skew the curation rates.
        let shared_plan = snapshot.then(|| {
            let clean = SchemaSampler::new(crate::schema::SamplerConfig {
                unnamed_prob: 0.0,
                numeric_header_prob: 0.0,
                social_prob: 0.0,
                ..self.sampler.config.clone()
            });
            clean.sample(&mut rng, &topic.noun, topic.domain)
        });

        let mut files = Vec::with_capacity(n_files);
        for f in 0..n_files {
            let plan = match &shared_plan {
                Some(p) => {
                    // Vary only the row count between snapshots (a growing
                    // database dump: later snapshots are at least half-size).
                    let mut p = p.clone();
                    p.rows = rng.gen_range(p.rows.max(2) / 2..=p.rows.max(2));
                    p
                }
                None => self.sampler.sample(&mut rng, &topic.noun, topic.domain),
            };
            let table = generate_table(&mut rng, &plan);
            // The `> 0.0` guard keeps the zero-probability path from
            // consuming a random draw — seeded CSV-only corpora must stay
            // bit-identical to those generated before SQL support existed.
            let as_sql = self.config.sql_file_prob > 0.0 && rng.gen_bool(self.config.sql_file_prob);
            let stem = topic.noun.replace(' ', "_");
            let (mut content, ext) = if as_sql {
                let sql_name = format!("{stem}_{f}");
                (
                    render_sql(&mut rng, &sql_name, &table, &self.config.sql),
                    "sql",
                )
            } else {
                (render_csv(&mut rng, &table, &self.config.mess), "csv")
            };
            if content.len() > MAX_FILE_SIZE {
                content.truncate(MAX_FILE_SIZE);
                // Cut at the last full line so truncation looks like a
                // size-capped download, not corruption.
                if let Some(nl) = content.rfind('\n') {
                    content.truncate(nl + 1);
                }
            }
            let dir = if snapshot { "snapshots" } else { "data" };
            let path = format!("{dir}/{stem}_{f}.{ext}");
            files.push(SynthFile {
                path,
                content,
                topic: topic.noun.clone(),
            });
        }
        RepoSpec {
            full_name,
            license,
            fork,
            files,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Domain;

    fn topic() -> Topic {
        Topic {
            noun: "order".into(),
            domain: Domain::Business,
        }
    }

    #[test]
    fn deterministic() {
        let g = RepoGenerator::new(11);
        let a = g.generate(&topic(), 0);
        let b = g.generate(&topic(), 0);
        assert_eq!(a.full_name, b.full_name);
        assert_eq!(a.files.len(), b.files.len());
        assert_eq!(a.files[0].content, b.files[0].content);
    }

    #[test]
    fn different_indices_differ() {
        let g = RepoGenerator::new(11);
        let a = g.generate(&topic(), 0);
        let b = g.generate(&topic(), 1);
        assert_ne!(a.full_name, b.full_name);
    }

    #[test]
    fn license_rate_near_16_percent() {
        let g = RepoGenerator::new(13);
        let t = topic();
        let n = 1000;
        let permissive = (0..n)
            .filter(|&i| g.generate(&t, i).is_permissive())
            .count();
        let rate = permissive as f64 / n as f64;
        assert!((0.10..0.24).contains(&rate), "rate {rate}");
    }

    #[test]
    fn file_sizes_capped() {
        let g = RepoGenerator::new(17);
        for i in 0..50 {
            let r = g.generate(&topic(), i);
            for f in &r.files {
                assert!(f.content.len() <= MAX_FILE_SIZE);
            }
        }
    }

    #[test]
    fn snapshot_repos_share_schema() {
        let cfg = RepoConfig {
            snapshot_prob: 1.0,
            ..Default::default()
        };
        let g = RepoGenerator::with_config(19, cfg);
        let r = g.generate(&topic(), 0);
        assert!(r.files.len() >= 30);
        // All snapshot files share the schema (header names), even though
        // each file may render with a different delimiter or preamble.
        let headers: Vec<Vec<String>> = r
            .files
            .iter()
            .filter_map(|f| {
                gittables_tablecsv::read_csv(&f.content, &Default::default())
                    .ok()
                    .map(|p| p.header)
            })
            .collect();
        assert!(headers.len() >= r.files.len() / 2, "most files parse");
        let same = headers.iter().filter(|h| **h == headers[0]).count();
        assert!(
            same >= headers.len() * 3 / 4,
            "{same}/{} share the schema",
            headers.len()
        );
    }

    #[test]
    fn sql_files_emitted_when_enabled() {
        let cfg = RepoConfig {
            sql_file_prob: 1.0,
            snapshot_prob: 0.0,
            ..Default::default()
        };
        let g = RepoGenerator::with_config(29, cfg);
        let mut parsed = 0;
        for i in 0..20 {
            let r = g.generate(&topic(), i);
            for f in &r.files {
                assert!(f.path.ends_with(".sql"), "{}", f.path);
                if gittables_tablesql::read_sql_tables(&f.content, &Default::default()).is_ok() {
                    parsed += 1;
                }
            }
        }
        // Garbage injection aside, the dumps must decode.
        assert!(parsed >= 15, "only {parsed} dumps decoded");
    }

    #[test]
    fn default_config_emits_no_sql() {
        let g = RepoGenerator::new(31);
        for i in 0..20 {
            for f in g.generate(&topic(), i).files {
                assert!(f.path.ends_with(".csv"), "{}", f.path);
            }
        }
    }

    #[test]
    fn ordinary_repos_small() {
        let cfg = RepoConfig {
            snapshot_prob: 0.0,
            ..Default::default()
        };
        let g = RepoGenerator::with_config(23, cfg);
        for i in 0..50 {
            let r = g.generate(&topic(), i);
            assert!(r.files.len() <= 5);
        }
    }
}
