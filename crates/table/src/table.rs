//! The [`Table`] type: an ordered collection of named columns plus provenance.

use serde::{Deserialize, Serialize};

use crate::{Column, Provenance, Schema, TableError};

/// A relational table parsed from a CSV file.
///
/// Cells are stored column-major (per [`Column`]) since every analysis in the
/// GitTables pipeline — type inference, annotation, feature extraction — is
/// column-oriented.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table {
    name: String,
    columns: Vec<Column>,
    provenance: Provenance,
}

impl Table {
    /// Creates a table from pre-built columns.
    ///
    /// # Errors
    /// Returns [`TableError::NoColumns`] for an empty column list and
    /// [`TableError::ColumnLengthMismatch`] if columns disagree on length.
    pub fn new(name: impl Into<String>, columns: Vec<Column>) -> Result<Self, TableError> {
        if columns.is_empty() {
            return Err(TableError::NoColumns);
        }
        let expected = columns[0].len();
        for c in &columns[1..] {
            if c.len() != expected {
                return Err(TableError::ColumnLengthMismatch {
                    column: c.name().to_string(),
                    found: c.len(),
                    expected,
                });
            }
        }
        Ok(Table {
            name: name.into(),
            columns,
            provenance: Provenance::default(),
        })
    }

    /// Creates a table from a header and row-major values.
    ///
    /// # Errors
    /// Returns [`TableError::RaggedRow`] if any row length differs from the
    /// header length, and [`TableError::NoColumns`] for an empty header.
    pub fn from_rows<H, R>(
        name: impl Into<String>,
        header: &[H],
        rows: &[R],
    ) -> Result<Self, TableError>
    where
        H: AsRef<str>,
        R: AsRef<[&'static str]>,
    {
        let header: Vec<&str> = header.iter().map(AsRef::as_ref).collect();
        let rows: Vec<Vec<String>> = rows
            .iter()
            .map(|r| r.as_ref().iter().map(|s| (*s).to_string()).collect())
            .collect();
        Table::from_string_rows(name, &header, rows)
    }

    /// Creates a table from a header and owned row-major string values.
    ///
    /// # Errors
    /// Returns [`TableError::RaggedRow`] on row-length mismatch and
    /// [`TableError::NoColumns`] for an empty header.
    pub fn from_string_rows<H: AsRef<str>>(
        name: impl Into<String>,
        header: &[H],
        rows: Vec<Vec<String>>,
    ) -> Result<Self, TableError> {
        if header.is_empty() {
            return Err(TableError::NoColumns);
        }
        let ncols = header.len();
        for (i, r) in rows.iter().enumerate() {
            if r.len() != ncols {
                return Err(TableError::RaggedRow {
                    row: i,
                    found: r.len(),
                    expected: ncols,
                });
            }
        }
        // Transpose row-major input into column-major storage.
        let mut cols: Vec<Vec<String>> =
            (0..ncols).map(|_| Vec::with_capacity(rows.len())).collect();
        for row in rows {
            for (j, v) in row.into_iter().enumerate() {
                cols[j].push(v);
            }
        }
        let columns = header
            .iter()
            .zip(cols)
            .map(|(h, vals)| Column::new(h.as_ref(), vals))
            .collect();
        Table::new(name, columns)
    }

    /// The table name (typically the CSV file stem).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The columns in order.
    #[must_use]
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Mutable access to columns (used by the anonymization pass).
    pub fn columns_mut(&mut self) -> &mut [Column] {
        &mut self.columns
    }

    /// Column by index.
    #[must_use]
    pub fn column(&self, idx: usize) -> Option<&Column> {
        self.columns.get(idx)
    }

    /// Column by exact name (first match).
    #[must_use]
    pub fn column_by_name(&self, name: &str) -> Option<&Column> {
        self.columns.iter().find(|c| c.name() == name)
    }

    /// Number of columns.
    #[must_use]
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// Number of rows.
    #[must_use]
    pub fn num_rows(&self) -> usize {
        self.columns.first().map_or(0, Column::len)
    }

    /// Total number of cells (`rows × columns`).
    #[must_use]
    pub fn num_cells(&self) -> usize {
        self.num_rows() * self.num_columns()
    }

    /// The table's schema (header names in order).
    #[must_use]
    pub fn schema(&self) -> Schema {
        self.columns.iter().map(|c| c.name().to_string()).collect()
    }

    /// Source provenance.
    #[must_use]
    pub fn provenance(&self) -> &Provenance {
        &self.provenance
    }

    /// Sets provenance (builder style).
    #[must_use]
    pub fn with_provenance(mut self, p: Provenance) -> Self {
        self.provenance = p;
        self
    }

    /// Sets provenance in place.
    pub fn set_provenance(&mut self, p: Provenance) {
        self.provenance = p;
    }

    /// A single row as owned strings (for display / export). `None` if out of
    /// bounds.
    #[must_use]
    pub fn row(&self, idx: usize) -> Option<Vec<&str>> {
        if idx >= self.num_rows() {
            return None;
        }
        Some(
            self.columns
                .iter()
                .map(|c| c.values()[idx].as_str())
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AtomicType;

    fn sample() -> Table {
        Table::from_rows(
            "t",
            &["id", "name", "price"],
            &[&["1", "ant", "0.5"], &["2", "bee", "1.5"]],
        )
        .unwrap()
    }

    #[test]
    fn dimensions() {
        let t = sample();
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.num_columns(), 3);
        assert_eq!(t.num_cells(), 6);
    }

    #[test]
    fn schema_and_lookup() {
        let t = sample();
        assert_eq!(t.schema().attributes(), &["id", "name", "price"]);
        assert_eq!(t.column_by_name("name").unwrap().values()[1], "bee");
        assert!(t.column_by_name("missing").is_none());
    }

    #[test]
    fn row_access() {
        let t = sample();
        assert_eq!(t.row(0).unwrap(), vec!["1", "ant", "0.5"]);
        assert!(t.row(2).is_none());
    }

    #[test]
    fn ragged_row_rejected() {
        let err = Table::from_string_rows(
            "t",
            &["a", "b"],
            vec![vec!["1".into(), "2".into()], vec!["3".into()]],
        )
        .unwrap_err();
        assert_eq!(
            err,
            TableError::RaggedRow {
                row: 1,
                found: 1,
                expected: 2
            }
        );
    }

    #[test]
    fn empty_header_rejected() {
        let header: [&str; 0] = [];
        let err = Table::from_string_rows("t", &header, vec![]).unwrap_err();
        assert_eq!(err, TableError::NoColumns);
    }

    #[test]
    fn column_length_mismatch_rejected() {
        let err = Table::new(
            "t",
            vec![
                Column::from_slice("a", &["1", "2"]),
                Column::from_slice("b", &["1"]),
            ],
        )
        .unwrap_err();
        assert!(matches!(err, TableError::ColumnLengthMismatch { .. }));
    }

    #[test]
    fn types_inferred_per_column() {
        let t = sample();
        assert_eq!(t.column(0).unwrap().atomic_type(), AtomicType::Integer);
        assert_eq!(t.column(1).unwrap().atomic_type(), AtomicType::String);
        assert_eq!(t.column(2).unwrap().atomic_type(), AtomicType::Float);
    }

    #[test]
    fn provenance_roundtrip() {
        let t = sample().with_provenance(Provenance::new("r", "f.csv").with_topic("id"));
        assert_eq!(t.provenance().topic, "id");
    }
}
