//! Relational table data model for the GitTables reproduction.
//!
//! This crate defines the in-memory representation of a relational table as
//! extracted from a CSV file: a [`Table`] is an ordered collection of named
//! [`Column`]s, each holding string-typed cells plus an inferred
//! [`AtomicType`]. The model intentionally mirrors what the GitTables paper
//! (SIGMOD 2023, §3.3) works with after parsing: headers are strings, values
//! are strings, and atomic data types (numeric / string / date / boolean /
//! other) are *inferred* from the values, reproducing the atomic-type
//! distribution analysis of Table 4 in the paper.
//!
//! # Example
//!
//! ```
//! use gittables_table::{Table, AtomicType};
//!
//! let table = Table::from_rows(
//!     "orders",
//!     &["id", "price", "status"],
//!     &[
//!         &["1", "9.99", "AVAILABLE"],
//!         &["2", "12.50", "SOLD"],
//!     ],
//! )
//! .unwrap();
//!
//! assert_eq!(table.num_rows(), 2);
//! assert_eq!(table.num_columns(), 3);
//! assert_eq!(table.column(0).unwrap().atomic_type(), AtomicType::Integer);
//! assert_eq!(table.column(2).unwrap().atomic_type(), AtomicType::String);
//! ```

#![warn(missing_docs)]

pub mod atomic;
pub mod column;
pub mod error;
pub mod provenance;
pub mod schema;
pub mod stats;
#[allow(clippy::module_inception)]
pub mod table;

pub use atomic::{infer_column_type, infer_value_type, AtomicType};
pub use column::Column;
pub use error::TableError;
pub use provenance::Provenance;
pub use schema::Schema;
pub use stats::{ColumnStats, TableStats};
pub use table::Table;
