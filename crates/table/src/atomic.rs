//! Atomic data type inference for cell values and columns.
//!
//! GitTables reports the distribution of *atomic* data types (Table 4 in the
//! paper): numeric vs. string vs. other. We infer a finer-grained
//! [`AtomicType`] per value (integer, float, boolean, date, string, empty) and
//! aggregate to a column-level type by majority voting over non-empty cells,
//! which is how Pandas-style readers decide column dtypes in practice.

use serde::{Deserialize, Serialize};

/// The atomic (syntactic) data type of a cell value or column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum AtomicType {
    /// Integral number, e.g. `42`, `-7`, `1_000` is *not* accepted.
    Integer,
    /// Floating point number, e.g. `3.14`, `1e-3`, `-0.5`.
    Float,
    /// Boolean-like token: `true`/`false`/`yes`/`no`/`t`/`f` (case-insensitive).
    Boolean,
    /// A calendar date or timestamp in one of the common CSV formats.
    Date,
    /// Any other non-empty text.
    String,
    /// Empty cell or a conventional missing-data marker (`nan`, `null`, `NA`, …).
    Empty,
}

impl AtomicType {
    /// Whether this type counts as "numeric" for the paper's Table 4 buckets.
    #[must_use]
    pub fn is_numeric(self) -> bool {
        matches!(self, AtomicType::Integer | AtomicType::Float)
    }

    /// Whether this type counts as "string" for the paper's Table 4 buckets.
    ///
    /// Dates and booleans are included: CSV readers in the Pandas family
    /// leave unparsed dates and boolean-ish tokens as `object` (string)
    /// dtype, which is the atomic-type notion Table 4 reports. The "other"
    /// bucket is then all-empty columns.
    #[must_use]
    pub fn is_string(self) -> bool {
        matches!(
            self,
            AtomicType::String | AtomicType::Date | AtomicType::Boolean
        )
    }

    /// Human-readable lowercase name, matching the ontology's atomic labels.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            AtomicType::Integer => "integer",
            AtomicType::Float => "float",
            AtomicType::Boolean => "boolean",
            AtomicType::Date => "date",
            AtomicType::String => "string",
            AtomicType::Empty => "empty",
        }
    }
}

impl std::fmt::Display for AtomicType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Conventional missing-data markers treated as empty cells.
const MISSING_MARKERS: &[&str] = &[
    "", "nan", "null", "none", "na", "n/a", "-", "--", "?", "missing", "nil",
];

/// Returns `true` if `value` is empty or a conventional missing-data marker.
#[must_use]
pub fn is_missing(value: &str) -> bool {
    let v = value.trim();
    if v.is_empty() {
        return true;
    }
    let lower = v.to_ascii_lowercase();
    MISSING_MARKERS.contains(&lower.as_str())
}

fn is_integer(v: &str) -> bool {
    let v = v.strip_prefix(['+', '-']).unwrap_or(v);
    !v.is_empty() && v.len() <= 19 && v.bytes().all(|b| b.is_ascii_digit())
}

fn is_float(v: &str) -> bool {
    // Fast-path rejection: floats only contain a small byte alphabet.
    if !v
        .bytes()
        .all(|b| b.is_ascii_digit() || matches!(b, b'+' | b'-' | b'.' | b'e' | b'E'))
    {
        return false;
    }
    // Must contain at least one digit; `parse::<f64>` also accepts "inf"/"NaN"
    // but those are excluded by the alphabet check above.
    v.bytes().any(|b| b.is_ascii_digit()) && v.parse::<f64>().is_ok()
}

fn is_boolean(v: &str) -> bool {
    matches!(
        v.to_ascii_lowercase().as_str(),
        "true" | "false" | "yes" | "no" | "t" | "f"
    )
}

/// Checks whether the byte is an accepted date separator.
fn is_date_sep(b: u8) -> bool {
    matches!(b, b'-' | b'/' | b'.')
}

fn valid_month_day(month: u32, day: u32) -> bool {
    (1..=12).contains(&month) && (1..=31).contains(&day)
}

/// Detects common date and timestamp layouts:
/// `YYYY-MM-DD`, `DD-MM-YYYY`, `MM/DD/YYYY`, `YYYY/MM/DD`, optionally followed
/// by a `HH:MM[:SS]` time component separated by a space or `T`.
#[must_use]
pub fn is_date(v: &str) -> bool {
    // Split off an optional time suffix.
    let date_part = match v.split_once([' ', 'T']) {
        Some((d, t)) => {
            if !is_time(t) {
                return false;
            }
            d
        }
        None => v,
    };
    let bytes = date_part.as_bytes();
    if bytes.len() < 8 || bytes.len() > 10 {
        return false;
    }
    let mut parts = [0u32; 3];
    let mut count = 0;
    let mut sep = 0u8;
    for chunk in date_part.split(|c: char| is_date_sep(c as u8)) {
        if count >= 3 || chunk.is_empty() || !chunk.bytes().all(|b| b.is_ascii_digit()) {
            return false;
        }
        parts[count] = chunk.parse().unwrap_or(u32::MAX);
        count += 1;
    }
    // Determine the separator actually used (all must match).
    for &b in bytes {
        if is_date_sep(b) {
            if sep == 0 {
                sep = b;
            } else if sep != b {
                return false;
            }
        }
    }
    if count != 3 {
        return false;
    }
    let [a, b, c] = parts;
    // YYYY-MM-DD / YYYY/MM/DD
    if (1000..=2999).contains(&a) && valid_month_day(b, c) {
        return true;
    }
    // DD-MM-YYYY / MM/DD/YYYY
    if (1000..=2999).contains(&c) && (valid_month_day(b, a) || valid_month_day(a, b)) {
        return true;
    }
    false
}

fn is_time(t: &str) -> bool {
    let mut it = t.split(':');
    let (Some(h), Some(m)) = (it.next(), it.next()) else {
        return false;
    };
    let s = it.next();
    if it.next().is_some() {
        return false;
    }
    let ok_num = |x: &str, max: u32| {
        x.len() == 2
            && x.bytes().all(|b| b.is_ascii_digit())
            && x.parse::<u32>().unwrap_or(99) <= max
    };
    ok_num(h, 23) && ok_num(m, 59) && s.is_none_or(|s| ok_num(s.trim_end_matches('Z'), 59))
}

/// Infers the [`AtomicType`] of a single cell value.
#[must_use]
pub fn infer_value_type(value: &str) -> AtomicType {
    let v = value.trim();
    if is_missing(v) {
        AtomicType::Empty
    } else if is_integer(v) {
        AtomicType::Integer
    } else if is_float(v) {
        AtomicType::Float
    } else if is_boolean(v) {
        AtomicType::Boolean
    } else if is_date(v) {
        AtomicType::Date
    } else {
        AtomicType::String
    }
}

/// Infers the column-level type by majority vote over non-empty cells.
///
/// Mixed integer/float columns resolve to [`AtomicType::Float`] (matching
/// Pandas' promotion rules); columns whose cells are all empty resolve to
/// [`AtomicType::Empty`]. Ties are broken in favour of [`AtomicType::String`]
/// since any value can be read as a string.
#[must_use]
pub fn infer_column_type<S: AsRef<str>>(values: &[S]) -> AtomicType {
    let mut counts = [0usize; 6];
    for v in values {
        let t = infer_value_type(v.as_ref());
        counts[t as usize] += 1;
    }
    let non_empty: usize = counts[..5].iter().sum();
    if non_empty == 0 {
        return AtomicType::Empty;
    }
    let int_f = counts[AtomicType::Integer as usize] + counts[AtomicType::Float as usize];
    // Numeric promotion: if numeric cells dominate, the column is numeric.
    if int_f * 2 > non_empty {
        return if counts[AtomicType::Float as usize] > 0 {
            AtomicType::Float
        } else {
            AtomicType::Integer
        };
    }
    let candidates = [AtomicType::Boolean, AtomicType::Date, AtomicType::String];
    let mut best = AtomicType::String;
    let mut best_count = 0usize;
    for t in candidates {
        let c = counts[t as usize];
        if c > best_count {
            best = t;
            best_count = c;
        }
    }
    if int_f > best_count {
        // Numeric plurality but not majority: still numeric by plurality.
        if counts[AtomicType::Float as usize] > 0 {
            AtomicType::Float
        } else {
            AtomicType::Integer
        }
    } else {
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integers() {
        for v in ["0", "42", "-7", "+13", "1234567890"] {
            assert_eq!(infer_value_type(v), AtomicType::Integer, "{v}");
        }
    }

    #[test]
    fn floats() {
        for v in ["3.14", "-0.5", "1e-3", "2.5E2", ".5", "5."] {
            assert_eq!(infer_value_type(v), AtomicType::Float, "{v}");
        }
    }

    #[test]
    fn not_numbers() {
        for v in ["abc", "12a", "1_000", "1,000", "inf", "NaN3", "e5", "+-3"] {
            let t = infer_value_type(v);
            assert!(!t.is_numeric(), "{v} inferred {t:?}");
        }
    }

    #[test]
    fn booleans() {
        for v in ["true", "FALSE", "Yes", "no", "T", "f"] {
            assert_eq!(infer_value_type(v), AtomicType::Boolean, "{v}");
        }
    }

    #[test]
    fn dates() {
        for v in [
            "2021-06-14",
            "14/06/2021",
            "06/14/2021",
            "2021/06/14",
            "2021-06-14 13:45",
            "2021-06-14T13:45:59",
        ] {
            assert_eq!(infer_value_type(v), AtomicType::Date, "{v}");
        }
    }

    #[test]
    fn non_dates() {
        for v in [
            "2021-13-44",
            "2021-06",
            "14-15-16",
            "2021-06-14 99:99",
            "20210614",
            "2021--06--14",
            "2021-06/14",
        ] {
            assert_ne!(infer_value_type(v), AtomicType::Date, "{v}");
        }
    }

    #[test]
    fn missing_markers() {
        for v in ["", "  ", "nan", "NULL", "N/A", "-", "?"] {
            assert_eq!(infer_value_type(v), AtomicType::Empty, "{v:?}");
        }
    }

    #[test]
    fn strings() {
        for v in ["hello", "Enterococcus faecium", "a1b2", "42nd street"] {
            assert_eq!(infer_value_type(v), AtomicType::String, "{v}");
        }
    }

    #[test]
    fn column_majority_integer() {
        let t = infer_column_type(&["1", "2", "3", "x"]);
        assert_eq!(t, AtomicType::Integer);
    }

    #[test]
    fn column_promotes_mixed_numeric_to_float() {
        let t = infer_column_type(&["1", "2.5", "3"]);
        assert_eq!(t, AtomicType::Float);
    }

    #[test]
    fn column_all_empty() {
        let t = infer_column_type(&["", "nan", "NULL"]);
        assert_eq!(t, AtomicType::Empty);
    }

    #[test]
    fn column_string_majority() {
        let t = infer_column_type(&["a", "b", "c", "1"]);
        assert_eq!(t, AtomicType::String);
    }

    #[test]
    fn column_ignores_missing_in_vote() {
        let t = infer_column_type(&["1", "nan", "nan", "2"]);
        assert_eq!(t, AtomicType::Integer);
    }

    #[test]
    fn column_date_majority() {
        let t = infer_column_type(&["2020-01-01", "2020-01-02", "x"]);
        assert_eq!(t, AtomicType::Date);
    }

    #[test]
    fn empty_slice_is_empty() {
        let vals: [&str; 0] = [];
        assert_eq!(infer_column_type(&vals), AtomicType::Empty);
    }

    #[test]
    fn display_names() {
        assert_eq!(AtomicType::Integer.to_string(), "integer");
        assert_eq!(AtomicType::String.to_string(), "string");
    }

    #[test]
    fn huge_digit_string_not_integer_overflow() {
        // 25 digits exceeds the i64-safe length cap; must not panic.
        let t = infer_value_type("1234567890123456789012345");
        assert_ne!(t, AtomicType::Integer);
    }
}
