//! A named column of string-typed cells with a lazily inferred atomic type.

use serde::{Deserialize, Serialize};

use crate::atomic::{infer_column_type, is_missing, AtomicType};

/// A single table column: a name plus cell values (all represented as text,
/// as parsed from CSV).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Column {
    name: String,
    values: Vec<String>,
    /// Cached column type; recomputed on mutation.
    atomic: AtomicType,
}

impl Column {
    /// Creates a column from a name and values, inferring its atomic type.
    #[must_use]
    pub fn new(name: impl Into<String>, values: Vec<String>) -> Self {
        let atomic = infer_column_type(&values);
        Column {
            name: name.into(),
            values,
            atomic,
        }
    }

    /// Reassembles a column from parts persisted by a binary decoder,
    /// trusting `atomic` instead of re-inferring it. `atomic` should be
    /// the value [`infer_column_type`] would produce for `values` (every
    /// encoder persists the inferred type verbatim, so decoding restores
    /// exactly what was saved); a different value produces a column whose
    /// cached type lies until the next [`Self::replace_values`] — the
    /// same trust serde deserialization of the `atomic` field already
    /// extends, so decoders stay panic-free on untrusted bytes.
    #[must_use]
    pub fn from_raw_parts(name: String, values: Vec<String>, atomic: AtomicType) -> Self {
        Column {
            name,
            values,
            atomic,
        }
    }

    /// Creates a column from string slices.
    #[must_use]
    pub fn from_slice<S: AsRef<str>>(name: impl Into<String>, values: &[S]) -> Self {
        Column::new(
            name,
            values.iter().map(|v| v.as_ref().to_string()).collect(),
        )
    }

    /// The column (header) name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The inferred atomic type of the column.
    #[must_use]
    pub fn atomic_type(&self) -> AtomicType {
        self.atomic
    }

    /// The cell values.
    #[must_use]
    pub fn values(&self) -> &[String] {
        &self.values
    }

    /// Number of cells.
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the column has no cells.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Fraction of cells that are missing/empty markers; 0 for empty columns.
    #[must_use]
    pub fn missing_fraction(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        let missing = self.values.iter().filter(|v| is_missing(v)).count();
        missing as f64 / self.values.len() as f64
    }

    /// Number of distinct values (exact, by sorting clones; intended for
    /// statistics over modest columns, not hot paths).
    #[must_use]
    pub fn distinct_count(&self) -> usize {
        let mut sorted: Vec<&str> = self.values.iter().map(String::as_str).collect();
        sorted.sort_unstable();
        sorted.dedup();
        sorted.len()
    }

    /// Replaces all values, re-inferring the atomic type. Used by the
    /// anonymization pass.
    pub fn replace_values(&mut self, values: Vec<String>) {
        self.atomic = infer_column_type(&values);
        self.values = values;
    }

    /// Renames the column.
    pub fn rename(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Whether the header name is unspecified (empty or a Pandas-style
    /// `Unnamed: N` placeholder), per the curation rules of §3.3.
    #[must_use]
    pub fn is_unnamed(&self) -> bool {
        let n = self.name.trim();
        n.is_empty() || n.to_ascii_lowercase().starts_with("unnamed")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn infers_type_on_construction() {
        let c = Column::from_slice("price", &["1.5", "2.0", "3.25"]);
        assert_eq!(c.atomic_type(), AtomicType::Float);
        assert_eq!(c.len(), 3);
        assert!(!c.is_empty());
    }

    #[test]
    fn missing_fraction() {
        let c = Column::from_slice("state", &["nan", "CA", "", "NY"]);
        assert!((c.missing_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn missing_fraction_empty_column() {
        let c = Column::new("x", vec![]);
        assert_eq!(c.missing_fraction(), 0.0);
    }

    #[test]
    fn distinct_count() {
        let c = Column::from_slice("g", &["a", "b", "a", "c", "b"]);
        assert_eq!(c.distinct_count(), 3);
    }

    #[test]
    fn replace_values_reinfers() {
        let mut c = Column::from_slice("v", &["1", "2"]);
        assert_eq!(c.atomic_type(), AtomicType::Integer);
        c.replace_values(vec!["x".into(), "y".into()]);
        assert_eq!(c.atomic_type(), AtomicType::String);
    }

    #[test]
    fn unnamed_detection() {
        assert!(Column::from_slice("", &["1"]).is_unnamed());
        assert!(Column::from_slice("Unnamed: 3", &["1"]).is_unnamed());
        assert!(!Column::from_slice("id", &["1"]).is_unnamed());
    }
}
