//! Lightweight per-column and per-table statistics.
//!
//! These feed the corpus-level analyses (paper §4.1) and are deliberately
//! cheap; the heavy 1 188-dimensional Sherlock feature extraction lives in the
//! `gittables-ml` crate.

use serde::{Deserialize, Serialize};

use crate::{AtomicType, Column, Table};

/// Summary statistics of a single column.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColumnStats {
    /// Column name.
    pub name: String,
    /// Inferred atomic type.
    pub atomic_type: AtomicType,
    /// Number of cells.
    pub len: usize,
    /// Number of distinct values.
    pub distinct: usize,
    /// Fraction of missing cells in `[0, 1]`.
    pub missing_fraction: f64,
    /// Mean cell length in characters over non-missing cells.
    pub mean_cell_len: f64,
}

impl ColumnStats {
    /// Computes statistics for a column.
    #[must_use]
    pub fn of(column: &Column) -> Self {
        let non_missing: Vec<&String> = column
            .values()
            .iter()
            .filter(|v| !crate::atomic::is_missing(v))
            .collect();
        let mean_cell_len = if non_missing.is_empty() {
            0.0
        } else {
            non_missing.iter().map(|v| v.chars().count()).sum::<usize>() as f64
                / non_missing.len() as f64
        };
        ColumnStats {
            name: column.name().to_string(),
            atomic_type: column.atomic_type(),
            len: column.len(),
            distinct: column.distinct_count(),
            missing_fraction: column.missing_fraction(),
            mean_cell_len,
        }
    }
}

/// Summary statistics of a whole table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableStats {
    /// Table name.
    pub name: String,
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub columns: usize,
    /// Number of cells.
    pub cells: usize,
    /// Per-column statistics.
    pub column_stats: Vec<ColumnStats>,
}

impl TableStats {
    /// Computes statistics for a table.
    #[must_use]
    pub fn of(table: &Table) -> Self {
        TableStats {
            name: table.name().to_string(),
            rows: table.num_rows(),
            columns: table.num_columns(),
            cells: table.num_cells(),
            column_stats: table.columns().iter().map(ColumnStats::of).collect(),
        }
    }

    /// Count of columns per atomic-type bucket: `(numeric, string, other)`,
    /// the buckets of the paper's Table 4.
    #[must_use]
    pub fn atomic_buckets(&self) -> (usize, usize, usize) {
        let mut numeric = 0;
        let mut string = 0;
        let mut other = 0;
        for c in &self.column_stats {
            if c.atomic_type.is_numeric() {
                numeric += 1;
            } else if c.atomic_type.is_string() {
                string += 1;
            } else {
                other += 1;
            }
        }
        (numeric, string, other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Table;

    #[test]
    fn column_stats() {
        let c = Column::from_slice("x", &["ab", "nan", "abcd"]);
        let s = ColumnStats::of(&c);
        assert_eq!(s.len, 3);
        assert_eq!(s.distinct, 3);
        assert!((s.missing_fraction - 1.0 / 3.0).abs() < 1e-12);
        assert!((s.mean_cell_len - 3.0).abs() < 1e-12);
    }

    #[test]
    fn table_stats_and_buckets() {
        let t = Table::from_rows(
            "t",
            &["id", "name", "price", "when"],
            &[
                &["1", "ant", "0.5", "2020-01-01"],
                &["2", "bee", "1.5", "2020-01-02"],
            ],
        )
        .unwrap();
        let s = TableStats::of(&t);
        assert_eq!(s.rows, 2);
        assert_eq!(s.columns, 4);
        assert_eq!(s.cells, 8);
        let (num, st, other) = s.atomic_buckets();
        // Dates bucket as string (Pandas object dtype); see `is_string`.
        assert_eq!((num, st, other), (2, 2, 0));
    }

    #[test]
    fn all_missing_column_mean_len_zero() {
        let c = Column::from_slice("x", &["nan", ""]);
        let s = ColumnStats::of(&c);
        assert_eq!(s.mean_cell_len, 0.0);
    }
}
