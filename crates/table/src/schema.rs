//! Table schemas (ordered attribute-name lists) and schema prefixes.
//!
//! Schemas are the unit of comparison for the schema-completion application
//! (paper §5.2, Algorithm 1): a *prefix* of length `N` is matched against the
//! prefixes of corpus schemas.

use serde::{Deserialize, Serialize};

/// An ordered list of attribute names.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Schema {
    attributes: Vec<String>,
}

impl Schema {
    /// Creates a schema from attribute names.
    #[must_use]
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(attrs: I) -> Self {
        Schema {
            attributes: attrs.into_iter().map(Into::into).collect(),
        }
    }

    /// The attribute names in order.
    #[must_use]
    pub fn attributes(&self) -> &[String] {
        &self.attributes
    }

    /// Number of attributes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.attributes.len()
    }

    /// Whether the schema has no attributes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.attributes.is_empty()
    }

    /// The first `n` attributes as a new schema (all of them if `n > len`).
    #[must_use]
    pub fn prefix(&self, n: usize) -> Schema {
        Schema {
            attributes: self.attributes[..n.min(self.attributes.len())].to_vec(),
        }
    }

    /// The attributes after the first `n` (the "completion" of a prefix).
    #[must_use]
    pub fn suffix(&self, n: usize) -> &[String] {
        &self.attributes[n.min(self.attributes.len())..]
    }

    /// Iterator over attribute names.
    pub fn iter(&self) -> impl Iterator<Item = &str> {
        self.attributes.iter().map(String::as_str)
    }
}

impl<S: Into<String>> FromIterator<S> for Schema {
    fn from_iter<T: IntoIterator<Item = S>>(iter: T) -> Self {
        Schema::new(iter)
    }
}

impl std::fmt::Display for Schema {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}]", self.attributes.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_and_suffix() {
        let s = Schema::new(["a", "b", "c", "d"]);
        assert_eq!(
            s.prefix(2).attributes(),
            &["a".to_string(), "b".to_string()]
        );
        assert_eq!(s.suffix(2), &["c".to_string(), "d".to_string()]);
        assert_eq!(s.prefix(10).len(), 4);
        assert!(s.suffix(10).is_empty());
    }

    #[test]
    fn display() {
        let s = Schema::new(["id", "name"]);
        assert_eq!(s.to_string(), "[id, name]");
    }

    #[test]
    fn from_iterator() {
        let s: Schema = ["x", "y"].into_iter().collect();
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
    }
}
