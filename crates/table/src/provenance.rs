//! Provenance metadata: where a table came from.
//!
//! GitTables keeps the source URL of every table so that tables split across
//! files in the same repository (e.g. daily snapshots) can later be unioned
//! (§4.1 of the paper). We record the repository, file path, license, and the
//! topic query that retrieved the file.

use serde::{Deserialize, Serialize};

/// Source information for an extracted table.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Provenance {
    /// Repository identifier, e.g. `"alice/rides"`.
    pub repository: String,
    /// Path of the CSV file inside the repository.
    pub path: String,
    /// SPDX-style license identifier of the repository, if any.
    pub license: Option<String>,
    /// The WordNet topic whose query retrieved this file.
    pub topic: String,
    /// Size of the raw CSV file in bytes.
    pub file_size: usize,
}

impl Provenance {
    /// Creates provenance for a repository file.
    #[must_use]
    pub fn new(repository: impl Into<String>, path: impl Into<String>) -> Self {
        Provenance {
            repository: repository.into(),
            path: path.into(),
            ..Default::default()
        }
    }

    /// Sets the license.
    #[must_use]
    pub fn with_license(mut self, license: impl Into<String>) -> Self {
        self.license = Some(license.into());
        self
    }

    /// Sets the retrieving topic.
    #[must_use]
    pub fn with_topic(mut self, topic: impl Into<String>) -> Self {
        self.topic = topic.into();
        self
    }

    /// A stable URL-like identifier, `"<repository>/<path>"`.
    #[must_use]
    pub fn url(&self) -> String {
        format!("{}/{}", self.repository, self.path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_url() {
        let p = Provenance::new("alice/rides", "data/rides.csv")
            .with_license("mit")
            .with_topic("ride");
        assert_eq!(p.url(), "alice/rides/data/rides.csv");
        assert_eq!(p.license.as_deref(), Some("mit"));
        assert_eq!(p.topic, "ride");
    }
}
