//! Error type for table construction.

use std::fmt;

/// Errors produced when constructing or manipulating a [`crate::Table`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TableError {
    /// A row had a different number of values than the header.
    RaggedRow {
        /// Zero-based row index.
        row: usize,
        /// Number of values found in the row.
        found: usize,
        /// Number of columns expected from the header.
        expected: usize,
    },
    /// Duplicate column name after normalization.
    DuplicateColumn(String),
    /// The table has no columns.
    NoColumns,
    /// Columns passed to `Table::new` have inconsistent lengths.
    ColumnLengthMismatch {
        /// Name of the offending column.
        column: String,
        /// Its length.
        found: usize,
        /// Length of the first column.
        expected: usize,
    },
}

impl fmt::Display for TableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableError::RaggedRow {
                row,
                found,
                expected,
            } => write!(
                f,
                "row {row} has {found} values but the header has {expected} columns"
            ),
            TableError::DuplicateColumn(name) => write!(f, "duplicate column name: {name:?}"),
            TableError::NoColumns => write!(f, "table has no columns"),
            TableError::ColumnLengthMismatch {
                column,
                found,
                expected,
            } => write!(
                f,
                "column {column:?} has {found} values, expected {expected}"
            ),
        }
    }
}

impl std::error::Error for TableError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = TableError::RaggedRow {
            row: 3,
            found: 2,
            expected: 5,
        };
        assert!(e.to_string().contains("row 3"));
        assert!(TableError::NoColumns.to_string().contains("no columns"));
        assert!(TableError::DuplicateColumn("id".into())
            .to_string()
            .contains("id"));
    }
}
