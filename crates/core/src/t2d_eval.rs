//! Annotation-quality evaluation on the T2Dv2-style gold standard (§4.3).
//!
//! For each gold-labeled column we run an annotator and compare its label to
//! the human label:
//!
//! * **agreement** — same label (paper: semantic 54 %, syntactic 61 %);
//! * among disagreements, the fraction where our annotation *syntactically
//!   matches the header* (similarity 1.0) — the paper's 47 %-of-errors case
//!   where the human chose a less granular type (`City` → `location`) and
//!   our more specific annotation is arguably better;
//! * disagreements broken down by the generator's gold-kind classes.

use gittables_annotate::{Annotation, SemanticAnnotator, SyntacticAnnotator};
use gittables_synth::t2d::{GoldKind, GoldTable};
use serde::{Deserialize, Serialize};

/// Aggregate agreement statistics of one annotator on the benchmark.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct T2dReport {
    /// Columns where both gold and the annotator produced a label.
    pub evaluated: usize,
    /// Same label as gold.
    pub agree: usize,
    /// Disagreements where our label equals the normalized header
    /// (similarity = 1.0) — the "syntactic match, human chose coarser"
    /// bucket.
    pub disagree_syntactic_exact: usize,
    /// Disagreements on columns generated as `LessGranular` gold.
    pub disagree_less_granular: usize,
    /// Disagreements on columns generated as `Paraphrase` gold.
    pub disagree_paraphrase: usize,
    /// Columns the annotator left unannotated (not counted in `evaluated`).
    pub unannotated: usize,
}

impl T2dReport {
    /// Agreement rate over evaluated columns.
    #[must_use]
    pub fn agreement_rate(&self) -> f64 {
        if self.evaluated == 0 {
            return 0.0;
        }
        self.agree as f64 / self.evaluated as f64
    }

    /// Among disagreements, the fraction that are syntactic-exact matches.
    #[must_use]
    pub fn syntactic_exact_fraction(&self) -> f64 {
        let disagree = self.evaluated - self.agree;
        if disagree == 0 {
            return 0.0;
        }
        self.disagree_syntactic_exact as f64 / disagree as f64
    }
}

fn eval_with<F>(benchmark: &[GoldTable], mut annotate: F) -> T2dReport
where
    F: FnMut(usize, &str) -> Option<Annotation>,
{
    let mut report = T2dReport::default();
    for table in benchmark {
        for (ci, col) in table.columns.iter().enumerate() {
            let Some(ann) = annotate(ci, &col.header) else {
                report.unannotated += 1;
                continue;
            };
            report.evaluated += 1;
            if ann.label == col.gold_label {
                report.agree += 1;
            } else {
                if (ann.similarity - 1.0).abs() < 1e-5 {
                    report.disagree_syntactic_exact += 1;
                }
                match col.kind {
                    GoldKind::LessGranular => report.disagree_less_granular += 1,
                    GoldKind::Paraphrase => report.disagree_paraphrase += 1,
                    GoldKind::Exact => {}
                }
            }
        }
    }
    report
}

/// Evaluates the syntactic annotator on the benchmark.
#[must_use]
pub fn evaluate_syntactic(benchmark: &[GoldTable], annotator: &SyntacticAnnotator) -> T2dReport {
    eval_with(benchmark, |ci, header| annotator.annotate_name(ci, header))
}

/// Evaluates the semantic annotator on the benchmark.
#[must_use]
pub fn evaluate_semantic(benchmark: &[GoldTable], annotator: &SemanticAnnotator) -> T2dReport {
    eval_with(benchmark, |ci, header| annotator.annotate_name(ci, header))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gittables_ontology::dbpedia;
    use gittables_synth::t2d::generate_benchmark;
    use std::sync::Arc;

    #[test]
    fn syntactic_agreement_in_paper_regime() {
        let bench = generate_benchmark(1, 150, 8);
        let ont = Arc::new(dbpedia());
        let r = evaluate_syntactic(&bench, &SyntacticAnnotator::new(ont));
        // Paper: 61 % agreement; exact-gold columns agree, less-granular and
        // some paraphrase ones don't. Accept a broad band around it.
        let rate = r.agreement_rate();
        assert!((0.40..0.85).contains(&rate), "rate {rate}");
        assert!(r.evaluated > 100);
    }

    #[test]
    fn semantic_disagreements_often_syntactic_exact() {
        let bench = generate_benchmark(2, 150, 8);
        let ont = Arc::new(dbpedia());
        let r = evaluate_semantic(&bench, &SemanticAnnotator::new(ont));
        // Paper: 47 % of semantic disagreements carry similarity 1.0 (the
        // human picked a coarser type).
        assert!(r.evaluated > 100);
        if r.evaluated > r.agree {
            assert!(
                r.syntactic_exact_fraction() > 0.2,
                "fraction {}",
                r.syntactic_exact_fraction()
            );
        }
    }

    #[test]
    fn less_granular_columns_disagree() {
        let bench = generate_benchmark(3, 200, 5);
        let ont = Arc::new(dbpedia());
        let r = evaluate_syntactic(&bench, &SyntacticAnnotator::new(ont));
        assert!(r.disagree_less_granular > 0);
    }

    #[test]
    fn report_rates_safe_on_empty() {
        let r = T2dReport::default();
        assert_eq!(r.agreement_rate(), 0.0);
        assert_eq!(r.syntactic_exact_fraction(), 0.0);
    }
}
