//! The long-running crawl daemon: repeated incremental store passes with
//! scheduled quarantine draining and graceful shutdown.
//!
//! GitTables is a *continuously crawled* corpus — extraction does not
//! finish, it keeps revisiting the host for new repositories and heals
//! previously failed ones. [`crawl`] loops store-backed pipeline passes
//! over the existing resume machinery:
//!
//! * every pass is an incremental [`Pipeline::run_to_store_crawl`] —
//!   shards already in the store are skipped, new ones commit
//!   atomically;
//! * every [`CrawlOptions::drain_every`]-th pass re-attempts quarantined
//!   repositories whose **per-repo exponential cooldown** has expired;
//!   a repository that fails its re-attempt waits twice as many passes
//!   before the next one. Cooldowns persist in `crawl_state.json`
//!   alongside `quarantine.json`, so the schedule survives restarts;
//! * each pass reports pool/breaker statistics (when the host is a
//!   [`gittables_githost::HostPool`]) via [`PassOutcome::pool`];
//! * a stop flag — typically set by the [`signals`] SIGTERM/SIGINT
//!   handler — stops the loop *gracefully*: in-flight shards finish and
//!   commit, deferred shards wait for the next daemon start, and the
//!   crawl state is saved before returning.

use std::collections::HashSet;
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use gittables_corpus::store::{CorpusStore, StoreError};
use gittables_githost::{sleep_until_stop, CodeHost, PoolStats};
use serde::{Deserialize, Serialize};

use crate::pipeline::{Pipeline, StoreRun};
use crate::quarantine::QuarantineLog;

/// Sidecar file holding the crawl pass counter and drain cooldowns,
/// next to `quarantine.json` in the store directory.
pub const CRAWL_STATE_FILE: &str = "crawl_state.json";

/// The drain cooldown of one quarantined repository.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RepoCooldown {
    /// Repository `owner/name`.
    pub name: String,
    /// Consecutive failed drain re-attempts so far.
    pub failures: u32,
    /// First pass number at which the next re-attempt is allowed.
    pub eligible_pass: u64,
}

/// The persisted crawl-daemon state: a monotonic pass counter and the
/// per-repository drain cooldowns. Saved atomically after every pass.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrawlState {
    /// Total passes run against this store across daemon restarts.
    pub pass: u64,
    /// Active cooldowns; entries leave when their repository heals or
    /// drops out of quarantine.
    pub cooldowns: Vec<RepoCooldown>,
}

impl CrawlState {
    /// Reads the sidecar from a store directory; a missing file is a
    /// fresh state.
    ///
    /// # Errors
    /// I/O failures other than the file not existing, and malformed
    /// JSON (surfaced as [`std::io::ErrorKind::InvalidData`]).
    pub fn load(dir: &Path) -> std::io::Result<Self> {
        let path = dir.join(CRAWL_STATE_FILE);
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(CrawlState::default()),
            Err(e) => return Err(e),
        };
        serde_json::from_str(&text)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
    }

    /// Atomically rewrites the sidecar (write-to-temp, fsync, rename),
    /// the same crash-consistency discipline as `quarantine.json`.
    ///
    /// # Errors
    /// Underlying I/O failures.
    pub fn save(&self, dir: &Path) -> std::io::Result<()> {
        let tmp = dir.join(format!("{CRAWL_STATE_FILE}.tmp"));
        let text = serde_json::to_string(self)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(text.as_bytes())?;
        f.sync_all()?;
        drop(f);
        std::fs::rename(&tmp, dir.join(CRAWL_STATE_FILE))
    }

    /// Whether `repo` may be re-attempted at the current pass.
    #[must_use]
    pub fn eligible(&self, repo: &str) -> bool {
        self.cooldowns
            .iter()
            .find(|c| c.name == repo)
            .is_none_or(|c| self.pass >= c.eligible_pass)
    }

    /// Records a failed drain re-attempt of `repo`: its cooldown doubles
    /// (`base`, `2·base`, `4·base`, … passes, capped at `65536·base`).
    fn note_failed_drain(&mut self, repo: &str, base_passes: u64) {
        let base = base_passes.max(1);
        match self.cooldowns.iter_mut().find(|c| c.name == repo) {
            Some(c) => {
                c.failures += 1;
                let wait = base << u64::from((c.failures - 1).min(16));
                c.eligible_pass = self.pass + wait;
            }
            None => self.cooldowns.push(RepoCooldown {
                name: repo.to_string(),
                failures: 1,
                eligible_pass: self.pass + base,
            }),
        }
    }
}

/// Configuration of a [`crawl`] loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrawlOptions {
    /// Passes to run before returning; `None` loops until the stop flag.
    pub passes: Option<u64>,
    /// Idle time between passes (stop-aware, interruption-safe).
    pub interval: Duration,
    /// Cap on freshly processed shards per pass (`max_new_shards` of the
    /// underlying store run).
    pub max_shards_per_pass: Option<usize>,
    /// Re-attempt cooldown-eligible quarantined repositories every this
    /// many passes; `0` never drains.
    pub drain_every: u64,
    /// Cooldown after the first failed re-attempt, in passes; doubles
    /// per consecutive failure.
    pub cooldown_base_passes: u64,
}

impl Default for CrawlOptions {
    fn default() -> Self {
        CrawlOptions {
            passes: None,
            interval: Duration::from_millis(1_000),
            max_shards_per_pass: None,
            drain_every: 2,
            cooldown_base_passes: 1,
        }
    }
}

/// What one crawl pass did, handed to the `on_pass` observer.
#[derive(Debug)]
pub struct PassOutcome {
    /// The cumulative pass number (persisted across restarts).
    pub pass: u64,
    /// The underlying store run: corpus, merged report, shard counts.
    pub run: StoreRun,
    /// Quarantined repositories this pass re-attempted (drain set).
    pub drained: Vec<String>,
    /// The subset of `drained` that healed (left quarantine).
    pub healed: Vec<String>,
    /// Repositories quarantined after this pass.
    pub quarantined: usize,
    /// Pool scheduling stats for *this pass* (deltas), when the host is
    /// a replica pool.
    pub pool: Option<PoolStats>,
}

/// How a [`crawl`] loop ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrawlSummary {
    /// Passes this invocation ran.
    pub passes_run: u64,
    /// Cumulative pass counter (including previous daemon runs).
    pub pass: u64,
    /// Whether the stop flag ended the loop (vs. the pass budget).
    pub interrupted: bool,
    /// Repositories quarantined at exit.
    pub quarantined: usize,
}

/// Runs the crawl loop: incremental store passes, scheduled quarantine
/// drains with exponential per-repo cooldowns, per-pass observer
/// callbacks, and graceful stop. See the [module docs](self).
///
/// # Errors
/// Store I/O and consistency failures from the underlying runs; crawl
/// and quarantine sidecar I/O surfaces as [`StoreError::Io`].
pub fn crawl(
    pipeline: &Pipeline,
    host: &dyn CodeHost,
    store: &CorpusStore,
    options: &CrawlOptions,
    stop: &AtomicBool,
    mut on_pass: impl FnMut(&PassOutcome),
) -> Result<CrawlSummary, StoreError> {
    let mut state = CrawlState::load(store.path()).map_err(StoreError::Io)?;
    let mut prev_pool = host.pool_stats();
    let mut passes_run = 0u64;
    let mut quarantined = QuarantineLog::load(store.path())
        .map_err(StoreError::Io)?
        .repos
        .len();
    let mut interrupted = false;
    while !stop.load(Ordering::Relaxed) && options.passes.is_none_or(|p| passes_run < p) {
        state.pass += 1;
        let log = QuarantineLog::load(store.path()).map_err(StoreError::Io)?;
        let drain_pass = options.drain_every > 0 && state.pass % options.drain_every == 0;
        let retry: HashSet<String> = if drain_pass {
            log.repos
                .iter()
                .filter(|q| state.eligible(&q.name))
                .map(|q| q.name.clone())
                .collect()
        } else {
            HashSet::new()
        };
        let run = pipeline.run_to_store_crawl(
            host,
            store,
            options.max_shards_per_pass,
            &retry,
            Some(stop),
        )?;
        let still: HashSet<&str> = run
            .report
            .quarantined_repos
            .iter()
            .map(|q| q.name.as_str())
            .collect();
        let mut drained: Vec<String> = retry.into_iter().collect();
        drained.sort();
        let mut healed = Vec::new();
        for repo in &drained {
            if still.contains(repo.as_str()) {
                state.note_failed_drain(repo, options.cooldown_base_passes);
            } else {
                healed.push(repo.clone());
            }
        }
        // A cooldown only means something while its repository is
        // quarantined; healed or otherwise-released repositories start
        // fresh if they ever re-enter.
        state.cooldowns.retain(|c| still.contains(c.name.as_str()));
        state.save(store.path()).map_err(StoreError::Io)?;
        quarantined = run.report.quarantined_repos.len();
        let pool_now = host.pool_stats();
        let pool = match (&pool_now, &prev_pool) {
            (Some(now), Some(prev)) => Some(now.since(prev)),
            (Some(now), None) => Some(now.clone()),
            (None, _) => None,
        };
        prev_pool = pool_now;
        passes_run += 1;
        interrupted = run.interrupted;
        on_pass(&PassOutcome {
            pass: state.pass,
            run,
            drained,
            healed,
            quarantined,
            pool,
        });
        if interrupted || stop.load(Ordering::Relaxed) {
            interrupted = true;
            break;
        }
        if options.passes.is_some_and(|p| passes_run >= p) {
            break;
        }
        if !options.interval.is_zero() && !sleep_until_stop(options.interval, stop) {
            interrupted = true;
            break;
        }
    }
    if stop.load(Ordering::Relaxed) {
        interrupted = true;
    }
    Ok(CrawlSummary {
        passes_run,
        pass: state.pass,
        interrupted,
        quarantined,
    })
}

/// Process-wide SIGTERM/SIGINT handling for the crawl daemon: the
/// handler is one atomic store into a flag the crawl loop polls at shard
/// boundaries and during interval sleeps — nothing async-signal-unsafe
/// happens in the handler.
pub mod signals {
    use std::sync::atomic::{AtomicBool, Ordering};

    static STOP: AtomicBool = AtomicBool::new(false);

    #[cfg(target_os = "linux")]
    mod sys {
        extern "C" {
            pub fn signal(signum: i32, handler: usize) -> usize;
        }
    }

    #[cfg(target_os = "linux")]
    const SIGINT: i32 = 2;
    #[cfg(target_os = "linux")]
    const SIGTERM: i32 = 15;

    #[cfg(target_os = "linux")]
    extern "C" fn on_stop(_signum: i32) {
        STOP.store(true, Ordering::Relaxed);
    }

    /// Installs the SIGTERM/SIGINT handlers (a no-op off Linux) and
    /// returns the stop flag they set.
    pub fn install() -> &'static AtomicBool {
        #[cfg(target_os = "linux")]
        unsafe {
            sys::signal(SIGINT, on_stop as *const () as usize);
            sys::signal(SIGTERM, on_stop as *const () as usize);
        }
        &STOP
    }

    /// The process-wide stop flag, without (re)installing handlers.
    #[must_use]
    pub fn stop_flag() -> &'static AtomicBool {
        &STOP
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_roundtrip_and_missing_is_fresh() {
        let dir = std::env::temp_dir().join(format!(
            "gt_crawl_state_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        assert_eq!(CrawlState::load(&dir).unwrap(), CrawlState::default());
        let state = CrawlState {
            pass: 7,
            cooldowns: vec![RepoCooldown {
                name: "a/b".into(),
                failures: 2,
                eligible_pass: 11,
            }],
        };
        state.save(&dir).unwrap();
        assert_eq!(CrawlState::load(&dir).unwrap(), state);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cooldowns_double_and_gate_eligibility() {
        let mut state = CrawlState {
            pass: 4,
            ..CrawlState::default()
        };
        assert!(state.eligible("a/b"), "unknown repos are eligible");
        state.note_failed_drain("a/b", 1);
        assert_eq!(state.cooldowns[0].eligible_pass, 5);
        assert!(!state.eligible("a/b"));
        state.pass = 5;
        assert!(state.eligible("a/b"));
        state.note_failed_drain("a/b", 1);
        assert_eq!(state.cooldowns[0].failures, 2);
        assert_eq!(state.cooldowns[0].eligible_pass, 7, "second wait is 2");
        state.pass = 7;
        state.note_failed_drain("a/b", 1);
        assert_eq!(state.cooldowns[0].eligible_pass, 11, "third wait is 4");
    }

    #[test]
    fn signal_flag_installs_and_reads() {
        let flag = signals::install();
        assert!(!flag.load(Ordering::Relaxed));
        assert!(std::ptr::eq(flag, signals::stop_flag()));
    }
}
