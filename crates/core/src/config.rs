//! Pipeline configuration.

use gittables_curate::CurationConfig;
use gittables_synth::wordnet::{topic_subset, Topic};
use gittables_tablecsv::ReadOptions;
use gittables_tablesql::SqlReadOptions;
use serde::{Deserialize, Serialize};

/// Configuration of the full pipeline. Scale knobs (`topics`,
/// `repos_per_topic`) control corpus size; everything else defaults to the
/// paper's settings.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// Master seed; every random decision derives from it.
    pub seed: u64,
    /// The query topics.
    pub topics: Vec<Topic>,
    /// Repositories generated per topic when populating a host.
    pub repos_per_topic: usize,
    /// CSV read options.
    pub read_options: ReadOptions,
    /// SQL-dump read options (dialect is sniffed per file by default).
    pub sql_options: SqlReadOptions,
    /// Probability a synthesized file is a SQL dump instead of CSV when
    /// populating a host. `0.0` (the default) generates the exact
    /// CSV-only corpora of earlier versions, bit for bit.
    pub sql_file_prob: f64,
    /// Curation filter configuration.
    pub curation: CurationConfig,
    /// Semantic-annotation similarity threshold.
    pub semantic_threshold: f32,
    /// Whether to run the PII anonymization pass.
    pub anonymize: bool,
    /// Worker threads for the parse/curate/annotate stage (0 ⇒ available
    /// parallelism).
    pub workers: usize,
    /// Results-per-query segmentation trigger: queries whose initial count
    /// exceeds this are segmented by size (GitHub cap: 1 000).
    pub results_cap: usize,
    /// Tables per shard when a monolithic corpus is split into a sharded
    /// store (`gittables_corpus::save_store`; the CLI `save` subcommand).
    /// Store-backed pipeline runs shard by repository instead.
    pub tables_per_shard: usize,
    /// Retry, backoff, and quarantine policy for host faults.
    pub fault: FaultPolicy,
}

/// How the pipeline reacts to host faults: retry transient errors with
/// jittered exponential backoff, bounded per operation and per
/// repository; quarantine the repository (and keep going) when a bound
/// is hit or a fault is permanent.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FaultPolicy {
    /// Attempts per host operation before giving up on it (1 ⇒ never
    /// retry).
    pub max_attempts: u32,
    /// Backoff before the first retry, milliseconds; each further retry
    /// doubles it (with deterministic jitter in `[delay/2, delay]`).
    pub backoff_base_ms: u64,
    /// Cap on a single backoff delay, milliseconds.
    pub backoff_max_ms: u64,
    /// Total retries allowed across all of one repository's fetches
    /// before the repository is quarantined.
    pub repo_retry_budget: u32,
    /// Whether backoff actually sleeps. Scheduled delays are accounted in
    /// the report either way; tests disable sleeping to stay fast.
    pub sleep: bool,
    /// Test hook for the worker-panic quarantine path: processing any
    /// file whose content contains this marker panics, standing in for a
    /// pathological table that crashes a worker.
    pub poison_marker: Option<String>,
}

impl Default for FaultPolicy {
    fn default() -> Self {
        FaultPolicy {
            max_attempts: 4,
            backoff_base_ms: 5,
            backoff_max_ms: 100,
            repo_retry_budget: 16,
            sleep: true,
            poison_marker: None,
        }
    }
}

impl PipelineConfig {
    /// The paper-scale analysis run: 97 topics.
    #[must_use]
    pub fn paper(seed: u64) -> Self {
        PipelineConfig {
            seed,
            topics: topic_subset(97),
            repos_per_topic: 120,
            ..PipelineConfig::small(seed)
        }
    }

    /// A laptop-scale run for tests and examples: 3 topics, a few repos.
    #[must_use]
    pub fn small(seed: u64) -> Self {
        PipelineConfig {
            seed,
            topics: topic_subset(3),
            repos_per_topic: 12,
            read_options: ReadOptions::default(),
            sql_options: SqlReadOptions::default(),
            sql_file_prob: 0.0,
            curation: CurationConfig {
                // The analysis corpus keeps unlicensed tables; the published
                // corpus filters them. Default to keeping (analysis mode).
                require_license: false,
                ..CurationConfig::default()
            },
            semantic_threshold: gittables_annotate::semantic::DEFAULT_THRESHOLD,
            anonymize: true,
            workers: 0,
            results_cap: 1000,
            tables_per_shard: 256,
            fault: FaultPolicy::default(),
        }
    }

    /// A medium run for experiments: `n_topics` topics, `repos` repos each.
    #[must_use]
    pub fn sized(seed: u64, n_topics: usize, repos: usize) -> Self {
        PipelineConfig {
            topics: topic_subset(n_topics),
            repos_per_topic: repos,
            ..PipelineConfig::small(seed)
        }
    }

    /// Effective worker count.
    #[must_use]
    pub fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            self.workers
        } else {
            std::thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets() {
        let s = PipelineConfig::small(1);
        assert_eq!(s.topics.len(), 3);
        assert!(!s.curation.require_license);
        let p = PipelineConfig::paper(1);
        assert_eq!(p.topics.len(), 97);
        let m = PipelineConfig::sized(1, 10, 5);
        assert_eq!(m.topics.len(), 10);
        assert_eq!(m.repos_per_topic, 5);
        assert!(m.tables_per_shard > 0);
    }

    #[test]
    fn workers_default_positive() {
        let s = PipelineConfig::small(1);
        assert!(s.effective_workers() >= 1);
        let w = PipelineConfig {
            workers: 3,
            ..PipelineConfig::small(1)
        };
        assert_eq!(w.effective_workers(), 3);
    }
}
