//! GitTables: the end-to-end corpus construction pipeline and applications.
//!
//! This is the top-level crate of the reproduction of *GitTables: A
//! Large-Scale Corpus of Relational Tables* (SIGMOD 2023). It wires the
//! substrates together into the paper's pipeline (Fig. 1):
//!
//! 1. **Extraction** ([`extract`]) — WordNet topic queries against the
//!    (simulated) GitHub search API for every file kind (CSV and SQL
//!    dumps), with size-range segmentation to work around the
//!    1 000-result cap (§3.2).
//! 2. **Parsing** ([`parse`]) — per-kind dispatch: CSV sniffing + robust
//!    parsing with the §3.3 rules (99.3 % of files parse), and SQL-dump
//!    decoding via `gittables_tablesql` (a dump can yield several
//!    tables, one per `CREATE`/`INSERT`/`COPY` section).
//! 3. **Curation** — license/dimension/header/social filters and PII
//!    anonymization (§3.3).
//! 4. **Annotation** — syntactic and semantic column annotation against
//!    DBpedia and Schema.org (§3.4).
//! 5. **Corpus assembly** — an annotated [`gittables_corpus::Corpus`] with
//!    the §4 statistics available.
//!
//! The [`apps`] module implements the paper's §5 applications: semantic type
//! detection, schema completion (Algorithm 1), data search, and the
//! table-to-KG benchmark. [`shift`] implements the §4.2 data-shift
//! experiment and [`t2d_eval`] the §4.3 annotation-quality evaluation.
//!
//! # Quickstart
//!
//! ```
//! use gittables_core::{Pipeline, PipelineConfig};
//! use gittables_githost::GitHost;
//!
//! let config = PipelineConfig::small(7); // 3 topics, a few repos each
//! let pipeline = Pipeline::new(config);
//! let host = GitHost::new();
//! pipeline.populate_host(&host);
//! let (corpus, report) = pipeline.run(&host);
//! assert!(!corpus.is_empty());
//! assert!(report.parsed > 0);
//! ```

#![warn(missing_docs)]

pub mod apps;
pub mod config;
pub mod crawl;
pub mod extract;
pub mod parse;
pub mod pipeline;
pub mod quarantine;
pub mod shift;
pub mod t2d_eval;

pub use config::{FaultPolicy, PipelineConfig};
pub use crawl::{crawl, CrawlOptions, CrawlState, CrawlSummary, PassOutcome, RepoCooldown};
pub use extract::{extract_topic, RawCsvFile};
pub use parse::{parse_file, parse_file_tables, ParseFailure};
pub use pipeline::{Pipeline, PipelineReport, Quarantined, StoreRun};
pub use quarantine::QuarantineLog;
