//! The orchestrating [`Pipeline`]: populate → extract → parse → curate →
//! annotate → anonymize → assemble (Fig. 1 of the paper).

use std::collections::HashMap;
use std::sync::Arc;

use gittables_annotate::{SemanticAnnotator, SyntacticAnnotator};
use gittables_corpus::{AnnotatedTable, Corpus};
use gittables_curate::{anonymize_table, FilterReason};
use gittables_githost::{GitHost, Repository};
use gittables_ontology::{dbpedia, schema_org, Ontology};
use gittables_synth::repo::RepoGenerator;
use gittables_table::Table;
use serde::{Deserialize, Serialize};

use crate::config::PipelineConfig;
use crate::extract::{extract_topic, RawCsvFile};
use crate::parse::parse_file;

/// Counters for every stage of the pipeline — the §3.3 percentages.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PipelineReport {
    /// Raw CSV files fetched from the host.
    pub fetched: usize,
    /// Files parsed into tables (paper: 99.3 %).
    pub parsed: usize,
    /// Files that failed parsing.
    pub parse_failed: usize,
    /// Tables dropped per filter reason (paper: filters drop ≈9 %, license
    /// cuts ≈84 % for the published corpus).
    pub filtered: HashMap<String, usize>,
    /// Tables kept in the corpus.
    pub kept: usize,
    /// Columns anonymized by the PII pass (paper: 0.3 % of columns).
    pub pii_columns: usize,
    /// Total columns in kept tables.
    pub total_columns: usize,
    /// Extraction query count across topics.
    pub queries_executed: usize,
}

impl PipelineReport {
    /// Fraction of fetched files that parsed.
    #[must_use]
    pub fn parse_rate(&self) -> f64 {
        if self.fetched == 0 {
            return 0.0;
        }
        self.parsed as f64 / self.fetched as f64
    }

    /// Fraction of parsed tables dropped by (non-license) curation.
    #[must_use]
    pub fn filter_rate(&self) -> f64 {
        let dropped: usize = self
            .filtered
            .iter()
            .filter(|(k, _)| k.as_str() != "license")
            .map(|(_, v)| v)
            .sum();
        if self.parsed == 0 {
            return 0.0;
        }
        dropped as f64 / self.parsed as f64
    }

    /// Fraction of kept columns that were anonymized.
    #[must_use]
    pub fn pii_rate(&self) -> f64 {
        if self.total_columns == 0 {
            return 0.0;
        }
        self.pii_columns as f64 / self.total_columns as f64
    }

    /// Folds another report's per-file stage counters into `self`.
    ///
    /// The merge is associative and commutative, so partial reports from
    /// workers can be combined in any grouping and the totals match a
    /// serial run exactly. `fetched` and `queries_executed` describe the
    /// extraction stage, which happens before fan-out — they are summed
    /// here too, so worker-local reports must leave them zero.
    pub fn merge(&mut self, other: PipelineReport) {
        self.fetched += other.fetched;
        self.parsed += other.parsed;
        self.parse_failed += other.parse_failed;
        self.kept += other.kept;
        self.pii_columns += other.pii_columns;
        self.total_columns += other.total_columns;
        self.queries_executed += other.queries_executed;
        for (k, v) in other.filtered {
            *self.filtered.entry(k).or_default() += v;
        }
    }
}

/// The end-to-end pipeline. Construction builds both ontologies and all four
/// annotators once; `run` is then read-only and parallel.
pub struct Pipeline {
    /// Configuration.
    pub config: PipelineConfig,
    dbpedia: Arc<Ontology>,
    schema_org: Arc<Ontology>,
    syn_dbp: SyntacticAnnotator,
    syn_sch: SyntacticAnnotator,
    sem_dbp: SemanticAnnotator,
    sem_sch: SemanticAnnotator,
}

impl Pipeline {
    /// Builds the pipeline (ontologies + annotation indexes).
    #[must_use]
    pub fn new(config: PipelineConfig) -> Self {
        let dbp = Arc::new(dbpedia());
        let sch = Arc::new(schema_org());
        let sem_dbp = SemanticAnnotator::new(dbp.clone()).with_threshold(config.semantic_threshold);
        let sem_sch = SemanticAnnotator::new(sch.clone()).with_threshold(config.semantic_threshold);
        Pipeline {
            syn_dbp: SyntacticAnnotator::new(dbp.clone()),
            syn_sch: SyntacticAnnotator::new(sch.clone()),
            sem_dbp,
            sem_sch,
            dbpedia: dbp,
            schema_org: sch,
            config,
        }
    }

    /// The DBpedia ontology shared by the annotators.
    #[must_use]
    pub fn dbpedia(&self) -> &Arc<Ontology> {
        &self.dbpedia
    }

    /// The Schema.org ontology shared by the annotators.
    #[must_use]
    pub fn schema_org(&self) -> &Arc<Ontology> {
        &self.schema_org
    }

    /// Populates `host` with synthetic repositories for every configured
    /// topic (the stand-in for GitHub's existing content; see DESIGN.md §1).
    pub fn populate_host(&self, host: &GitHost) {
        let gen = RepoGenerator::new(self.config.seed);
        for topic in &self.config.topics {
            for i in 0..self.config.repos_per_topic {
                let spec = gen.generate(topic, i);
                host.add_repository(Repository {
                    full_name: spec.full_name,
                    license: spec.license,
                    fork: spec.fork,
                    files: spec
                        .files
                        .into_iter()
                        .map(|f| gittables_githost::RepoFile::new(f.path, f.content))
                        .collect(),
                });
            }
        }
    }

    /// Runs extraction over all topics, deduplicating files across topics
    /// (forked repositories are already excluded by the API).
    #[must_use]
    pub fn extract_all(&self, host: &GitHost) -> (Vec<RawCsvFile>, usize) {
        let mut seen = std::collections::HashSet::new();
        let mut files = Vec::new();
        let mut queries = 0usize;
        for topic in &self.config.topics {
            let (fs, stats) = extract_topic(host, &topic.noun, self.config.results_cap);
            queries += stats.queries_executed;
            for f in fs {
                if seen.insert((f.repository.clone(), f.path.clone())) {
                    files.push(f);
                }
            }
        }
        (files, queries)
    }

    /// Processes one raw file through parse → curate → annotate → anonymize.
    /// Returns `Ok(Some(_))` for a kept table, `Ok(None)` for a filtered one
    /// (with the reason recorded in `report`), `Err` for a parse failure.
    fn process_file(
        &self,
        raw: &RawCsvFile,
        report: &mut PipelineReport,
    ) -> Option<AnnotatedTable> {
        let table: Table = match parse_file(raw, &self.config.read_options) {
            Ok(t) => t,
            Err(_) => {
                report.parse_failed += 1;
                return None;
            }
        };
        report.parsed += 1;
        let permissive = raw
            .license
            .as_deref()
            .is_some_and(|l| gittables_synth::repo::PERMISSIVE_LICENSES.contains(&l));
        if let Err(reason) = self.config.curation.evaluate(&table, permissive) {
            *report.filtered.entry(reason.tag().to_string()).or_default() += 1;
            return None;
        }
        let mut at = AnnotatedTable::new(table);
        at.syntactic_dbpedia = self.syn_dbp.annotate(&at.table);
        at.syntactic_schema = self.syn_sch.annotate(&at.table);
        at.semantic_dbpedia = self.sem_dbp.annotate(&at.table);
        at.semantic_schema = self.sem_sch.annotate(&at.table);
        if self.config.anonymize {
            // Seed derived from the file URL so anonymization is stable
            // regardless of scheduling.
            let mut seed = self.config.seed;
            for b in at.table.provenance().url().bytes() {
                seed = seed.wrapping_mul(0x100_0000_01b3) ^ u64::from(b);
            }
            let pii = anonymize_table(
                &mut at.table,
                &at.syntactic_schema.clone(),
                &self.schema_org,
                seed,
            );
            report.pii_columns += pii.anonymized.len();
            if !pii.anonymized.is_empty() {
                // Anonymization changed values; re-annotate semantic sets so
                // confidence scores refer to the published values.
                at.semantic_dbpedia = self.sem_dbp.annotate(&at.table);
                at.semantic_schema = self.sem_sch.annotate(&at.table);
            }
        }
        report.total_columns += at.table.num_columns();
        report.kept += 1;
        Some(at)
    }

    /// Runs the full pipeline against a populated host.
    #[must_use]
    pub fn run(&self, host: &GitHost) -> (Corpus, PipelineReport) {
        let (raw_files, queries) = self.extract_all(host);
        let mut report = PipelineReport {
            fetched: raw_files.len(),
            queries_executed: queries,
            ..Default::default()
        };
        let workers = self.config.effective_workers().max(1);
        let chunk_size = raw_files.len().div_ceil(workers).max(1);

        // Parallel stage: each worker processes a chunk, producing tables
        // (with their original index for deterministic output order) and a
        // local report.
        let mut results: Vec<(usize, AnnotatedTable)> = Vec::with_capacity(raw_files.len());
        let mut partials: Vec<PipelineReport> = Vec::new();
        std::thread::scope(|s| {
            let mut handles = Vec::new();
            for (w, chunk) in raw_files.chunks(chunk_size).enumerate() {
                let base = w * chunk_size;
                handles.push(s.spawn(move || {
                    let mut local_report = PipelineReport::default();
                    let mut local: Vec<(usize, AnnotatedTable)> = Vec::new();
                    for (i, raw) in chunk.iter().enumerate() {
                        if let Some(at) = self.process_file(raw, &mut local_report) {
                            local.push((base + i, at));
                        }
                    }
                    (local, local_report)
                }));
            }
            for h in handles {
                let (local, local_report) = h.join().expect("pipeline worker panicked");
                results.extend(local);
                partials.push(local_report);
            }
        });

        for p in partials {
            report.merge(p);
        }
        results.sort_by_key(|(i, _)| *i);
        let mut corpus = Corpus::new(format!("gittables-synth-{}", self.config.seed));
        for (_, at) in results {
            corpus.push(at);
        }
        (corpus, report)
    }

    /// Runs the full pipeline with a rayon-style per-repository fan-out.
    ///
    /// Where [`Pipeline::run`] splits the raw file list into fixed-size
    /// chunks, this shards it by repository — the unit the extraction
    /// API hands back and the natural grain for scaling out, since
    /// per-repository work (parse → curate → annotate → anonymize) is
    /// independent across repositories. Shard partial reports are merged
    /// associatively via [`PipelineReport::merge`] and tables are
    /// re-emitted in extraction order, so the resulting corpus and
    /// report are identical to a serial [`Pipeline::run`] on the same
    /// host — scheduling can never change the output.
    #[must_use]
    pub fn run_parallel(&self, host: &GitHost) -> (Corpus, PipelineReport) {
        use rayon::prelude::*;

        let (raw_files, queries) = self.extract_all(host);
        let mut report = PipelineReport {
            fetched: raw_files.len(),
            queries_executed: queries,
            ..Default::default()
        };

        // Shard by repository, keeping first-appearance order so the
        // shard list itself is deterministic.
        let mut shard_of: HashMap<&str, usize> = HashMap::new();
        let mut shards: Vec<Vec<(usize, &RawCsvFile)>> = Vec::new();
        for (i, raw) in raw_files.iter().enumerate() {
            let shard = *shard_of.entry(raw.repository.as_str()).or_insert_with(|| {
                shards.push(Vec::new());
                shards.len() - 1
            });
            shards[shard].push((i, raw));
        }

        let partials: Vec<(Vec<(usize, AnnotatedTable)>, PipelineReport)> = shards
            .par_iter()
            .map(|shard| {
                let mut local_report = PipelineReport::default();
                let mut local = Vec::with_capacity(shard.len());
                for &(i, raw) in shard {
                    if let Some(at) = self.process_file(raw, &mut local_report) {
                        local.push((i, at));
                    }
                }
                (local, local_report)
            })
            .collect();

        let mut results: Vec<(usize, AnnotatedTable)> = Vec::with_capacity(raw_files.len());
        for (local, local_report) in partials {
            results.extend(local);
            report.merge(local_report);
        }
        results.sort_by_key(|(i, _)| *i);
        let mut corpus = Corpus::new(format!("gittables-synth-{}", self.config.seed));
        for (_, at) in results {
            corpus.push(at);
        }
        (corpus, report)
    }
}

/// Re-exported for report consumers matching on filter tags.
pub use gittables_curate::FilterReason as Filter;

const _: fn() -> &'static str = || FilterReason::TooFewRows.tag();

#[cfg(test)]
mod tests {
    use super::*;

    fn run_small(seed: u64) -> (Corpus, PipelineReport) {
        let pipeline = Pipeline::new(PipelineConfig::small(seed));
        let host = GitHost::new();
        pipeline.populate_host(&host);
        pipeline.run(&host)
    }

    #[test]
    fn end_to_end_produces_corpus() {
        let (corpus, report) = run_small(42);
        assert!(!corpus.is_empty());
        assert_eq!(report.kept, corpus.len());
        assert!(
            report.parse_rate() > 0.9,
            "parse rate {}",
            report.parse_rate()
        );
        assert!(report.fetched >= report.parsed + report.parse_failed);
    }

    #[test]
    fn deterministic_output() {
        let (a, ra) = run_small(7);
        let (b, rb) = run_small(7);
        assert_eq!(a.len(), b.len());
        assert_eq!(ra, rb);
        for (x, y) in a.tables.iter().zip(&b.tables) {
            assert_eq!(x.table.provenance().url(), y.table.provenance().url());
            assert_eq!(x.table, y.table);
        }
    }

    #[test]
    fn single_worker_matches_parallel() {
        let p1 = Pipeline::new(PipelineConfig {
            workers: 1,
            ..PipelineConfig::small(3)
        });
        let p4 = Pipeline::new(PipelineConfig {
            workers: 4,
            ..PipelineConfig::small(3)
        });
        let h1 = GitHost::new();
        p1.populate_host(&h1);
        let h4 = GitHost::new();
        p4.populate_host(&h4);
        let (c1, r1) = p1.run(&h1);
        let (c4, r4) = p4.run(&h4);
        assert_eq!(c1, c4);
        assert_eq!(r1, r4);
    }

    #[test]
    fn parallel_run_equals_serial_run() {
        // Same seeded RepoGenerator content on both hosts; the rayon
        // fan-out must reproduce the serial corpus and report exactly.
        let serial = Pipeline::new(PipelineConfig {
            workers: 1,
            ..PipelineConfig::small(13)
        });
        let sharded = Pipeline::new(PipelineConfig::small(13));
        let hs = GitHost::new();
        serial.populate_host(&hs);
        let hp = GitHost::new();
        sharded.populate_host(&hp);
        let (cs, rs) = serial.run(&hs);
        let (cp, rp) = sharded.run_parallel(&hp);
        assert_eq!(rs, rp);
        assert_eq!(cs, cp);
        assert_eq!(rp.parsed + rp.parse_failed, rp.fetched);
    }

    #[test]
    fn annotations_populated() {
        let (corpus, _) = run_small(11);
        let any_syn = corpus.tables.iter().any(|t| t.syntactic_dbpedia.any());
        let any_sem = corpus.tables.iter().any(|t| t.semantic_schema.any());
        assert!(any_syn && any_sem);
    }

    #[test]
    fn license_mode_filters_more() {
        let mut cfg = PipelineConfig::small(5);
        cfg.curation.require_license = true;
        let licensed = Pipeline::new(cfg);
        let host = GitHost::new();
        licensed.populate_host(&host);
        let (c_lic, r_lic) = licensed.run(&host);
        let open = Pipeline::new(PipelineConfig::small(5));
        let host2 = GitHost::new();
        open.populate_host(&host2);
        let (c_open, _) = open.run(&host2);
        assert!(c_lic.len() < c_open.len());
        assert!(r_lic.filtered.get("license").copied().unwrap_or(0) > 0);
    }
}
