//! The orchestrating [`Pipeline`]: populate → extract → parse → curate →
//! annotate → anonymize → assemble (Fig. 1 of the paper).

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use gittables_annotate::{
    Annotation, AnnotationCache, CacheStats, NameAnnotations, SemanticAnnotator,
    SyntacticAnnotator, TableAnnotations,
};
use gittables_corpus::store::{shard_id_for, CorpusStore, StoreError};
use gittables_corpus::{AnnotatedTable, Corpus};
use gittables_curate::{anonymize_table, FilterReason};
use gittables_githost::{CodeHost, FileKind, GitHost, Repository};
use gittables_ontology::{contains_digit, dbpedia, normalize_label, schema_org, Ontology};
use gittables_synth::repo::{RepoConfig, RepoGenerator};
use gittables_table::Table;
use serde::{Deserialize, Serialize};

use crate::config::PipelineConfig;
use crate::extract::{extract_topic_session, FaultSession, RawCsvFile};
use crate::parse::parse_file_tables;
use crate::quarantine::QuarantineLog;

/// Spacing between the ordering indices of consecutive raw files: file
/// `i`'s tables get indices `i * SUBTABLE_STRIDE + sub`, so a SQL dump's
/// sub-tables sort between their file and the next without disturbing the
/// per-file extraction order that sharding, store indices, and resume
/// re-ranking are built on. `sub` is capped below the stride in
/// [`Pipeline::process_shard`].
const SUBTABLE_STRIDE: usize = 1024;

/// Counters for every stage of the pipeline — the §3.3 percentages.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PipelineReport {
    /// Raw CSV files fetched from the host.
    pub fetched: usize,
    /// Files parsed into tables (paper: 99.3 %).
    pub parsed: usize,
    /// Files that failed parsing.
    pub parse_failed: usize,
    /// Tables dropped per filter reason (paper: filters drop ≈9 %, license
    /// cuts ≈84 % for the published corpus).
    pub filtered: HashMap<String, usize>,
    /// Tables kept in the corpus.
    pub kept: usize,
    /// Columns anonymized by the PII pass (paper: 0.3 % of columns).
    pub pii_columns: usize,
    /// Total columns in kept tables.
    pub total_columns: usize,
    /// Extraction query count across topics.
    pub queries_executed: usize,
    /// Host-operation retries performed (transient faults and truncated
    /// downloads that were re-attempted).
    pub retries: usize,
    /// Total backoff scheduled across retries, milliseconds.
    pub backoff_ms: u64,
    /// Search queries that failed even after retries (their results are
    /// missing from this run — degraded, not aborted).
    pub queries_failed: usize,
    /// Repositories quarantined by budget exhaustion, permanent faults,
    /// or worker panics — their files are excluded from `fetched` and
    /// from the corpus. Sorted and deduplicated.
    pub quarantined_repos: Vec<Quarantined>,
    /// Files that triggered a quarantine (corrupt content or exhausted
    /// retries). Sorted and deduplicated.
    pub quarantined_files: Vec<Quarantined>,
}

/// One quarantined item (a repository or a file) and why it was set
/// aside. Quarantined work is recorded, skipped, and re-attemptable
/// (`--retry-quarantined`) instead of aborting the run.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Quarantined {
    /// `owner/repo` for repositories, `owner/repo/path` for files.
    pub name: String,
    /// Why the item was quarantined.
    pub reason: String,
}

/// Inserts `items` into the sorted, deduplicated quarantine list.
fn merge_quarantined(into: &mut Vec<Quarantined>, items: Vec<Quarantined>) {
    into.extend(items);
    into.sort();
    into.dedup();
}

impl PipelineReport {
    /// Fraction of fetched files that parsed.
    #[must_use]
    pub fn parse_rate(&self) -> f64 {
        if self.fetched == 0 {
            return 0.0;
        }
        self.parsed as f64 / self.fetched as f64
    }

    /// Fraction of parsed tables dropped by (non-license) curation.
    #[must_use]
    pub fn filter_rate(&self) -> f64 {
        let dropped: usize = self
            .filtered
            .iter()
            .filter(|(k, _)| k.as_str() != "license")
            .map(|(_, v)| v)
            .sum();
        if self.parsed == 0 {
            return 0.0;
        }
        dropped as f64 / self.parsed as f64
    }

    /// Fraction of kept columns that were anonymized.
    #[must_use]
    pub fn pii_rate(&self) -> f64 {
        if self.total_columns == 0 {
            return 0.0;
        }
        self.pii_columns as f64 / self.total_columns as f64
    }

    /// Folds another report's per-file stage counters into `self`.
    ///
    /// The merge is associative and commutative, so partial reports from
    /// workers can be combined in any grouping and the totals match a
    /// serial run exactly. `fetched` and `queries_executed` describe the
    /// extraction stage, which happens before fan-out — they are summed
    /// here too, so worker-local reports must leave them zero.
    pub fn merge(&mut self, other: PipelineReport) {
        self.fetched += other.fetched;
        self.parsed += other.parsed;
        self.parse_failed += other.parse_failed;
        self.kept += other.kept;
        self.pii_columns += other.pii_columns;
        self.total_columns += other.total_columns;
        self.queries_executed += other.queries_executed;
        self.retries += other.retries;
        self.backoff_ms += other.backoff_ms;
        self.queries_failed += other.queries_failed;
        for (k, v) in other.filtered {
            *self.filtered.entry(k).or_default() += v;
        }
        merge_quarantined(&mut self.quarantined_repos, other.quarantined_repos);
        merge_quarantined(&mut self.quarantined_files, other.quarantined_files);
    }
}

/// The outcome of a store-backed pipeline run ([`Pipeline::run_to_store`]).
#[derive(Debug)]
pub struct StoreRun {
    /// The corpus assembled from every shard committed to the store.
    pub corpus: Corpus,
    /// The merged stage report: extraction counters plus the per-shard
    /// reports of both freshly processed and previously stored shards.
    pub report: PipelineReport,
    /// Repository shards processed and committed by this invocation.
    pub shards_written: usize,
    /// Repository shards skipped because the store already held them.
    pub shards_skipped: usize,
    /// Pending shards left unprocessed because a stop was requested
    /// mid-run; a later resume picks them up.
    pub shards_deferred: usize,
    /// Whether a stop flag cut this run short. The store is still
    /// consistent: in-flight shards finished and committed, deferred
    /// shards were never begun.
    pub interrupted: bool,
}

/// The end-to-end pipeline. Construction builds both ontologies and all four
/// annotators once; `run` is then read-only and parallel.
pub struct Pipeline {
    /// Configuration.
    pub config: PipelineConfig,
    dbpedia: Arc<Ontology>,
    schema_org: Arc<Ontology>,
    syn_dbp: SyntacticAnnotator,
    syn_sch: SyntacticAnnotator,
    sem_dbp: SemanticAnnotator,
    sem_sch: SemanticAnnotator,
    /// Memoized combined annotation results per distinct normalized column
    /// name (headers like `id`/`name`/`date` dominate the corpus, so hit
    /// rates are huge). Shared across all repository shards of a run;
    /// sharded locks keep it rayon-safe.
    annotation_cache: AnnotationCache,
}

impl Pipeline {
    /// Builds the pipeline (ontologies + annotation indexes).
    #[must_use]
    pub fn new(config: PipelineConfig) -> Self {
        let dbp = Arc::new(dbpedia());
        let sch = Arc::new(schema_org());
        let sem_dbp = SemanticAnnotator::new(dbp.clone()).with_threshold(config.semantic_threshold);
        let sem_sch = SemanticAnnotator::new(sch.clone()).with_threshold(config.semantic_threshold);
        Pipeline {
            syn_dbp: SyntacticAnnotator::new(dbp.clone()),
            syn_sch: SyntacticAnnotator::new(sch.clone()),
            sem_dbp,
            sem_sch,
            dbpedia: dbp,
            schema_org: sch,
            config,
            annotation_cache: AnnotationCache::new(),
        }
    }

    /// Hit/miss counters of the per-name annotation cache (cumulative over
    /// every run of this pipeline instance).
    #[must_use]
    pub fn annotation_cache_stats(&self) -> CacheStats {
        self.annotation_cache.stats()
    }

    /// Annotates every column of `table` through the per-name cache: the
    /// name is normalized once, the §3.4 skip rules (empty / digit-bearing
    /// names) run once, and the combined syntactic + semantic × DBpedia +
    /// Schema.org bundle is computed at most once per distinct name
    /// pipeline-wide. Results are identical to calling the four annotators
    /// directly — both methods depend on nothing but the normalized name.
    fn cached_annotations(
        &self,
        table: &Table,
    ) -> (
        TableAnnotations,
        TableAnnotations,
        TableAnnotations,
        TableAnnotations,
    ) {
        let num_columns = table.num_columns();
        let mut syn_dbp = Vec::new();
        let mut syn_sch = Vec::new();
        let mut sem_dbp = Vec::new();
        let mut sem_sch = Vec::new();
        for (i, col) in table.columns().iter().enumerate() {
            let norm = normalize_label(col.name());
            if norm.is_empty() || contains_digit(&norm) {
                continue;
            }
            let bundle = self
                .annotation_cache
                .get_or_compute(&norm, || NameAnnotations {
                    syntactic_dbpedia: self.syn_dbp.annotate_norm(&norm),
                    syntactic_schema: self.syn_sch.annotate_norm(&norm),
                    semantic_dbpedia: self.sem_dbp.annotate_norm(&norm),
                    semantic_schema: self.sem_sch.annotate_norm(&norm),
                });
            let rebind = |a: &Option<Annotation>, out: &mut Vec<Annotation>| {
                if let Some(a) = a {
                    let mut a = a.clone();
                    a.column = i;
                    out.push(a);
                }
            };
            rebind(&bundle.syntactic_dbpedia, &mut syn_dbp);
            rebind(&bundle.syntactic_schema, &mut syn_sch);
            rebind(&bundle.semantic_dbpedia, &mut sem_dbp);
            rebind(&bundle.semantic_schema, &mut sem_sch);
        }
        let wrap = |annotations: Vec<Annotation>| TableAnnotations {
            annotations,
            num_columns,
        };
        (wrap(syn_dbp), wrap(syn_sch), wrap(sem_dbp), wrap(sem_sch))
    }

    /// The DBpedia ontology shared by the annotators.
    #[must_use]
    pub fn dbpedia(&self) -> &Arc<Ontology> {
        &self.dbpedia
    }

    /// The Schema.org ontology shared by the annotators.
    #[must_use]
    pub fn schema_org(&self) -> &Arc<Ontology> {
        &self.schema_org
    }

    /// Populates `host` with synthetic repositories for every configured
    /// topic (the stand-in for GitHub's existing content; see DESIGN.md §1).
    pub fn populate_host(&self, host: &GitHost) {
        let gen = RepoGenerator::with_config(
            self.config.seed,
            RepoConfig {
                sql_file_prob: self.config.sql_file_prob,
                ..RepoConfig::default()
            },
        );
        for topic in &self.config.topics {
            for i in 0..self.config.repos_per_topic {
                let spec = gen.generate(topic, i);
                host.add_repository(Repository {
                    full_name: spec.full_name,
                    license: spec.license,
                    fork: spec.fork,
                    files: spec
                        .files
                        .into_iter()
                        .map(|f| gittables_githost::RepoFile::new(f.path, f.content))
                        .collect(),
                });
            }
        }
    }

    /// Runs extraction over all topics, deduplicating files across topics
    /// (forked repositories are already excluded by the API). Cross-topic
    /// dedup keeps the first occurrence via a borrowed-key mask — no
    /// per-file `(String, String)` clones.
    #[must_use]
    pub fn extract_all(&self, host: &dyn CodeHost) -> (Vec<RawCsvFile>, usize) {
        let (files, report) = self.extract_stage(host, HashMap::new());
        (files, report.queries_executed)
    }

    /// The full extraction stage under the configured [`FaultPolicy`]:
    /// every topic is extracted through one shared [`FaultSession`] (so
    /// retry budgets and quarantines are repository-global), files of
    /// quarantined repositories are dropped — including files fetched
    /// *before* their repository was quarantined, so quarantine is always
    /// repository-granular — and the result is deduplicated across
    /// topics. Returns the surviving files plus a report seeded with the
    /// extraction counters (`fetched`, `queries_executed`, retry/backoff
    /// accounting, quarantine lists).
    ///
    /// `skip` carries sticky quarantines from a previous store-backed run:
    /// those repositories are skipped outright (no fetches) and re-recorded
    /// as quarantined with their stored reason.
    fn extract_stage(
        &self,
        host: &dyn CodeHost,
        skip: HashMap<String, String>,
    ) -> (Vec<RawCsvFile>, PipelineReport) {
        let mut session = FaultSession::new(&self.config.fault, self.config.seed, skip);
        let mut files = Vec::new();
        let mut queries = 0usize;
        for topic in &self.config.topics {
            // Every kind is queried for every topic — the host's contents,
            // not the synthesis knobs, decide what comes back, so a host
            // populated elsewhere with SQL dumps is extracted the same way.
            for kind in FileKind::ALL {
                let (fs, stats) = extract_topic_session(
                    host,
                    &topic.noun,
                    kind,
                    self.config.results_cap,
                    &mut session,
                );
                queries += stats.queries_executed;
                files.extend(fs);
            }
        }
        if !session.quarantined_repos.is_empty() {
            let quarantined: std::collections::HashSet<&str> = session
                .quarantined_repos
                .iter()
                .map(|q| q.name.as_str())
                .collect();
            files.retain(|f| !quarantined.contains(f.repository.as_str()));
        }
        let keep = crate::extract::first_occurrence_mask(&files, |f| {
            (f.repository.as_str(), f.path.as_str())
        });
        let mut mask = keep.iter();
        files.retain(|_| *mask.next().expect("mask covers every file"));
        let mut report = PipelineReport {
            fetched: files.len(),
            queries_executed: queries,
            retries: session.retries,
            backoff_ms: session.backoff_ms,
            queries_failed: session.queries_failed,
            ..Default::default()
        };
        merge_quarantined(&mut report.quarantined_repos, session.quarantined_repos);
        merge_quarantined(&mut report.quarantined_files, session.quarantined_files);
        (files, report)
    }

    /// Processes one raw file through parse → curate → annotate → anonymize.
    /// Returns the kept tables — one for CSV, possibly several for a SQL
    /// dump — in dump order; filtered tables record their reason and parse
    /// failures count `parse_failed`, both per *file* invariants:
    /// `parsed + parse_failed == fetched` counts files, `kept` counts
    /// tables.
    fn process_file(&self, raw: &RawCsvFile, report: &mut PipelineReport) -> Vec<AnnotatedTable> {
        if let Some(marker) = &self.config.fault.poison_marker {
            // Test hook for the worker-panic quarantine path: a poisoned
            // table stands in for pathological input that crashes a worker.
            assert!(
                !raw.content.contains(marker.as_str()),
                "poisoned table {}/{}",
                raw.repository,
                raw.path
            );
        }
        let tables =
            match parse_file_tables(raw, &self.config.read_options, &self.config.sql_options) {
                Ok(ts) => ts,
                Err(_) => {
                    report.parse_failed += 1;
                    return Vec::new();
                }
            };
        report.parsed += 1;
        let permissive = raw
            .license
            .as_deref()
            .is_some_and(|l| gittables_synth::repo::PERMISSIVE_LICENSES.contains(&l));
        let mut kept = Vec::new();
        for table in tables {
            if let Err(reason) = self.config.curation.evaluate(&table, permissive) {
                *report.filtered.entry(reason.tag().to_string()).or_default() += 1;
                continue;
            }
            kept.push(self.annotate_one(table, report));
        }
        kept
    }

    /// Annotates and (optionally) anonymizes one curated table, updating
    /// the kept/PII counters.
    fn annotate_one(&self, table: Table, report: &mut PipelineReport) -> AnnotatedTable {
        let mut at = AnnotatedTable::new(table);
        let (syn_dbp, syn_sch, sem_dbp, sem_sch) = self.cached_annotations(&at.table);
        at.syntactic_dbpedia = syn_dbp;
        at.syntactic_schema = syn_sch;
        at.semantic_dbpedia = sem_dbp;
        at.semantic_schema = sem_sch;
        if self.config.anonymize {
            // Seed derived from the file URL so anonymization is stable
            // regardless of scheduling.
            let mut seed = self.config.seed;
            for b in at.table.provenance().url().bytes() {
                seed = seed.wrapping_mul(0x100_0000_01b3) ^ u64::from(b);
            }
            let pii = anonymize_table(
                &mut at.table,
                &at.syntactic_schema.clone(),
                &self.schema_org,
                seed,
            );
            report.pii_columns += pii.anonymized.len();
            // No re-annotation after anonymization: both methods depend
            // only on column *names*, and `anonymize_table` replaces values
            // without renaming, so the sets assigned above already describe
            // the published table (tests/annotation_cache.rs proves the
            // final annotations equal direct annotator output on the
            // anonymized tables).
        }
        report.total_columns += at.table.num_columns();
        report.kept += 1;
        at
    }

    /// Processes one repository shard, catching any worker panic. A panic
    /// (e.g. pathological input crashing a parser) discards the shard's
    /// tables *and* its partial report — the repository is quarantined as a
    /// unit, exactly like a permanent host fault — so the same host with
    /// the same faults yields the same corpus from every run mode.
    fn process_shard(&self, repo: &str, shard: &[(usize, &RawCsvFile)]) -> ShardOutcome {
        let done = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut local_report = PipelineReport::default();
            let mut local = Vec::with_capacity(shard.len());
            for &(i, raw) in shard {
                let tables = self.process_file(raw, &mut local_report);
                // Spaced indices keep one file's tables contiguous and
                // ordered between files; the cap guards against an
                // over-sized `sql_options.max_tables` colliding with the
                // next file's index range.
                for (sub, at) in tables.into_iter().take(SUBTABLE_STRIDE).enumerate() {
                    local.push((i * SUBTABLE_STRIDE + sub, at));
                }
            }
            (local, local_report)
        }));
        match done {
            Ok((local, local_report)) => ShardOutcome::Done(local, local_report),
            Err(_) => ShardOutcome::Panicked {
                repo: repo.to_string(),
                files: shard.len(),
            },
        }
    }

    /// Folds shard outcomes into the extraction-stage report and assembles
    /// the corpus in extraction order. Panicked shards quarantine their
    /// repository: the tables are dropped, the shard's files leave
    /// `fetched` (preserving `parsed + parse_failed == fetched`), and the
    /// repository is recorded in `quarantined_repos`.
    fn assemble(
        &self,
        outcomes: Vec<ShardOutcome>,
        mut report: PipelineReport,
    ) -> (Corpus, PipelineReport) {
        let mut results: Vec<(usize, AnnotatedTable)> = Vec::new();
        for outcome in outcomes {
            match outcome {
                ShardOutcome::Done(local, local_report) => {
                    results.extend(local);
                    report.merge(local_report);
                }
                ShardOutcome::Panicked { repo, files } => {
                    report.fetched -= files;
                    merge_quarantined(
                        &mut report.quarantined_repos,
                        vec![Quarantined {
                            name: repo,
                            reason: "worker panic".to_string(),
                        }],
                    );
                }
                // In-memory runs never defer (no stop flag is threaded).
                ShardOutcome::Deferred { files } => report.fetched -= files,
            }
        }
        results.sort_by_key(|(i, _)| *i);
        let mut corpus = Corpus::new(self.corpus_name());
        for (_, at) in results {
            corpus.push(at);
        }
        (corpus, report)
    }

    /// Runs the full pipeline against a populated host.
    ///
    /// Repository shards are distributed contiguously across
    /// `config.workers` scoped threads; each shard's processing is
    /// panic-isolated ([`Pipeline::process_shard`]), so a crashing worker
    /// quarantines one repository instead of aborting the run.
    #[must_use]
    pub fn run(&self, host: &dyn CodeHost) -> (Corpus, PipelineReport) {
        let (raw_files, report) = self.extract_stage(host, HashMap::new());
        let shards = shard_by_repository(&raw_files);
        let workers = self.config.effective_workers().max(1);
        let per = shards.len().div_ceil(workers).max(1);

        let mut outcomes: Vec<ShardOutcome> = Vec::with_capacity(shards.len());
        std::thread::scope(|s| {
            let mut handles = Vec::new();
            for group in shards.chunks(per) {
                handles.push(s.spawn(move || {
                    group
                        .iter()
                        .map(|(repo, shard)| self.process_shard(repo, shard))
                        .collect::<Vec<_>>()
                }));
            }
            for h in handles {
                // Cannot panic: every shard inside is panic-isolated.
                outcomes.extend(h.join().expect("worker catches shard panics"));
            }
        });
        self.assemble(outcomes, report)
    }

    /// Runs the full pipeline with a rayon-style per-repository fan-out.
    ///
    /// Where [`Pipeline::run`] splits the repository shards into fixed
    /// contiguous groups, this hands every shard to rayon — the unit the
    /// extraction API hands back and the natural grain for scaling out,
    /// since per-repository work (parse → curate → annotate → anonymize)
    /// is independent across repositories. Shard partial reports are
    /// merged associatively via [`PipelineReport::merge`] and tables are
    /// re-emitted in extraction order, so the resulting corpus and
    /// report are identical to a serial [`Pipeline::run`] on the same
    /// host — scheduling can never change the output.
    #[must_use]
    pub fn run_parallel(&self, host: &dyn CodeHost) -> (Corpus, PipelineReport) {
        use rayon::prelude::*;

        let (raw_files, report) = self.extract_stage(host, HashMap::new());
        let shards = shard_by_repository(&raw_files);
        let outcomes: Vec<ShardOutcome> = shards
            .par_iter()
            .map(|(repo, shard)| self.process_shard(repo, shard))
            .collect();
        self.assemble(outcomes, report)
    }

    /// The name every run of this pipeline gives its corpus (seed-derived,
    /// so store-backed and in-memory runs agree).
    #[must_use]
    pub fn corpus_name(&self) -> String {
        format!("gittables-synth-{}", self.config.seed)
    }

    /// Runs the pipeline with the per-repository fan-out of
    /// [`Pipeline::run_parallel`], but streams each repository shard straight
    /// into `store` as it completes. See [`Pipeline::run_to_store_bounded`].
    ///
    /// # Errors
    /// Propagates [`StoreError`] from shard writes and the final load.
    pub fn run_to_store(
        &self,
        host: &dyn CodeHost,
        store: &CorpusStore,
    ) -> Result<StoreRun, StoreError> {
        self.run_to_store_opts(host, store, None, false)
    }

    /// Store-backed run with **incremental resume**: repositories whose
    /// shards are already committed to `store` are skipped (their persisted
    /// stage reports are merged instead of reprocessing), so an interrupted
    /// run restarts where it stopped and fresh repositories can be appended
    /// to an existing corpus.
    ///
    /// `max_new_shards` bounds how many *new* repository shards this
    /// invocation processes (`None` ⇒ all), enabling batched/incremental
    /// builds; a bounded invocation returns the partial snapshot currently
    /// in the store.
    ///
    /// Once every repository shard is committed, the returned corpus and
    /// merged report are identical to an uninterrupted
    /// [`Pipeline::run_parallel`] over the same host, regardless of how many
    /// invocations it took to get there.
    ///
    /// # Errors
    /// Propagates [`StoreError`] from shard writes, integrity checks on
    /// load, [`StoreError::MissingShardMeta`] when a pre-existing shard
    /// was not produced by a store-backed run (no report to merge), and
    /// [`StoreError::CorpusNameMismatch`] when the store was created for a
    /// different corpus (e.g. another seed).
    pub fn run_to_store_bounded(
        &self,
        host: &dyn CodeHost,
        store: &CorpusStore,
        max_new_shards: Option<usize>,
    ) -> Result<StoreRun, StoreError> {
        self.run_to_store_opts(host, store, max_new_shards, false)
    }

    /// [`Pipeline::run_to_store_bounded`] plus control over the persisted
    /// quarantine: the store carries a `quarantine.json` sidecar listing
    /// repositories quarantined by previous invocations. By default those
    /// are *sticky* — skipped without any host traffic and re-recorded in
    /// the report — so a flaky repository cannot flap in and out of the
    /// corpus between resumes. With `retry_quarantined` they are
    /// re-attempted from scratch (the self-healing resume path): a
    /// repository that now extracts and processes cleanly joins the corpus
    /// and leaves the log. The sidecar is rewritten after every run with
    /// the repositories quarantined *by that run*.
    ///
    /// # Errors
    /// As [`Pipeline::run_to_store_bounded`].
    pub fn run_to_store_opts(
        &self,
        host: &dyn CodeHost,
        store: &CorpusStore,
        max_new_shards: Option<usize>,
        retry_quarantined: bool,
    ) -> Result<StoreRun, StoreError> {
        let retry = if retry_quarantined {
            RetrySelection::All
        } else {
            RetrySelection::None
        };
        self.run_to_store_inner(host, store, max_new_shards, &retry, None)
    }

    /// The crawl daemon's store run: like [`Pipeline::run_to_store_opts`]
    /// but with *selective* quarantine retry — only the repositories in
    /// `retry_repos` are re-attempted (the daemon's cooldown scheduler
    /// decides which are eligible); the rest stay sticky — and an
    /// optional cooperative `stop` flag. When `stop` becomes true,
    /// in-flight shards finish and commit atomically but no new shard is
    /// begun; the remaining shards are reported in
    /// [`StoreRun::shards_deferred`] and the run is marked
    /// [`StoreRun::interrupted`].
    ///
    /// # Errors
    /// As [`Pipeline::run_to_store_bounded`].
    pub fn run_to_store_crawl(
        &self,
        host: &dyn CodeHost,
        store: &CorpusStore,
        max_new_shards: Option<usize>,
        retry_repos: &HashSet<String>,
        stop: Option<&AtomicBool>,
    ) -> Result<StoreRun, StoreError> {
        self.run_to_store_inner(
            host,
            store,
            max_new_shards,
            &RetrySelection::Repos(retry_repos),
            stop,
        )
    }

    fn run_to_store_inner(
        &self,
        host: &dyn CodeHost,
        store: &CorpusStore,
        max_new_shards: Option<usize>,
        retry: &RetrySelection<'_>,
        stop: Option<&AtomicBool>,
    ) -> Result<StoreRun, StoreError> {
        use rayon::prelude::*;

        // Refuse to interleave two corpora: a store created for a different
        // seed/config records a different corpus name.
        let store_name = store.name();
        if store_name != self.corpus_name() {
            return Err(StoreError::CorpusNameMismatch {
                store: store_name,
                expected: self.corpus_name(),
            });
        }

        let log = QuarantineLog::load(store.path()).map_err(StoreError::Io)?;
        let skip = match retry {
            RetrySelection::All => HashMap::new(),
            RetrySelection::None => log.skip_map(),
            RetrySelection::Repos(repos) => {
                let mut skip = log.skip_map();
                skip.retain(|name, _| !repos.contains(name));
                skip
            }
        };
        let (raw_files, mut report) = self.extract_stage(host, skip);
        let shards = shard_by_repository(&raw_files);

        let mut skipped: Vec<String> = Vec::new();
        let mut pending: Vec<(&str, String, &ShardFiles<'_>)> = Vec::new();
        let mut deferred_files = 0usize;
        for (repo, files) in &shards {
            let id = shard_id_for(repo);
            if store.has_shard(&id) {
                skipped.push(id);
            } else {
                pending.push((repo, id, files));
            }
        }
        let limit = max_new_shards.unwrap_or(pending.len()).min(pending.len());
        for (_, _, files) in &pending[limit..] {
            deferred_files += files.len();
        }
        pending.truncate(limit);

        // Process → write → commit each pending shard independently; the
        // manifest commit is the durability point, so a crash loses at most
        // the shards still in flight. Processing is panic-isolated and
        // buffered *before* the shard file is begun: a panicking worker
        // quarantines its repository without ever creating a partial shard.
        let written: Vec<Result<ShardOutcome, StoreError>> = pending
            .par_iter()
            .map(|(repo, id, files)| {
                // A stop request defers shards that have not started:
                // whatever is already processing runs to its commit (the
                // durability point), so shutdown is graceful and atomic.
                if stop.is_some_and(|s| s.load(Ordering::Relaxed)) {
                    return Ok(ShardOutcome::Deferred { files: files.len() });
                }
                match self.process_shard(repo, files) {
                    outcome @ (ShardOutcome::Panicked { .. } | ShardOutcome::Deferred { .. }) => {
                        Ok(outcome)
                    }
                    ShardOutcome::Done(local, local_report) => {
                        let mut writer = store.begin_shard(id)?;
                        for (i, at) in &local {
                            writer.push(*i, at)?;
                        }
                        let mut entry = writer.finish()?;
                        entry.meta = Some(serde_json::to_string(&local_report)?);
                        store.commit_shard(entry)?;
                        // Tables are not needed again — the corpus reloads
                        // (and integrity-checks) through the store below.
                        Ok(ShardOutcome::Done(Vec::new(), local_report))
                    }
                }
            })
            .collect();

        // `fetched` counts only the files whose shards this report covers
        // (processed + previously stored); files of shards deferred by
        // `max_new_shards` are excluded so `parsed + parse_failed ==
        // fetched` holds for partial reports too. Once nothing is deferred,
        // this equals the `run_parallel` value.
        report.fetched -= deferred_files;
        let mut panicked = 0usize;
        let mut stop_deferred = 0usize;
        for local in written {
            match local? {
                ShardOutcome::Done(_, local_report) => report.merge(local_report),
                ShardOutcome::Panicked { repo, files } => {
                    panicked += 1;
                    report.fetched -= files;
                    merge_quarantined(
                        &mut report.quarantined_repos,
                        vec![Quarantined {
                            name: repo,
                            reason: "worker panic".to_string(),
                        }],
                    );
                }
                // Stop-deferred shards leave the report like
                // `max_new_shards`-deferred ones: their files exit
                // `fetched` so partial reports stay self-consistent.
                ShardOutcome::Deferred { files } => {
                    stop_deferred += 1;
                    report.fetched -= files;
                }
            }
        }
        for id in &skipped {
            let entry = store
                .shard_entry(id)
                .expect("skipped shard is in the manifest");
            let meta = entry
                .meta
                .as_deref()
                .ok_or_else(|| StoreError::MissingShardMeta { id: id.clone() })?;
            report.merge(serde_json::from_str(meta)?);
        }

        // Reload through the store: verifies every shard's count and
        // fingerprint. Stored indices reflect the extraction that produced
        // each shard; when the configuration has since grown (fresh
        // repositories appended), those interleave differently — so re-rank
        // by the *current* extraction's (repository, path) order, which is
        // what an uninterrupted run over this host would produce.
        let mut corpus = store.load_corpus()?;
        let current_rank: HashMap<(&str, &str), usize> = raw_files
            .iter()
            .enumerate()
            .map(|(i, raw)| ((raw.repository.as_str(), raw.path.as_str()), i))
            .collect();
        corpus.tables.sort_by_key(|at| {
            let p = at.table.provenance();
            current_rank
                .get(&(p.repository.as_str(), p.path.as_str()))
                .copied()
                // Tables whose source left the extraction keep their stored
                // order, after all currently-extracted ones.
                .unwrap_or(usize::MAX)
        });

        // Persist this run's quarantine as the new sidecar: sticky entries
        // that were skipped are re-recorded (they stay), retried entries
        // that healed are absent (they leave the log).
        let log = QuarantineLog {
            repos: report.quarantined_repos.clone(),
        };
        log.save(store.path()).map_err(StoreError::Io)?;

        Ok(StoreRun {
            corpus,
            report,
            shards_written: pending.len() - panicked - stop_deferred,
            shards_skipped: skipped.len(),
            shards_deferred: stop_deferred,
            interrupted: stop.is_some_and(|s| s.load(Ordering::Relaxed)),
        })
    }
}

/// Which quarantined repositories a store run re-attempts.
enum RetrySelection<'a> {
    /// None: the full sticky-quarantine skip.
    None,
    /// Every quarantined repository (`--retry-quarantined`).
    All,
    /// Only the named repositories (the crawl daemon's cooldown-eligible
    /// drain set).
    Repos(&'a HashSet<String>),
}

/// The result of processing one repository shard: its tables and partial
/// report, or the fact that a worker panic quarantined the repository.
enum ShardOutcome {
    /// Tables (tagged with extraction indices) and the shard-local report.
    Done(Vec<(usize, AnnotatedTable)>, PipelineReport),
    /// A worker panicked inside this shard; `files` is the shard size, to
    /// be subtracted from `fetched`.
    Panicked {
        /// Repository `owner/name`.
        repo: String,
        /// Files the shard held.
        files: usize,
    },
    /// A stop request arrived before this shard started; its files leave
    /// `fetched` like `max_new_shards`-deferred ones.
    Deferred {
        /// Files the shard held.
        files: usize,
    },
}

/// One repository's raw files, each carrying its global extraction index
/// for order-preserving reassembly.
type ShardFiles<'a> = Vec<(usize, &'a RawCsvFile)>;

/// One repository's shard of raw files: (repository, files).
type RepoShard<'a> = (&'a str, ShardFiles<'a>);

/// Groups raw files by repository — the pipeline's fan-out grain — keeping
/// first-appearance order so the shard list is deterministic. Each file
/// carries its global extraction index for order-preserving reassembly.
fn shard_by_repository(raw_files: &[RawCsvFile]) -> Vec<RepoShard<'_>> {
    let mut shard_of: HashMap<&str, usize> = HashMap::new();
    let mut shards: Vec<RepoShard> = Vec::new();
    for (i, raw) in raw_files.iter().enumerate() {
        let shard = *shard_of.entry(raw.repository.as_str()).or_insert_with(|| {
            shards.push((raw.repository.as_str(), Vec::new()));
            shards.len() - 1
        });
        shards[shard].1.push((i, raw));
    }
    shards
}

/// Re-exported for report consumers matching on filter tags.
pub use gittables_curate::FilterReason as Filter;

const _: fn() -> &'static str = || FilterReason::TooFewRows.tag();

#[cfg(test)]
mod tests {
    use super::*;

    fn run_small(seed: u64) -> (Corpus, PipelineReport) {
        let pipeline = Pipeline::new(PipelineConfig::small(seed));
        let host = GitHost::new();
        pipeline.populate_host(&host);
        pipeline.run(&host)
    }

    #[test]
    fn end_to_end_produces_corpus() {
        let (corpus, report) = run_small(42);
        assert!(!corpus.is_empty());
        assert_eq!(report.kept, corpus.len());
        assert!(
            report.parse_rate() > 0.9,
            "parse rate {}",
            report.parse_rate()
        );
        assert!(report.fetched >= report.parsed + report.parse_failed);
    }

    #[test]
    fn deterministic_output() {
        let (a, ra) = run_small(7);
        let (b, rb) = run_small(7);
        assert_eq!(a.len(), b.len());
        assert_eq!(ra, rb);
        for (x, y) in a.tables.iter().zip(&b.tables) {
            assert_eq!(x.table.provenance().url(), y.table.provenance().url());
            assert_eq!(x.table, y.table);
        }
    }

    #[test]
    fn single_worker_matches_parallel() {
        let p1 = Pipeline::new(PipelineConfig {
            workers: 1,
            ..PipelineConfig::small(3)
        });
        let p4 = Pipeline::new(PipelineConfig {
            workers: 4,
            ..PipelineConfig::small(3)
        });
        let h1 = GitHost::new();
        p1.populate_host(&h1);
        let h4 = GitHost::new();
        p4.populate_host(&h4);
        let (c1, r1) = p1.run(&h1);
        let (c4, r4) = p4.run(&h4);
        assert_eq!(c1, c4);
        assert_eq!(r1, r4);
    }

    #[test]
    fn parallel_run_equals_serial_run() {
        // Same seeded RepoGenerator content on both hosts; the rayon
        // fan-out must reproduce the serial corpus and report exactly.
        let serial = Pipeline::new(PipelineConfig {
            workers: 1,
            ..PipelineConfig::small(13)
        });
        let sharded = Pipeline::new(PipelineConfig::small(13));
        let hs = GitHost::new();
        serial.populate_host(&hs);
        let hp = GitHost::new();
        sharded.populate_host(&hp);
        let (cs, rs) = serial.run(&hs);
        let (cp, rp) = sharded.run_parallel(&hp);
        assert_eq!(rs, rp);
        assert_eq!(cs, cp);
        assert_eq!(rp.parsed + rp.parse_failed, rp.fetched);
    }

    #[test]
    fn store_run_matches_run_parallel() {
        let pipeline = Pipeline::new(PipelineConfig::small(21));
        let host = GitHost::new();
        pipeline.populate_host(&host);
        let (corpus, report) = pipeline.run_parallel(&host);
        let dir = std::env::temp_dir().join(format!(
            "gt_pipe_store_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        let store = CorpusStore::create(&dir, pipeline.corpus_name()).unwrap();
        let run = pipeline.run_to_store(&host, &store).unwrap();
        assert_eq!(run.corpus, corpus);
        assert_eq!(run.report, report);
        assert_eq!(run.shards_skipped, 0);
        assert!(run.shards_written > 0);

        // A second invocation is a pure resume: everything skipped, same
        // corpus and report.
        let resumed = pipeline.run_to_store(&host, &store).unwrap();
        assert_eq!(resumed.corpus, corpus);
        assert_eq!(resumed.report, report);
        assert_eq!(resumed.shards_written, 0);
        assert_eq!(resumed.shards_skipped, run.shards_written);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn annotations_populated() {
        let (corpus, _) = run_small(11);
        let any_syn = corpus.tables.iter().any(|t| t.syntactic_dbpedia.any());
        let any_sem = corpus.tables.iter().any(|t| t.semantic_schema.any());
        assert!(any_syn && any_sem);
    }

    #[test]
    fn license_mode_filters_more() {
        let mut cfg = PipelineConfig::small(5);
        cfg.curation.require_license = true;
        let licensed = Pipeline::new(cfg);
        let host = GitHost::new();
        licensed.populate_host(&host);
        let (c_lic, r_lic) = licensed.run(&host);
        let open = Pipeline::new(PipelineConfig::small(5));
        let host2 = GitHost::new();
        open.populate_host(&host2);
        let (c_open, _) = open.run(&host2);
        assert!(c_lic.len() < c_open.len());
        assert!(r_lic.filtered.get("license").copied().unwrap_or(0) > 0);
    }
}
