//! Persisted quarantine: the `quarantine.json` sidecar a store-backed run
//! leaves next to the corpus manifest.
//!
//! Each [`Pipeline::run_to_store_opts`](crate::Pipeline::run_to_store_opts)
//! invocation rewrites the sidecar with the repositories *that run*
//! quarantined (host faults, exhausted retry budgets, worker panics). On
//! the next invocation the log makes quarantine *sticky* — listed
//! repositories are skipped without host traffic — unless the run opts
//! into re-attempting them (`--retry-quarantined`), in which case healed
//! repositories join the corpus and drop out of the log.

use std::collections::HashMap;
use std::io::Write;
use std::path::Path;

use serde::{Deserialize, Serialize};

use crate::pipeline::Quarantined;

/// Sidecar file name inside the store directory.
pub const QUARANTINE_FILE: &str = "quarantine.json";

/// The persisted quarantine list of a corpus store.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct QuarantineLog {
    /// Quarantined repositories with their reasons, sorted by name.
    pub repos: Vec<Quarantined>,
}

impl QuarantineLog {
    /// Reads the sidecar from a store directory; a missing file is an
    /// empty log (no repository is quarantined).
    ///
    /// # Errors
    /// I/O failures other than the file not existing, and malformed JSON
    /// (surfaced as [`std::io::ErrorKind::InvalidData`]).
    pub fn load(dir: &Path) -> std::io::Result<Self> {
        let path = dir.join(QUARANTINE_FILE);
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Ok(QuarantineLog::default())
            }
            Err(e) => return Err(e),
        };
        serde_json::from_str(&text)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
    }

    /// Atomically rewrites the sidecar (write-to-temp, fsync, rename) so a
    /// crash mid-save can never leave a torn log.
    ///
    /// # Errors
    /// Underlying I/O failures.
    pub fn save(&self, dir: &Path) -> std::io::Result<()> {
        let tmp = dir.join(format!("{QUARANTINE_FILE}.tmp"));
        let text = serde_json::to_string(self)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(text.as_bytes())?;
        f.sync_all()?;
        drop(f);
        std::fs::rename(&tmp, dir.join(QUARANTINE_FILE))
    }

    /// The log as a skip map (`repository → recorded reason`) for the
    /// extraction stage.
    #[must_use]
    pub fn skip_map(&self) -> HashMap<String, String> {
        self.repos
            .iter()
            .map(|q| (q.name.clone(), q.reason.clone()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_missing_is_empty() {
        let dir = std::env::temp_dir().join(format!(
            "gt_quarantine_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        assert_eq!(QuarantineLog::load(&dir).unwrap(), QuarantineLog::default());
        let log = QuarantineLog {
            repos: vec![Quarantined {
                name: "a/b".into(),
                reason: "corrupt content".into(),
            }],
        };
        log.save(&dir).unwrap();
        let loaded = QuarantineLog::load(&dir).unwrap();
        assert_eq!(loaded, log);
        assert_eq!(loaded.skip_map().get("a/b").unwrap(), "corrupt content");
        std::fs::remove_dir_all(&dir).ok();
    }
}
