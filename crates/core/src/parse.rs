//! Parsing raw files into provenance-tagged tables (§3.3, step 2).
//!
//! Two ingestion paths feed the same table model: delimiter-separated
//! text through `gittables_tablecsv` (dialect-sniffed, so unknown
//! extensions degrade to a sniff rather than a misparse) and SQL dumps
//! through `gittables_tablesql` (dialect-sniffed, statement-split,
//! `CREATE`/`INSERT`/`COPY` decoded). A CSV file yields exactly one
//! table; a SQL dump yields every table with at least one data row.

use gittables_githost::FileKind;
use gittables_table::{Column, Provenance, Table};
use gittables_tablecsv::{read_csv_columns, CsvError, ReadOptions};
use gittables_tablesql::{read_sql_tables, SqlError, SqlReadOptions};
use serde::{Deserialize, Serialize};

use crate::extract::RawCsvFile;

/// Why a raw file failed to become a table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ParseFailure {
    /// The CSV reader rejected the file.
    Csv(String),
    /// The SQL-dump reader rejected the file (not SQL, truncated
    /// statement, unterminated literal, no decodable tables, …).
    Sql(String),
    /// The parsed records could not form a consistent table.
    Table(String),
}

/// Parses one raw file into a [`Table`], attaching provenance. This is
/// the CSV-only path kept for callers that work on known-CSV content;
/// the pipeline dispatches on [`RawCsvFile::kind`] via
/// [`parse_file_tables`].
///
/// # Errors
/// Returns [`ParseFailure`] when the file cannot be parsed — the paper's
/// 0.7 % unparseable files.
pub fn parse_file(raw: &RawCsvFile, options: &ReadOptions) -> Result<Table, ParseFailure> {
    // Column-major read: cells are materialized by the reader straight into
    // their final column positions — no intermediate row-of-`String`s.
    let parsed = read_csv_columns(&raw.content, options)
        .map_err(|e: CsvError| ParseFailure::Csv(e.to_string()))?;
    let name = raw
        .path
        .rsplit('/')
        .next()
        .unwrap_or(&raw.path)
        .trim_end_matches(".csv")
        .to_string();
    let columns: Vec<Column> = parsed
        .header
        .iter()
        .zip(parsed.columns)
        .map(|(h, values)| Column::new(h, values))
        .collect();
    let table = Table::new(name, columns).map_err(|e| ParseFailure::Table(e.to_string()))?;
    Ok(table.with_provenance(provenance(raw)))
}

/// Parses one raw file into every table it contains, dispatching on the
/// file's [`FileKind`]: CSV files yield exactly one table, SQL dumps one
/// per decoded table. All tables of a dump share the file's provenance
/// (path, license, size) and are named after their SQL table name.
///
/// # Errors
/// Returns [`ParseFailure`] when the file cannot be parsed at all. SQL
/// errors are *content* failures — counted as `parse_failed`, never a
/// quarantine.
pub fn parse_file_tables(
    raw: &RawCsvFile,
    csv_options: &ReadOptions,
    sql_options: &SqlReadOptions,
) -> Result<Vec<Table>, ParseFailure> {
    match raw.kind {
        FileKind::Csv => parse_file(raw, csv_options).map(|t| vec![t]),
        FileKind::Sql => {
            let parsed = read_sql_tables(&raw.content, sql_options)
                .map_err(|e: SqlError| ParseFailure::Sql(e.to_string()))?;
            let mut tables = Vec::with_capacity(parsed.tables.len());
            for st in parsed.tables {
                let columns: Vec<Column> = st
                    .header
                    .iter()
                    .zip(st.columns)
                    .map(|(h, values)| Column::new(h, values))
                    .collect();
                let table =
                    Table::new(st.name, columns).map_err(|e| ParseFailure::Table(e.to_string()))?;
                tables.push(table.with_provenance(provenance(raw)));
            }
            Ok(tables)
        }
    }
}

fn provenance(raw: &RawCsvFile) -> Provenance {
    let mut prov =
        Provenance::new(raw.repository.clone(), raw.path.clone()).with_topic(raw.topic.clone());
    prov.license = raw.license.clone();
    prov.file_size = raw.content.len();
    prov
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raw(content: &str) -> RawCsvFile {
        raw_at("data/orders.csv", content)
    }

    fn raw_at(path: &str, content: &str) -> RawCsvFile {
        RawCsvFile {
            repository: "a/b".into(),
            path: path.into(),
            topic: "order".into(),
            license: Some("mit".into()),
            content: content.into(),
            kind: FileKind::from_path(path),
        }
    }

    #[test]
    fn parses_with_provenance() {
        let t = parse_file(&raw("id,total\n1,10\n2,20\n"), &ReadOptions::default()).unwrap();
        assert_eq!(t.name(), "orders");
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.provenance().repository, "a/b");
        assert_eq!(t.provenance().topic, "order");
        assert_eq!(t.provenance().license.as_deref(), Some("mit"));
        assert_eq!(t.provenance().file_size, "id,total\n1,10\n2,20\n".len());
    }

    #[test]
    fn unparseable_reports_failure() {
        let err = parse_file(&raw(""), &ReadOptions::default()).unwrap_err();
        assert!(matches!(err, ParseFailure::Csv(_)));
    }

    #[test]
    fn messy_but_recoverable_parses() {
        let content = "# comment\nid,v\n1,2\nbadline\n3,4\n";
        let t = parse_file(&raw(content), &ReadOptions::default()).unwrap();
        assert_eq!(t.num_rows(), 2);
    }

    #[test]
    fn sql_dump_yields_named_tables() {
        let dump = "CREATE TABLE orders (id int, total int);\n\
                    INSERT INTO orders VALUES (1,10),(2,20);\n\
                    CREATE TABLE users (name text);\n\
                    INSERT INTO users VALUES ('ann');\n";
        let raw = raw_at("db/dump.sql", dump);
        let tables =
            parse_file_tables(&raw, &ReadOptions::default(), &SqlReadOptions::default()).unwrap();
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[0].name(), "orders");
        assert_eq!(tables[0].num_rows(), 2);
        assert_eq!(tables[1].name(), "users");
        // Every table of the dump shares the file's provenance.
        for t in &tables {
            assert_eq!(t.provenance().path, "db/dump.sql");
            assert_eq!(t.provenance().file_size, dump.len());
            assert_eq!(t.provenance().license.as_deref(), Some("mit"));
        }
    }

    #[test]
    fn csv_kind_yields_single_table() {
        let tables = parse_file_tables(
            &raw("id,total\n1,10\n"),
            &ReadOptions::default(),
            &SqlReadOptions::default(),
        )
        .unwrap();
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].name(), "orders");
    }

    #[test]
    fn unknown_extension_falls_back_to_csv_sniffing() {
        // The old parse stage hardwired the CSV reader *and* assumed the
        // `.csv` suffix; kind dispatch keeps unknown extensions on the
        // sniffing CSV path.
        let raw = raw_at("data/export.dat", "id;total\n1;10\n2;20\n");
        assert_eq!(raw.kind, FileKind::Csv);
        let tables =
            parse_file_tables(&raw, &ReadOptions::default(), &SqlReadOptions::default()).unwrap();
        assert_eq!(tables[0].num_rows(), 2);
        assert_eq!(tables[0].num_columns(), 2);
    }

    #[test]
    fn malformed_sql_reports_sql_failure() {
        for dump in [
            "CREATE TABLE t (a int",                  // truncated statement
            "INSERT INTO t VALUES ('unterminated",    // unterminated literal
            "\u{1}\u{2}binary garbage\u{3}",          // not SQL at all
            "SET search_path = public;\nSELECT 1;\n", // no tables
            "id,name\n1,ant\n",                       // CSV routed as .sql
        ] {
            let err = parse_file_tables(
                &raw_at("x/dump.sql", dump),
                &ReadOptions::default(),
                &SqlReadOptions::default(),
            )
            .unwrap_err();
            assert!(matches!(err, ParseFailure::Sql(_)), "{dump:?}: {err:?}");
        }
    }
}
