//! Parsing raw CSV files into provenance-tagged tables (§3.3, step 2).

use gittables_table::{Column, Provenance, Table};
use gittables_tablecsv::{read_csv_columns, CsvError, ReadOptions};
use serde::{Deserialize, Serialize};

use crate::extract::RawCsvFile;

/// Why a raw file failed to become a table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ParseFailure {
    /// The CSV reader rejected the file.
    Csv(String),
    /// The parsed records could not form a consistent table.
    Table(String),
}

/// Parses one raw file into a [`Table`], attaching provenance.
///
/// # Errors
/// Returns [`ParseFailure`] when the file cannot be parsed — the paper's
/// 0.7 % unparseable files.
pub fn parse_file(raw: &RawCsvFile, options: &ReadOptions) -> Result<Table, ParseFailure> {
    // Column-major read: cells are materialized by the reader straight into
    // their final column positions — no intermediate row-of-`String`s.
    let parsed = read_csv_columns(&raw.content, options)
        .map_err(|e: CsvError| ParseFailure::Csv(e.to_string()))?;
    let name = raw
        .path
        .rsplit('/')
        .next()
        .unwrap_or(&raw.path)
        .trim_end_matches(".csv")
        .to_string();
    let columns: Vec<Column> = parsed
        .header
        .iter()
        .zip(parsed.columns)
        .map(|(h, values)| Column::new(h, values))
        .collect();
    let table = Table::new(name, columns).map_err(|e| ParseFailure::Table(e.to_string()))?;
    let mut prov =
        Provenance::new(raw.repository.clone(), raw.path.clone()).with_topic(raw.topic.clone());
    prov.license = raw.license.clone();
    prov.file_size = raw.content.len();
    Ok(table.with_provenance(prov))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raw(content: &str) -> RawCsvFile {
        RawCsvFile {
            repository: "a/b".into(),
            path: "data/orders.csv".into(),
            topic: "order".into(),
            license: Some("mit".into()),
            content: content.into(),
        }
    }

    #[test]
    fn parses_with_provenance() {
        let t = parse_file(&raw("id,total\n1,10\n2,20\n"), &ReadOptions::default()).unwrap();
        assert_eq!(t.name(), "orders");
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.provenance().repository, "a/b");
        assert_eq!(t.provenance().topic, "order");
        assert_eq!(t.provenance().license.as_deref(), Some("mit"));
        assert_eq!(t.provenance().file_size, "id,total\n1,10\n2,20\n".len());
    }

    #[test]
    fn unparseable_reports_failure() {
        let err = parse_file(&raw(""), &ReadOptions::default()).unwrap_err();
        assert!(matches!(err, ParseFailure::Csv(_)));
    }

    #[test]
    fn messy_but_recoverable_parses() {
        let content = "# comment\nid,v\n1,2\nbadline\n3,4\n";
        let t = parse_file(&raw(content), &ReadOptions::default()).unwrap();
        assert_eq!(t.num_rows(), 2);
    }
}
