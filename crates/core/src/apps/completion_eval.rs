//! Leave-one-out evaluation of schema completion (extends §5.2's anecdotal
//! Table 8 with a quantitative metric).
//!
//! For every corpus schema of length > `prefix_len`, hide the suffix and ask
//! [`NearestCompletion`] (with the held-out schema excluded) for the top-`k`
//! completions. A completion *hits* when its first suggested attribute
//! matches the held-out schema's true next attribute (after normalization),
//! and *soft-hits* when the true next attribute appears anywhere in the
//! suggested completion.

use gittables_corpus::Corpus;
use gittables_ontology::normalize_label;
use serde::{Deserialize, Serialize};

use crate::apps::schema_completion::NearestCompletion;

/// Aggregate results of the leave-one-out evaluation.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CompletionEval {
    /// Schemas evaluated.
    pub evaluated: usize,
    /// Top-k contained an exact next-attribute match at position 1.
    pub exact_hits: usize,
    /// Top-k contained the true next attribute anywhere in some completion.
    pub soft_hits: usize,
    /// Top-k contained an attribute semantically close to the true next
    /// attribute (embedding cosine ≥ [`SEMANTIC_HIT_THRESHOLD`]) — headers
    /// in the wild are abbreviated/mutated, so exact matching undercounts.
    pub semantic_hits: usize,
    /// Cutoff used.
    pub k: usize,
    /// Prefix length used.
    pub prefix_len: usize,
}

/// Cosine threshold for a semantic hit.
pub const SEMANTIC_HIT_THRESHOLD: f32 = 0.70;

impl CompletionEval {
    /// Exact hit rate.
    #[must_use]
    pub fn exact_rate(&self) -> f64 {
        if self.evaluated == 0 {
            return 0.0;
        }
        self.exact_hits as f64 / self.evaluated as f64
    }

    /// Soft hit rate.
    #[must_use]
    pub fn soft_rate(&self) -> f64 {
        if self.evaluated == 0 {
            return 0.0;
        }
        self.soft_hits as f64 / self.evaluated as f64
    }

    /// Semantic hit rate.
    #[must_use]
    pub fn semantic_rate(&self) -> f64 {
        if self.evaluated == 0 {
            return 0.0;
        }
        self.semantic_hits as f64 / self.evaluated as f64
    }
}

/// Runs the leave-one-out evaluation over up to `max_schemas` schemas.
#[must_use]
pub fn evaluate_completion(
    corpus: &Corpus,
    prefix_len: usize,
    k: usize,
    max_schemas: usize,
) -> CompletionEval {
    let nc = NearestCompletion::build(corpus);
    let encoder = gittables_embed::SentenceEncoder::default();
    let mut eval = CompletionEval {
        k,
        prefix_len,
        ..Default::default()
    };
    let mut done = 0usize;
    for at in &corpus.tables {
        if done >= max_schemas {
            break;
        }
        let schema = at.table.schema();
        if schema.len() <= prefix_len {
            continue;
        }
        let attrs: Vec<&str> = schema.iter().collect();
        let prefix = &attrs[..prefix_len];
        let gold_next = normalize_label(attrs[prefix_len]);
        if gold_next.is_empty() {
            continue;
        }
        // +1 so we can drop the held-out schema itself if returned.
        let completions = nc.complete(prefix, k + 1);
        let own: Vec<String> = schema.attributes().to_vec();
        let others: Vec<_> = completions
            .into_iter()
            .filter(|c| c.schema.attributes() != own.as_slice())
            .take(k)
            .collect();
        if others.is_empty() {
            continue;
        }
        done += 1;
        eval.evaluated += 1;
        if others
            .iter()
            .any(|c| c.completion.first().map(|a| normalize_label(a)) == Some(gold_next.clone()))
        {
            eval.exact_hits += 1;
        }
        if others
            .iter()
            .any(|c| c.completion.iter().any(|a| normalize_label(a) == gold_next))
        {
            eval.soft_hits += 1;
        }
        let gold_emb = encoder.embed(&gold_next);
        if others.iter().any(|c| {
            c.completion.iter().any(|a| {
                gittables_embed::cosine(&gold_emb, &encoder.embed(a)) >= SEMANTIC_HIT_THRESHOLD
            })
        }) {
            eval.semantic_hits += 1;
        }
    }
    eval
}

#[cfg(test)]
mod tests {
    use super::*;
    use gittables_corpus::AnnotatedTable;
    use gittables_table::Table;

    fn corpus_with_near_duplicates() -> Corpus {
        let mut c = Corpus::new("t");
        // Three near-identical order schemas (differing in the tail) so a
        // held-out one can be completed from its siblings, plus noise.
        let schemas: Vec<Vec<&str>> = vec![
            vec!["order id", "order date", "status", "total"],
            vec!["order id", "order date", "status", "customer"],
            vec!["order id", "order date", "status", "warehouse"],
            vec!["species", "genus", "habitat", "diet"],
        ];
        for (i, s) in schemas.iter().enumerate() {
            let row: Vec<&str> = s.iter().map(|_| "x").collect();
            let rows = [row.clone(), row];
            c.push(AnnotatedTable::new(
                Table::from_rows(format!("t{i}"), s, &rows).unwrap(),
            ));
        }
        c
    }

    #[test]
    fn siblings_complete_each_other() {
        let c = corpus_with_near_duplicates();
        let eval = evaluate_completion(&c, 2, 3, 100);
        assert!(eval.evaluated >= 3);
        // "status" follows (order id, order date) in every sibling schema.
        assert!(eval.exact_rate() > 0.5, "{eval:?}");
        assert!(eval.soft_rate() >= eval.exact_rate());
    }

    #[test]
    fn empty_corpus_safe() {
        let eval = evaluate_completion(&Corpus::new("e"), 3, 5, 10);
        assert_eq!(eval.evaluated, 0);
        assert_eq!(eval.exact_rate(), 0.0);
    }
}
