//! Schema completion — Algorithm 1 of the paper (§5.2, `NearestCompletion`).
//!
//! Given a target schema *prefix* of length `N`, find the `k` corpus schemas
//! whose first `N` attributes are closest (average positional cosine
//! distance between attribute embeddings) and return them as suggested
//! completions.

use gittables_corpus::{Corpus, F32Matrix, TableId};
use gittables_embed::{cosine, SentenceEncoder};
use gittables_table::Schema;
use serde::{Deserialize, Serialize};

/// One suggested completion.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SchemaCompletion {
    /// The full schema of the suggestion.
    pub schema: Schema,
    /// Average positional cosine *distance* of the prefix (lower = closer).
    pub prefix_distance: f64,
    /// The attributes after the prefix — the completion proper.
    pub completion: Vec<String>,
}

/// The NearestCompletion engine: pre-embeds corpus schema attributes.
///
/// Per-attribute embeddings live flat in one row-major [`F32Matrix`]
/// (schema `i`'s rows are `starts[i]..starts[i + 1]`), which is either
/// built in memory or a zero-copy view into a mapped index sidecar
/// ([`gittables_corpus::sidecar`]) — distances read plain `&[f32]` rows
/// either way, so both boot paths rank bit-identically.
pub struct NearestCompletion {
    encoder: SentenceEncoder,
    /// Distinct schemas, in first-seen order.
    schemas: Vec<Schema>,
    /// `schemas.len() + 1` cumulative row offsets into `rows`.
    starts: Vec<usize>,
    /// One embedding row per schema attribute, flat.
    rows: F32Matrix,
}

impl NearestCompletion {
    /// Builds the engine over every distinct schema in `corpus`.
    #[must_use]
    pub fn build(corpus: &Corpus) -> Self {
        Self::build_with_encoder(corpus, SentenceEncoder::default())
    }

    /// Builds with a custom encoder.
    #[must_use]
    pub fn build_with_encoder(corpus: &Corpus, encoder: SentenceEncoder) -> Self {
        let ids: Vec<TableId> = (0..corpus.len()).collect();
        Self::build_with_ids_and_encoder(corpus, &ids, encoder)
    }

    /// Builds the engine over the distinct schemas of the tables at `ids`,
    /// in id order. Shared by the in-process examples and the
    /// `gittables_serve` query engine, so both deduplicate and rank the
    /// exact same schemas in the exact same order. Ids out of range are
    /// skipped.
    #[must_use]
    pub fn build_with_ids(corpus: &Corpus, ids: &[TableId]) -> Self {
        Self::build_with_ids_and_encoder(corpus, ids, SentenceEncoder::default())
    }

    /// [`Self::build_with_ids`] with a custom encoder.
    #[must_use]
    pub fn build_with_ids_and_encoder(
        corpus: &Corpus,
        ids: &[TableId],
        encoder: SentenceEncoder,
    ) -> Self {
        let dim = encoder.embedder().dim;
        let mut seen = std::collections::HashSet::new();
        let mut schemas = Vec::new();
        let mut starts = vec![0usize];
        let mut flat = Vec::new();
        for t in ids.iter().filter_map(|&id| corpus.table_by_id(id)) {
            let schema = t.table.schema();
            if schema.is_empty() || !seen.insert(schema.attributes().to_vec()) {
                continue;
            }
            for a in schema.iter() {
                flat.extend_from_slice(&encoder.embed(a));
            }
            starts.push(starts.last().expect("seeded") + schema.len());
            schemas.push(schema);
        }
        let total = *starts.last().expect("seeded");
        let rows = F32Matrix::from_vec(flat, total, dim);
        NearestCompletion {
            encoder,
            schemas,
            starts,
            rows,
        }
    }

    /// Builds the engine over an explicit schema list — one schema per
    /// table, in stable-id order — exactly as [`Self::build_with_ids`]
    /// would over the tables behind them: empty schemas are skipped,
    /// duplicates are dropped in first-seen order, and every surviving
    /// attribute is embedded with the default encoder. Used by the
    /// scale-out server to assemble shard-local completion engines from
    /// the schemas already carried by the search sidecar, bit-identical
    /// to a from-corpus build over the same id range.
    #[must_use]
    pub fn build_from_schemas<'a>(schemas: impl IntoIterator<Item = &'a Schema>) -> Self {
        let encoder = SentenceEncoder::default();
        let dim = encoder.embedder().dim;
        let mut seen = std::collections::HashSet::new();
        let mut kept = Vec::new();
        let mut starts = vec![0usize];
        let mut flat = Vec::new();
        for schema in schemas {
            if schema.is_empty() || !seen.insert(schema.attributes().to_vec()) {
                continue;
            }
            for a in schema.iter() {
                flat.extend_from_slice(&encoder.embed(a));
            }
            starts.push(starts.last().expect("seeded") + schema.len());
            kept.push(schema.clone());
        }
        let total = *starts.last().expect("seeded");
        let rows = F32Matrix::from_vec(flat, total, dim);
        NearestCompletion {
            encoder,
            schemas: kept,
            starts,
            rows,
        }
    }

    /// Reassembles the engine from persisted parts (the sidecar boot
    /// path): the exact schemas, row offsets, and per-attribute embedding
    /// rows a [`Self::build_with_ids`] call produced, in the same order.
    /// Ranking is bit-identical because the rows are.
    ///
    /// # Panics
    /// When `starts` is not a `schemas.len() + 1` cumulative offset list
    /// consistent with the schema lengths and `rows`.
    #[must_use]
    pub fn from_raw_parts(schemas: Vec<Schema>, starts: Vec<usize>, rows: F32Matrix) -> Self {
        assert_eq!(
            starts.len(),
            schemas.len() + 1,
            "offset per schema plus end"
        );
        for (i, s) in schemas.iter().enumerate() {
            assert_eq!(starts[i + 1] - starts[i], s.len(), "rows match schema {i}");
        }
        assert_eq!(*starts.last().expect("non-empty"), rows.rows(), "row total");
        NearestCompletion {
            encoder: SentenceEncoder::default(),
            schemas,
            starts,
            rows,
        }
    }

    /// The distinct schemas, in first-seen order — the serialization path
    /// of the completion sidecar.
    #[must_use]
    pub fn entry_schemas(&self) -> &[Schema] {
        &self.schemas
    }

    /// The cumulative row offsets (`schemas.len() + 1` entries).
    #[must_use]
    pub fn row_starts(&self) -> &[usize] {
        &self.starts
    }

    /// The flat per-attribute embedding matrix.
    #[must_use]
    pub fn matrix(&self) -> &F32Matrix {
        &self.rows
    }

    /// Number of indexed schemas.
    #[must_use]
    pub fn len(&self) -> usize {
        self.schemas.len()
    }

    /// Whether no schemas are indexed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.schemas.is_empty()
    }

    /// Algorithm 1: the `k` nearest completions for `prefix`.
    ///
    /// Corpus schemas shorter than the prefix are skipped (they cannot
    /// complete it). Distance is `mean_i (1 - cos(prefix[i], schema[i]))`.
    #[must_use]
    pub fn complete(&self, prefix: &[&str], k: usize) -> Vec<SchemaCompletion> {
        let n = prefix.len();
        if n == 0 {
            return Vec::new();
        }
        let prefix_emb: Vec<Vec<f32>> = prefix.iter().map(|a| self.encoder.embed(a)).collect();
        // Score everything, materialize (clone schemas for) only the `k`
        // survivors — the hot path of the `/complete` endpoint. The stable
        // sort keeps ties in schema order, bit-identical to the original
        // build-everything-then-truncate implementation.
        let mut scored: Vec<(usize, f64)> = self
            .schemas
            .iter()
            .enumerate()
            .filter(|(_, s)| s.len() > n)
            .map(|(idx, _)| {
                let base = self.starts[idx];
                let d: f64 = (0..n)
                    .map(|i| 1.0 - f64::from(cosine(&prefix_emb[i], self.rows.row(base + i))))
                    .sum::<f64>()
                    / n as f64;
                (idx, d)
            })
            .collect();
        scored.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        scored.truncate(k);
        scored
            .into_iter()
            .map(|(idx, d)| {
                let s = &self.schemas[idx];
                SchemaCompletion {
                    schema: s.clone(),
                    prefix_distance: d,
                    completion: s.suffix(n).to_vec(),
                }
            })
            .collect()
    }

    /// Relevance of a suggestion: cosine similarity between the embedding of
    /// the original full schema and the suggested full schema (the paper's
    /// Table 8 third column).
    #[must_use]
    pub fn relevance(&self, original: &[&str], suggestion: &Schema) -> f64 {
        let a = self.encoder.embed_schema(original);
        let attrs: Vec<&str> = suggestion.iter().collect();
        let b = self.encoder.embed_schema(&attrs);
        f64::from(cosine(&a, &b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gittables_corpus::AnnotatedTable;
    use gittables_table::Table;

    fn corpus() -> Corpus {
        let mut c = Corpus::new("t");
        let schemas: Vec<Vec<&str>> = vec![
            vec![
                "order id",
                "order date",
                "required date",
                "shipped date",
                "status",
            ],
            vec![
                "emp no",
                "birth date",
                "first name",
                "last name",
                "hire date",
            ],
            vec!["species", "genus", "family", "habitat"],
            vec!["order id", "customer", "total"],
        ];
        for (i, s) in schemas.iter().enumerate() {
            let row: Vec<&str> = s.iter().map(|_| "x").collect();
            let rows = [row.clone(), row];
            let t = Table::from_rows(format!("t{i}"), s, &rows).unwrap();
            c.push(AnnotatedTable::new(t));
        }
        c
    }

    #[test]
    fn nearest_completion_finds_related_schema() {
        let nc = NearestCompletion::build(&corpus());
        let out = nc.complete(&["order number", "order date"], 2);
        assert!(!out.is_empty());
        // The order schema should rank first.
        assert!(out[0].schema.attributes()[0].contains("order"), "{out:?}");
        assert!(!out[0].completion.is_empty());
    }

    #[test]
    fn exact_prefix_distance_zero() {
        let nc = NearestCompletion::build(&corpus());
        let out = nc.complete(&["order id", "order date"], 1);
        assert!(out[0].prefix_distance < 1e-5, "{}", out[0].prefix_distance);
        assert_eq!(out[0].completion[0], "required date");
    }

    #[test]
    fn shorter_schemas_skipped() {
        let nc = NearestCompletion::build(&corpus());
        let out = nc.complete(&["species", "genus", "family", "habitat"], 10);
        // The 4-attr species schema cannot complete a 4-attr prefix.
        assert!(out.iter().all(|c| c.schema.len() > 4));
    }

    #[test]
    fn k_truncates_and_sorted() {
        let nc = NearestCompletion::build(&corpus());
        let out = nc.complete(&["order id"], 2);
        assert!(out.len() <= 2);
        for w in out.windows(2) {
            assert!(w[0].prefix_distance <= w[1].prefix_distance);
        }
    }

    #[test]
    fn empty_prefix_empty_result() {
        let nc = NearestCompletion::build(&corpus());
        assert!(nc.complete(&[], 5).is_empty());
    }

    #[test]
    fn relevance_higher_for_related_schemas() {
        let nc = NearestCompletion::build(&corpus());
        let order = Schema::new(["order id", "order date", "status"]);
        let species = Schema::new(["species", "genus", "family"]);
        let target = ["order number", "order date", "order status"];
        assert!(nc.relevance(&target, &order) > nc.relevance(&target, &species));
    }

    #[test]
    fn build_from_schemas_matches_build_with_ids() {
        let c = corpus();
        let reference = NearestCompletion::build(&c);
        let schemas: Vec<Schema> = c.tables.iter().map(|t| t.table.schema()).collect();
        let rebuilt = NearestCompletion::build_from_schemas(&schemas);
        assert_eq!(rebuilt.entry_schemas(), reference.entry_schemas());
        assert_eq!(rebuilt.row_starts(), reference.row_starts());
        assert_eq!(rebuilt.matrix().as_slice(), reference.matrix().as_slice());
        assert_eq!(
            rebuilt.complete(&["order id"], 3),
            reference.complete(&["order id"], 3)
        );
    }

    #[test]
    fn duplicate_schemas_deduplicated() {
        let mut c = corpus();
        let before = NearestCompletion::build(&c).len();
        // Add a duplicate of an existing schema.
        let t = Table::from_rows(
            "dup",
            &["order id", "customer", "total"],
            &[&["1", "a", "2"], &["2", "b", "3"]],
        )
        .unwrap();
        c.push(AnnotatedTable::new(t));
        assert_eq!(NearestCompletion::build(&c).len(), before);
    }
}
