//! The paper's §5 applications built on the corpus.

pub mod benchmark;
pub mod completion_eval;
pub mod schema_completion;
pub mod search;
pub mod search_benchmark;
pub mod type_detection;

pub use benchmark::{build_cta_benchmark, run_kg_benchmark, CtaBenchmark, KgBenchmarkRow};
pub use completion_eval::{evaluate_completion, CompletionEval};
pub use schema_completion::{NearestCompletion, SchemaCompletion};
pub use search::{DataSearch, SearchHit};
pub use search_benchmark::{default_queries, evaluate_search, mean_ndcg, BenchmarkQuery};
pub use type_detection::{build_type_dataset, train_sherlock, TypeDetectionConfig};
