//! Data search over table schemas (§5.3, Fig. 6b): embed entire table
//! schemas and rank them against a natural-language query.

use gittables_corpus::Corpus;
use gittables_embed::{cosine, SentenceEncoder};
use gittables_table::Schema;
use serde::{Deserialize, Serialize};

/// One search hit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchHit {
    /// Index of the table in the corpus.
    pub table_index: usize,
    /// The table's schema.
    pub schema: Schema,
    /// Cosine similarity between query and schema embeddings.
    pub score: f64,
}

/// A schema-embedding search index over a corpus.
pub struct DataSearch {
    encoder: SentenceEncoder,
    /// `(table index, schema, schema embedding)`.
    entries: Vec<(usize, Schema, Vec<f32>)>,
}

impl DataSearch {
    /// Builds the index over every table in the corpus.
    #[must_use]
    pub fn build(corpus: &Corpus) -> Self {
        let encoder = SentenceEncoder::default();
        let entries = corpus
            .tables
            .iter()
            .enumerate()
            .map(|(i, t)| {
                let schema = t.table.schema();
                let attrs: Vec<&str> = schema.iter().collect();
                let emb = encoder.embed_schema(&attrs);
                (i, schema, emb)
            })
            .collect();
        DataSearch { encoder, entries }
    }

    /// Number of indexed tables.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the index is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Top-`k` tables for a natural-language `query`.
    #[must_use]
    pub fn search(&self, query: &str, k: usize) -> Vec<SearchHit> {
        let qe = self.encoder.embed(query);
        let mut hits: Vec<SearchHit> = self
            .entries
            .iter()
            .map(|(i, s, e)| SearchHit {
                table_index: *i,
                schema: s.clone(),
                score: f64::from(cosine(&qe, e)),
            })
            .collect();
        hits.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        hits.truncate(k);
        hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gittables_corpus::AnnotatedTable;
    use gittables_table::Table;

    fn corpus() -> Corpus {
        let mut c = Corpus::new("t");
        let schemas: Vec<Vec<&str>> = vec![
            vec![
                "id",
                "quantity",
                "total_price",
                "status",
                "product_id",
                "order_id",
            ],
            vec!["species", "genus", "habitat", "diet"],
            vec!["player", "team", "goals", "assists"],
        ];
        for (i, s) in schemas.iter().enumerate() {
            let row: Vec<&str> = s.iter().map(|_| "1").collect();
            let rows = [row.clone(), row];
            c.push(AnnotatedTable::new(
                Table::from_rows(format!("t{i}"), s, &rows).unwrap(),
            ));
        }
        c
    }

    #[test]
    fn paper_query_retrieves_order_table() {
        // Fig. 6b: "status and sales amount per product" retrieves the
        // product-order table.
        let ds = DataSearch::build(&corpus());
        let hits = ds.search("status and sales amount per product", 1);
        assert_eq!(hits[0].table_index, 0, "{hits:?}");
    }

    #[test]
    fn biology_query_retrieves_species_table() {
        let ds = DataSearch::build(&corpus());
        let hits = ds.search("species and their habitat", 1);
        assert_eq!(hits[0].table_index, 1);
    }

    #[test]
    fn scores_sorted_and_k_respected() {
        let ds = DataSearch::build(&corpus());
        let hits = ds.search("goals per player", 2);
        assert_eq!(hits.len(), 2);
        assert!(hits[0].score >= hits[1].score);
        assert_eq!(hits[0].table_index, 2);
    }

    #[test]
    fn empty_corpus() {
        let ds = DataSearch::build(&Corpus::new("e"));
        assert!(ds.is_empty());
        assert!(ds.search("anything", 3).is_empty());
    }
}
