//! Data search over table schemas (§5.3, Fig. 6b): embed entire table
//! schemas and rank them against a natural-language query.

use gittables_corpus::{Corpus, TableId};
use gittables_embed::{cosine, SentenceEncoder};
use gittables_table::Schema;
use serde::{Deserialize, Serialize};

/// One search hit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchHit {
    /// Stable id of the table in the corpus (its global position).
    pub table_index: usize,
    /// The table's schema.
    pub schema: Schema,
    /// Cosine similarity between query and schema embeddings.
    pub score: f64,
}

/// A schema-embedding search index over a corpus.
pub struct DataSearch {
    encoder: SentenceEncoder,
    /// `(table index, schema, schema embedding)`.
    entries: Vec<(usize, Schema, Vec<f32>)>,
}

impl DataSearch {
    /// Builds the index over every table in the corpus, with table ids
    /// equal to corpus positions.
    #[must_use]
    pub fn build(corpus: &Corpus) -> Self {
        let ids: Vec<TableId> = (0..corpus.len()).collect();
        Self::build_with_ids(corpus, &ids)
    }

    /// Builds the index over the tables at `ids`, preserving the given
    /// stable ids in [`SearchHit::table_index`]. Shared by the in-process
    /// examples and the `gittables_serve` query engine, so both rank the
    /// exact same entries in the exact same order. Ids out of range are
    /// skipped.
    #[must_use]
    pub fn build_with_ids(corpus: &Corpus, ids: &[TableId]) -> Self {
        let encoder = SentenceEncoder::default();
        let entries = ids
            .iter()
            .filter_map(|&id| corpus.table_by_id(id).map(|t| (id, t)))
            .map(|(id, t)| {
                let schema = t.table.schema();
                let attrs: Vec<&str> = schema.iter().collect();
                let emb = encoder.embed_schema(&attrs);
                (id, schema, emb)
            })
            .collect();
        DataSearch { encoder, entries }
    }

    /// Number of indexed tables.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the index is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Top-`k` tables for a natural-language `query`.
    ///
    /// Scores every entry but materializes (clones schemas for) only the
    /// `k` survivors — the hot path of the `/search` endpoint. The stable
    /// sort over the same comparator keeps results bit-identical to the
    /// original sort-everything-then-truncate implementation, ties
    /// resolving in entry order.
    #[must_use]
    pub fn search(&self, query: &str, k: usize) -> Vec<SearchHit> {
        let qe = self.encoder.embed(query);
        let mut scored: Vec<(usize, f64)> = self
            .entries
            .iter()
            .enumerate()
            .map(|(n, (_, _, e))| (n, f64::from(cosine(&qe, e))))
            .collect();
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        scored.truncate(k);
        scored
            .into_iter()
            .map(|(n, score)| {
                let (id, schema, _) = &self.entries[n];
                SearchHit {
                    table_index: *id,
                    schema: schema.clone(),
                    score,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gittables_corpus::AnnotatedTable;
    use gittables_table::Table;

    fn corpus() -> Corpus {
        let mut c = Corpus::new("t");
        let schemas: Vec<Vec<&str>> = vec![
            vec![
                "id",
                "quantity",
                "total_price",
                "status",
                "product_id",
                "order_id",
            ],
            vec!["species", "genus", "habitat", "diet"],
            vec!["player", "team", "goals", "assists"],
        ];
        for (i, s) in schemas.iter().enumerate() {
            let row: Vec<&str> = s.iter().map(|_| "1").collect();
            let rows = [row.clone(), row];
            c.push(AnnotatedTable::new(
                Table::from_rows(format!("t{i}"), s, &rows).unwrap(),
            ));
        }
        c
    }

    #[test]
    fn paper_query_retrieves_order_table() {
        // Fig. 6b: "status and sales amount per product" retrieves the
        // product-order table.
        let ds = DataSearch::build(&corpus());
        let hits = ds.search("status and sales amount per product", 1);
        assert_eq!(hits[0].table_index, 0, "{hits:?}");
    }

    #[test]
    fn biology_query_retrieves_species_table() {
        let ds = DataSearch::build(&corpus());
        let hits = ds.search("species and their habitat", 1);
        assert_eq!(hits[0].table_index, 1);
    }

    #[test]
    fn scores_sorted_and_k_respected() {
        let ds = DataSearch::build(&corpus());
        let hits = ds.search("goals per player", 2);
        assert_eq!(hits.len(), 2);
        assert!(hits[0].score >= hits[1].score);
        assert_eq!(hits[0].table_index, 2);
    }

    #[test]
    fn empty_corpus() {
        let ds = DataSearch::build(&Corpus::new("e"));
        assert!(ds.is_empty());
        assert!(ds.search("anything", 3).is_empty());
    }
}
