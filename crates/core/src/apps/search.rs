//! Data search over table schemas (§5.3, Fig. 6b): embed entire table
//! schemas and rank them against a natural-language query.

use gittables_corpus::{Corpus, F32Matrix, TableId};
use gittables_embed::{cosine, SentenceEncoder};
use gittables_table::Schema;
use serde::{Deserialize, Serialize};

/// One search hit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchHit {
    /// Stable id of the table in the corpus (its global position).
    pub table_index: usize,
    /// The table's schema.
    pub schema: Schema,
    /// Cosine similarity between query and schema embeddings.
    pub score: f64,
}

/// A schema-embedding search index over a corpus.
///
/// Entry embeddings live in one row-major [`F32Matrix`], which is either
/// built in memory or a zero-copy view into a mapped index sidecar
/// ([`gittables_corpus::sidecar`]) — scoring reads plain `&[f32]` rows
/// either way, so both boot paths rank bit-identically.
pub struct DataSearch {
    encoder: SentenceEncoder,
    /// Stable table id per entry.
    ids: Vec<TableId>,
    /// Schema per entry, parallel to `ids`.
    schemas: Vec<Schema>,
    /// Row `n` is entry `n`'s schema embedding.
    rows: F32Matrix,
}

impl DataSearch {
    /// Builds the index over every table in the corpus, with table ids
    /// equal to corpus positions.
    #[must_use]
    pub fn build(corpus: &Corpus) -> Self {
        let ids: Vec<TableId> = (0..corpus.len()).collect();
        Self::build_with_ids(corpus, &ids)
    }

    /// Builds the index over the tables at `ids`, preserving the given
    /// stable ids in [`SearchHit::table_index`]. Shared by the in-process
    /// examples and the `gittables_serve` query engine, so both rank the
    /// exact same entries in the exact same order. Ids out of range are
    /// skipped.
    #[must_use]
    pub fn build_with_ids(corpus: &Corpus, ids: &[TableId]) -> Self {
        let encoder = SentenceEncoder::default();
        let dim = encoder.embedder().dim;
        let mut kept = Vec::new();
        let mut schemas = Vec::new();
        let mut flat = Vec::new();
        for (id, t) in ids
            .iter()
            .filter_map(|&id| corpus.table_by_id(id).map(|t| (id, t)))
        {
            let schema = t.table.schema();
            let attrs: Vec<&str> = schema.iter().collect();
            flat.extend_from_slice(&encoder.embed_schema(&attrs));
            kept.push(id);
            schemas.push(schema);
        }
        let rows = F32Matrix::from_vec(flat, kept.len(), dim);
        DataSearch {
            encoder,
            ids: kept,
            schemas,
            rows,
        }
    }

    /// Reassembles an index from persisted parts (the sidecar boot path):
    /// the exact ids, schemas, and embedding rows a
    /// [`Self::build_with_ids`] call produced, in the same order. Scoring
    /// is bit-identical because the rows are.
    ///
    /// # Panics
    /// When `ids`, `schemas`, and `rows` are not parallel.
    #[must_use]
    pub fn from_raw_parts(ids: Vec<TableId>, schemas: Vec<Schema>, rows: F32Matrix) -> Self {
        assert_eq!(ids.len(), schemas.len(), "schema per entry");
        assert_eq!(ids.len(), rows.rows(), "embedding row per entry");
        DataSearch {
            encoder: SentenceEncoder::default(),
            ids,
            schemas,
            rows,
        }
    }

    /// The embedding dimensionality this build's default encoder
    /// produces — what a persisted matrix must match to be servable.
    #[must_use]
    pub fn encoder_dim() -> usize {
        SentenceEncoder::default().embedder().dim
    }

    /// The stable table ids, in entry order — the serialization path of
    /// the search sidecar.
    #[must_use]
    pub fn entry_ids(&self) -> &[TableId] {
        &self.ids
    }

    /// The schemas, parallel to [`Self::entry_ids`].
    #[must_use]
    pub fn entry_schemas(&self) -> &[Schema] {
        &self.schemas
    }

    /// The embedding matrix (one row per entry).
    #[must_use]
    pub fn matrix(&self) -> &F32Matrix {
        &self.rows
    }

    /// Number of indexed tables.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the index is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Top-`k` tables for a natural-language `query`.
    ///
    /// Scores every entry but materializes (clones schemas for) only the
    /// `k` survivors — the hot path of the `/search` endpoint. The stable
    /// sort over the same comparator keeps results bit-identical to the
    /// original sort-everything-then-truncate implementation, ties
    /// resolving in entry order.
    #[must_use]
    pub fn search(&self, query: &str, k: usize) -> Vec<SearchHit> {
        let qe = self.encoder.embed(query);
        let mut scored: Vec<(usize, f64)> = (0..self.ids.len())
            .map(|n| (n, f64::from(cosine(&qe, self.rows.row(n)))))
            .collect();
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        scored.truncate(k);
        scored
            .into_iter()
            .map(|(n, score)| SearchHit {
                table_index: self.ids[n],
                schema: self.schemas[n].clone(),
                score,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gittables_corpus::AnnotatedTable;
    use gittables_table::Table;

    fn corpus() -> Corpus {
        let mut c = Corpus::new("t");
        let schemas: Vec<Vec<&str>> = vec![
            vec![
                "id",
                "quantity",
                "total_price",
                "status",
                "product_id",
                "order_id",
            ],
            vec!["species", "genus", "habitat", "diet"],
            vec!["player", "team", "goals", "assists"],
        ];
        for (i, s) in schemas.iter().enumerate() {
            let row: Vec<&str> = s.iter().map(|_| "1").collect();
            let rows = [row.clone(), row];
            c.push(AnnotatedTable::new(
                Table::from_rows(format!("t{i}"), s, &rows).unwrap(),
            ));
        }
        c
    }

    #[test]
    fn paper_query_retrieves_order_table() {
        // Fig. 6b: "status and sales amount per product" retrieves the
        // product-order table.
        let ds = DataSearch::build(&corpus());
        let hits = ds.search("status and sales amount per product", 1);
        assert_eq!(hits[0].table_index, 0, "{hits:?}");
    }

    #[test]
    fn biology_query_retrieves_species_table() {
        let ds = DataSearch::build(&corpus());
        let hits = ds.search("species and their habitat", 1);
        assert_eq!(hits[0].table_index, 1);
    }

    #[test]
    fn scores_sorted_and_k_respected() {
        let ds = DataSearch::build(&corpus());
        let hits = ds.search("goals per player", 2);
        assert_eq!(hits.len(), 2);
        assert!(hits[0].score >= hits[1].score);
        assert_eq!(hits[0].table_index, 2);
    }

    #[test]
    fn empty_corpus() {
        let ds = DataSearch::build(&Corpus::new("e"));
        assert!(ds.is_empty());
        assert!(ds.search("anything", 3).is_empty());
    }
}
