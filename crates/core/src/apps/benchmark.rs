//! The column-type-annotation (CTA) benchmark and the table-to-KG matching
//! evaluation of Fig. 6a (§5.3).
//!
//! The paper curates 1 101 tables (≥3 columns, ≥5 rows) with
//! syntactically-obtained gold types from DBpedia (122 types) and Schema.org
//! (59 types), submits them to SemTab systems, and observes low
//! precision/recall because cell-value linking fails on database-like
//! content. We rebuild the benchmark from a corpus and evaluate our matcher
//! baselines the same way.

use gittables_annotate::kgmatch::{score_predictions, KgMatcher};
use gittables_annotate::Method;
use gittables_corpus::Corpus;
use gittables_ontology::OntologyKind;
use gittables_table::Table;
use serde::{Deserialize, Serialize};

/// One benchmark table with its gold column types.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CtaTable {
    /// The table.
    pub table: Table,
    /// Gold `(column index, type label)` pairs.
    pub gold: Vec<(usize, String)>,
}

/// A CTA benchmark for one ontology.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CtaBenchmark {
    /// Ontology providing the gold labels.
    pub ontology: OntologyKind,
    /// Benchmark tables.
    pub tables: Vec<CtaTable>,
    /// Number of distinct gold types.
    pub distinct_types: usize,
}

/// Builds the benchmark: tables with at least `min_cols` columns,
/// `min_rows` rows, and ≥1 syntactic annotation in `ontology`; capped at
/// `max_tables`.
#[must_use]
pub fn build_cta_benchmark(
    corpus: &Corpus,
    ontology: OntologyKind,
    min_cols: usize,
    min_rows: usize,
    max_tables: usize,
) -> CtaBenchmark {
    let mut tables = Vec::new();
    let mut types = std::collections::HashSet::new();
    for t in &corpus.tables {
        if tables.len() >= max_tables {
            break;
        }
        if t.table.num_columns() < min_cols || t.table.num_rows() < min_rows {
            continue;
        }
        let anns = t.annotations(Method::Syntactic, ontology);
        if !anns.any() {
            continue;
        }
        let gold: Vec<(usize, String)> = anns
            .annotations
            .iter()
            .map(|a| (a.column, a.label.clone()))
            .collect();
        for (_, l) in &gold {
            types.insert(l.clone());
        }
        tables.push(CtaTable {
            table: t.table.clone(),
            gold,
        });
    }
    CtaBenchmark {
        ontology,
        tables,
        distinct_types: types.len(),
    }
}

/// One row of the Fig. 6a result: a system's precision/recall on one
/// ontology's benchmark.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KgBenchmarkRow {
    /// Matching system name.
    pub system: String,
    /// Ontology evaluated against.
    pub ontology: OntologyKind,
    /// Mean precision over tables with predictions.
    pub precision: f64,
    /// Mean recall over all tables.
    pub recall: f64,
}

/// Evaluates one matcher over the benchmark: macro-averaged precision and
/// recall over tables.
#[must_use]
pub fn run_kg_benchmark(benchmark: &CtaBenchmark, matcher: &dyn KgMatcher) -> KgBenchmarkRow {
    let mut precision_sum = 0.0;
    let mut precision_n = 0usize;
    let mut recall_sum = 0.0;
    for t in &benchmark.tables {
        let preds = matcher.predict(&t.table);
        let (p, r) = score_predictions(&preds, &t.gold);
        if !preds.is_empty() {
            precision_sum += p;
            precision_n += 1;
        }
        recall_sum += r;
    }
    let n = benchmark.tables.len().max(1) as f64;
    KgBenchmarkRow {
        system: matcher.name().to_string(),
        ontology: benchmark.ontology,
        precision: if precision_n > 0 {
            precision_sum / precision_n as f64
        } else {
            0.0
        },
        recall: recall_sum / n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gittables_annotate::kgmatch::{CellValueMatcher, HeaderMatcher, PatternMatcher};
    use gittables_annotate::{Annotation, TableAnnotations};
    use gittables_corpus::AnnotatedTable;

    fn corpus() -> Corpus {
        let mut c = Corpus::new("t");
        // Database-like table: ids & codes; gold from headers.
        let t = Table::from_rows(
            "orders",
            &["id", "quantity", "status"],
            &[
                &["1", "68103", "AVAILABLE"],
                &["2", "28571", "AVAILABLE"],
                &["3", "55600", "SOLD"],
                &["4", "99296", "SOLD"],
                &["5", "12345", "OPEN"],
            ],
        )
        .unwrap();
        let mut at = AnnotatedTable::new(t);
        at.syntactic_dbpedia = TableAnnotations {
            annotations: vec![
                Annotation {
                    column: 0,
                    type_id: 0,
                    label: "id".into(),
                    ontology: OntologyKind::DBpedia,
                    method: Method::Syntactic,
                    similarity: 1.0,
                },
                Annotation {
                    column: 2,
                    type_id: 1,
                    label: "status".into(),
                    ontology: OntologyKind::DBpedia,
                    method: Method::Syntactic,
                    similarity: 1.0,
                },
            ],
            num_columns: 3,
        };
        c.push(at);
        // Too-small table: excluded by min dims.
        let small = Table::from_rows("s", &["a", "b"], &[&["1", "2"], &["3", "4"]]).unwrap();
        c.push(AnnotatedTable::new(small));
        c
    }

    #[test]
    fn benchmark_built_with_dims_filter() {
        let b = build_cta_benchmark(&corpus(), OntologyKind::DBpedia, 3, 5, 100);
        assert_eq!(b.tables.len(), 1);
        assert_eq!(b.distinct_types, 2);
        assert_eq!(b.tables[0].gold.len(), 2);
    }

    #[test]
    fn cell_value_matcher_scores_low_on_database_tables() {
        let b = build_cta_benchmark(&corpus(), OntologyKind::DBpedia, 3, 5, 100);
        let row = run_kg_benchmark(&b, &CellValueMatcher::new());
        assert!(row.recall < 0.5, "recall {}", row.recall);
    }

    #[test]
    fn header_matcher_scores_high() {
        let b = build_cta_benchmark(&corpus(), OntologyKind::DBpedia, 3, 5, 100);
        let row = run_kg_benchmark(&b, &HeaderMatcher);
        assert!(row.recall > 0.9, "recall {}", row.recall);
    }

    #[test]
    fn pattern_matcher_runs() {
        let b = build_cta_benchmark(&corpus(), OntologyKind::DBpedia, 3, 5, 100);
        let row = run_kg_benchmark(&b, &PatternMatcher::new());
        assert!(row.precision >= 0.0 && row.recall <= 1.0);
    }

    #[test]
    fn max_tables_cap() {
        let b = build_cta_benchmark(&corpus(), OntologyKind::DBpedia, 3, 5, 0);
        assert!(b.tables.is_empty());
    }
}
