//! Semantic column type detection (§5.1, Table 7): train a Sherlock-style
//! model on labeled columns from a corpus.
//!
//! The paper selects five semantic types — `address`, `class`, `status`,
//! `name`, `description` — samples 500 deduplicated columns per type, and
//! trains Sherlock with 5-fold CV, comparing GitTables-trained vs
//! VizNet-trained models.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashSet;
use std::hash::{Hash, Hasher};

use gittables_annotate::Method;
use gittables_corpus::Corpus;
use gittables_ml::{
    cross_validate, Classifier, CvReport, Dataset, FeatureExtractor, ForestConfig, LogisticConfig,
    LogisticRegression, Mlp, MlpConfig, RandomForest,
};
use gittables_ontology::OntologyKind;
use gittables_synth::tablegen::GeneratedTable;
use serde::{Deserialize, Serialize};

/// The five semantic types of the paper's Table 7 experiment.
pub const PAPER_TYPES: [&str; 5] = ["address", "class", "status", "name", "description"];

/// Configuration of the type-detection experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TypeDetectionConfig {
    /// The target semantic types (class names of the dataset).
    pub types: Vec<String>,
    /// Columns sampled per type.
    pub per_type: usize,
    /// Which classifier to train: `"forest"`, `"logistic"`, or `"mlp"`.
    pub classifier: String,
    /// CV folds.
    pub folds: usize,
    /// Seed.
    pub seed: u64,
}

impl Default for TypeDetectionConfig {
    fn default() -> Self {
        TypeDetectionConfig {
            types: PAPER_TYPES.iter().map(|s| (*s).to_string()).collect(),
            per_type: 500,
            classifier: "forest".to_string(),
            folds: 5,
            seed: 0,
        }
    }
}

fn values_fingerprint(values: &[String]) -> u64 {
    let mut h = DefaultHasher::new();
    for v in values.iter().take(32) {
        v.hash(&mut h);
    }
    values.len().hash(&mut h);
    h.finish()
}

/// Builds a labeled dataset of column features from a corpus: columns whose
/// *syntactic* annotation (either ontology) matches one of the target types,
/// deduplicated by content, up to `per_type` per class.
#[must_use]
pub fn build_type_dataset(
    corpus: &Corpus,
    config: &TypeDetectionConfig,
    extractor: &FeatureExtractor,
) -> Dataset {
    let mut data = Dataset::new(Vec::new(), Vec::new(), config.types.clone());
    let mut seen: HashSet<u64> = HashSet::new();
    let mut counts = vec![0usize; config.types.len()];
    for t in &corpus.tables {
        for (method, ont) in [
            (Method::Syntactic, OntologyKind::SchemaOrg),
            (Method::Syntactic, OntologyKind::DBpedia),
        ] {
            for a in &t.annotations(method, ont).annotations {
                let Some(class) = config.types.iter().position(|ty| *ty == a.label) else {
                    continue;
                };
                if counts[class] >= config.per_type {
                    continue;
                }
                let Some(col) = t.table.column(a.column) else {
                    continue;
                };
                if col.is_empty() {
                    continue;
                }
                let fp = values_fingerprint(col.values());
                if !seen.insert(fp) {
                    continue;
                }
                data.push(extractor.extract(col.values()), class);
                counts[class] += 1;
            }
        }
    }
    data
}

/// Builds a labeled dataset from web tables (the VizNet stand-in): columns
/// whose *header* equals one of the target types.
#[must_use]
pub fn build_webtable_type_dataset(
    tables: &[GeneratedTable],
    config: &TypeDetectionConfig,
    extractor: &FeatureExtractor,
) -> Dataset {
    let mut data = Dataset::new(Vec::new(), Vec::new(), config.types.clone());
    let mut seen: HashSet<u64> = HashSet::new();
    let mut counts = vec![0usize; config.types.len()];
    for t in tables {
        for (ci, header) in t.header.iter().enumerate() {
            let norm = gittables_ontology::normalize_label(header);
            let Some(class) = config.types.iter().position(|ty| *ty == norm) else {
                continue;
            };
            if counts[class] >= config.per_type {
                continue;
            }
            let values: Vec<String> = t.rows.iter().map(|r| r[ci].clone()).collect();
            if values.is_empty() {
                continue;
            }
            let fp = values_fingerprint(&values);
            if !seen.insert(fp) {
                continue;
            }
            data.push(extractor.extract(&values), class);
            counts[class] += 1;
        }
    }
    data
}

/// Trains the configured classifier with k-fold CV on `data` — one cell of
/// Table 7's diagonal.
#[must_use]
pub fn train_sherlock(data: &Dataset, config: &TypeDetectionConfig) -> CvReport {
    if config.classifier == "logistic" {
        cross_validate(data, config.folds, config.seed, || {
            LogisticRegression::new(LogisticConfig {
                seed: config.seed,
                ..Default::default()
            })
        })
    } else if config.classifier == "mlp" {
        cross_validate(data, config.folds, config.seed, || {
            Mlp::new(MlpConfig {
                seed: config.seed,
                ..Default::default()
            })
        })
    } else {
        cross_validate(data, config.folds, config.seed, || {
            RandomForest::new(ForestConfig {
                seed: config.seed,
                ..Default::default()
            })
        })
    }
}

/// Trains on `train` and evaluates on `eval` — Table 7's cross-corpus cell
/// (train VizNet → evaluate GitTables). Returns `(accuracy, macro F1)`.
#[must_use]
pub fn train_eval_cross(
    train: &Dataset,
    eval: &Dataset,
    config: &TypeDetectionConfig,
) -> (f64, f64) {
    let mut model: Box<dyn Classifier> = if config.classifier == "logistic" {
        Box::new(LogisticRegression::new(LogisticConfig {
            seed: config.seed,
            ..Default::default()
        }))
    } else if config.classifier == "mlp" {
        Box::new(Mlp::new(MlpConfig {
            seed: config.seed,
            ..Default::default()
        }))
    } else {
        Box::new(RandomForest::new(ForestConfig {
            seed: config.seed,
            ..Default::default()
        }))
    };
    model.fit(train);
    let pred = model.predict_all(&eval.features);
    let m = gittables_ml::metrics::compute(&pred, &eval.labels, train.num_classes());
    (m.accuracy, m.macro_f1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gittables_annotate::{Annotation, TableAnnotations};
    use gittables_corpus::AnnotatedTable;
    use gittables_table::Table;

    fn labeled_corpus() -> Corpus {
        let mut c = Corpus::new("t");
        for i in 0..6 {
            let status_vals: Vec<&str> = if i % 2 == 0 {
                vec!["OPEN", "CLOSED"]
            } else {
                vec!["ACTIVE", "DONE"]
            };
            let t = Table::from_rows(
                format!("t{i}"),
                &["status", "name"],
                &[
                    &[status_vals[0], "Alice Smith"],
                    &[status_vals[1], "Bob Jones"],
                ],
            )
            .unwrap();
            let mut at = AnnotatedTable::new(t);
            at.syntactic_schema = TableAnnotations {
                annotations: vec![
                    Annotation {
                        column: 0,
                        type_id: 0,
                        label: "status".into(),
                        ontology: OntologyKind::SchemaOrg,
                        method: Method::Syntactic,
                        similarity: 1.0,
                    },
                    Annotation {
                        column: 1,
                        type_id: 1,
                        label: "name".into(),
                        ontology: OntologyKind::SchemaOrg,
                        method: Method::Syntactic,
                        similarity: 1.0,
                    },
                ],
                num_columns: 2,
            };
            c.push(at);
        }
        c
    }

    #[test]
    fn dataset_built_with_dedup() {
        let cfg = TypeDetectionConfig {
            types: vec!["status".into(), "name".into()],
            per_type: 100,
            ..Default::default()
        };
        let ex = FeatureExtractor::default();
        let d = build_type_dataset(&labeled_corpus(), &cfg, &ex);
        // 2 distinct status columns (others dedup away) + 1 distinct name col.
        assert_eq!(d.len(), 3, "{:?}", d.labels);
        assert_eq!(d.dim(), gittables_ml::FEATURE_COUNT);
    }

    #[test]
    fn per_type_cap_respected() {
        let cfg = TypeDetectionConfig {
            types: vec!["status".into(), "name".into()],
            per_type: 1,
            ..Default::default()
        };
        let ex = FeatureExtractor::default();
        let d = build_type_dataset(&labeled_corpus(), &cfg, &ex);
        assert!(d.len() <= 2);
    }

    #[test]
    fn webtable_dataset() {
        let gen = gittables_synth::WebTableGenerator::new(1);
        let tables = gen.generate_many(300);
        let cfg = TypeDetectionConfig {
            types: vec!["name".into(), "status".into()],
            per_type: 20,
            ..Default::default()
        };
        let ex = FeatureExtractor::default();
        let d = build_webtable_type_dataset(&tables, &cfg, &ex);
        assert!(d.len() > 10, "{}", d.len());
    }

    #[test]
    fn cross_eval_runs() {
        let cfg = TypeDetectionConfig {
            types: vec!["status".into(), "name".into()],
            per_type: 100,
            folds: 2,
            ..Default::default()
        };
        let ex = FeatureExtractor::default();
        let d = build_type_dataset(&labeled_corpus(), &cfg, &ex);
        let (acc, f1) = train_eval_cross(&d, &d, &cfg);
        assert!(acc > 0.5);
        assert!(f1 > 0.0);
    }
}
