//! A ranked data-search benchmark over the corpus (§5.3's "to develop this
//! benchmark dataset further, one could collect a set of tables and queries
//! and rank the most relevant tables for each query").
//!
//! Queries are associated with a content [`Domain`]; a table is *relevant* to
//! a query when its originating topic belongs to that domain. Rankings from
//! [`DataSearch`] are scored with precision@k and nDCG@k.

use gittables_corpus::Corpus;
use gittables_synth::schema::Domain;
use gittables_synth::wordnet;
use serde::{Deserialize, Serialize};

use crate::apps::search::DataSearch;

/// A benchmark query with its relevant domain.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchmarkQuery {
    /// Natural-language query text.
    pub text: String,
    /// The domain whose tables count as relevant.
    pub domain: Domain,
}

/// The built-in query set, one or more per domain.
#[must_use]
pub fn default_queries() -> Vec<BenchmarkQuery> {
    let q = |text: &str, domain| BenchmarkQuery {
        text: text.to_string(),
        domain,
    };
    vec![
        q("status and sales amount per product", Domain::Business),
        q(
            "orders with price quantity and shipping status",
            Domain::Business,
        ),
        q("employee names salaries and departments", Domain::People),
        q(
            "species observed with organism group and country",
            Domain::Science,
        ),
        q(
            "measurement values with temperature and pressure",
            Domain::Science,
        ),
        q("songs albums and artists with ratings", Domain::Media),
        q("match scores per team and season", Domain::Sports),
        q(
            "event bookings with venue date and capacity",
            Domain::Events,
        ),
        q("requests errors latency and cpu per host", Domain::Tech),
        q("cities with population latitude and longitude", Domain::Geo),
    ]
}

/// Result of one query's evaluation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryScore {
    /// The query text.
    pub query: String,
    /// Precision@k.
    pub precision_at_k: f64,
    /// Normalized discounted cumulative gain at k.
    pub ndcg_at_k: f64,
    /// Number of relevant tables in the corpus.
    pub relevant_total: usize,
}

/// Maps a table's topic to its domain via the WordNet inventory.
fn topic_domain(topic: &str) -> Option<Domain> {
    wordnet::topics()
        .into_iter()
        .find(|t| t.noun == topic)
        .map(|t| t.domain)
}

/// Evaluates the search engine on the query set with cutoff `k`.
#[must_use]
pub fn evaluate_search(
    corpus: &Corpus,
    search: &DataSearch,
    queries: &[BenchmarkQuery],
    k: usize,
) -> Vec<QueryScore> {
    // Precompute each table's domain.
    let domains: Vec<Option<Domain>> = corpus
        .tables
        .iter()
        .map(|t| topic_domain(&t.table.provenance().topic))
        .collect();
    queries
        .iter()
        .map(|q| {
            let relevant_total = domains.iter().filter(|d| **d == Some(q.domain)).count();
            let hits = search.search(&q.text, k);
            let rels: Vec<bool> = hits
                .iter()
                .map(|h| domains[h.table_index] == Some(q.domain))
                .collect();
            let hit_count = rels.iter().filter(|r| **r).count();
            let precision_at_k = hit_count as f64 / k.max(1) as f64;
            // DCG with binary gains.
            let dcg: f64 = rels
                .iter()
                .enumerate()
                .map(|(i, &r)| {
                    if r {
                        1.0 / ((i as f64 + 2.0).log2())
                    } else {
                        0.0
                    }
                })
                .sum();
            let ideal_hits = relevant_total.min(k);
            let idcg: f64 = (0..ideal_hits)
                .map(|i| 1.0 / ((i as f64 + 2.0).log2()))
                .sum();
            let ndcg_at_k = if idcg > 0.0 { dcg / idcg } else { 0.0 };
            QueryScore {
                query: q.text.clone(),
                precision_at_k,
                ndcg_at_k,
                relevant_total,
            }
        })
        .collect()
}

/// Mean nDCG over query scores (0 for an empty set).
#[must_use]
pub fn mean_ndcg(scores: &[QueryScore]) -> f64 {
    if scores.is_empty() {
        return 0.0;
    }
    scores.iter().map(|s| s.ndcg_at_k).sum::<f64>() / scores.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Pipeline, PipelineConfig};
    use gittables_githost::GitHost;
    use gittables_synth::wordnet::Topic;

    fn corpus() -> Corpus {
        // Mixed-domain topics so every query has relevant tables.
        let topics = vec![
            Topic {
                noun: "order".into(),
                domain: Domain::Business,
            },
            Topic {
                noun: "species".into(),
                domain: Domain::Science,
            },
            Topic {
                noun: "team".into(),
                domain: Domain::Sports,
            },
        ];
        let config = PipelineConfig {
            topics,
            repos_per_topic: 10,
            ..PipelineConfig::small(77)
        };
        let pipeline = Pipeline::new(config);
        let host = GitHost::new();
        pipeline.populate_host(&host);
        pipeline.run(&host).0
    }

    #[test]
    fn search_beats_chance_on_domain_queries() {
        let c = corpus();
        let ds = DataSearch::build(&c);
        let queries = vec![
            BenchmarkQuery {
                text: "orders with price quantity and shipping status".into(),
                domain: Domain::Business,
            },
            BenchmarkQuery {
                text: "species observed with organism group and country".into(),
                domain: Domain::Science,
            },
        ];
        let scores = evaluate_search(&c, &ds, &queries, 10);
        // Chance precision = share of that domain's tables in the corpus
        // (≈1/3 here); search should beat it clearly on average.
        let mean_p: f64 =
            scores.iter().map(|s| s.precision_at_k).sum::<f64>() / scores.len() as f64;
        assert!(mean_p > 0.45, "mean precision {mean_p}");
        assert!(mean_ndcg(&scores) > 0.4, "ndcg {}", mean_ndcg(&scores));
    }

    #[test]
    fn ndcg_bounds() {
        let c = corpus();
        let ds = DataSearch::build(&c);
        let scores = evaluate_search(&c, &ds, &default_queries(), 5);
        for s in &scores {
            assert!((0.0..=1.0).contains(&s.ndcg_at_k), "{s:?}");
            assert!((0.0..=1.0).contains(&s.precision_at_k));
        }
        assert_eq!(mean_ndcg(&[]), 0.0);
    }

    #[test]
    fn topic_domain_lookup() {
        assert_eq!(topic_domain("order"), Some(Domain::Business));
        assert_eq!(topic_domain("species"), Some(Domain::Science));
        assert_eq!(topic_domain("notatopic"), None);
    }
}
