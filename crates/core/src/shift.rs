//! Data-shift detection between GitTables and web-table corpora (§4.2).
//!
//! The paper samples 5 K deduplicated columns from each corpus, extracts the
//! Sherlock features, and trains a Random Forest *domain classifier* to tell
//! which corpus a column came from; 93 % (±0.04) 10-fold accuracy shows the
//! distributions differ.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashSet;
use std::hash::{Hash, Hasher};

use gittables_corpus::Corpus;
use gittables_ml::{
    cross_validate, CvReport, Dataset, FeatureExtractor, ForestConfig, RandomForest,
};
use gittables_synth::WebTableGenerator;

/// Samples up to `n` deduplicated column feature vectors from a corpus.
#[must_use]
pub fn sample_corpus_columns(
    corpus: &Corpus,
    n: usize,
    extractor: &FeatureExtractor,
) -> Vec<Vec<f32>> {
    let mut seen = HashSet::new();
    let mut out = Vec::with_capacity(n);
    'outer: for t in &corpus.tables {
        for col in t.table.columns() {
            if out.len() >= n {
                break 'outer;
            }
            if col.is_empty() {
                continue;
            }
            let mut h = DefaultHasher::new();
            for v in col.values().iter().take(16) {
                v.hash(&mut h);
            }
            col.len().hash(&mut h);
            if !seen.insert(h.finish()) {
                continue;
            }
            out.push(extractor.extract(col.values()));
        }
    }
    out
}

/// Samples up to `n` deduplicated column feature vectors from generated web
/// tables.
#[must_use]
pub fn sample_webtable_columns(seed: u64, n: usize, extractor: &FeatureExtractor) -> Vec<Vec<f32>> {
    let gen = WebTableGenerator::new(seed);
    let mut seen = HashSet::new();
    let mut out = Vec::with_capacity(n);
    let mut i = 0usize;
    while out.len() < n && i < n * 4 {
        let t = gen.generate(i);
        i += 1;
        for (ci, _) in t.header.iter().enumerate() {
            if out.len() >= n {
                break;
            }
            let values: Vec<String> = t.rows.iter().map(|r| r[ci].clone()).collect();
            let mut h = DefaultHasher::new();
            for v in values.iter().take(16) {
                v.hash(&mut h);
            }
            if !seen.insert(h.finish()) {
                continue;
            }
            out.push(extractor.extract(&values));
        }
    }
    out
}

/// Runs the domain-classifier experiment: class 0 = GitTables column,
/// class 1 = web-table column; k-fold CV with a Random Forest.
#[must_use]
pub fn domain_shift_experiment(
    corpus: &Corpus,
    columns_per_corpus: usize,
    folds: usize,
    seed: u64,
) -> CvReport {
    let extractor = FeatureExtractor::default();
    let git = sample_corpus_columns(corpus, columns_per_corpus, &extractor);
    let web = sample_webtable_columns(seed ^ 0xdead_beef, columns_per_corpus, &extractor);
    let mut data = Dataset::new(
        Vec::new(),
        Vec::new(),
        vec!["gittables".to_string(), "webtables".to_string()],
    );
    for f in git {
        data.push(f, 0);
    }
    for f in web {
        data.push(f, 1);
    }
    cross_validate(&data, folds, seed, || {
        RandomForest::new(ForestConfig {
            seed,
            ..Default::default()
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Pipeline, PipelineConfig};
    use gittables_githost::GitHost;

    #[test]
    fn domain_classifier_separates_corpora() {
        let pipeline = Pipeline::new(PipelineConfig::small(21));
        let host = GitHost::new();
        pipeline.populate_host(&host);
        let (corpus, _) = pipeline.run(&host);
        let report = domain_shift_experiment(&corpus, 120, 3, 1);
        // The paper reports 93 %; with a small sample we accept anything
        // clearly above chance.
        assert!(
            report.mean_accuracy > 0.75,
            "accuracy {}",
            report.mean_accuracy
        );
    }

    #[test]
    fn sampling_dedups() {
        let pipeline = Pipeline::new(PipelineConfig::small(22));
        let host = GitHost::new();
        pipeline.populate_host(&host);
        let (corpus, _) = pipeline.run(&host);
        let ex = FeatureExtractor::default();
        let a = sample_corpus_columns(&corpus, 50, &ex);
        assert!(a.len() <= 50);
        assert!(!a.is_empty());
        let w = sample_webtable_columns(3, 40, &ex);
        assert_eq!(w.len(), 40);
    }
}
