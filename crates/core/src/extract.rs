//! CSV extraction from the (simulated) GitHub search API (§3.2).
//!
//! For each topic the extractor:
//!
//! 1. issues the *initial topic query* `q="<topic>" extension:csv` and reads
//!    the initial response size;
//! 2. if the count exceeds the 1 000-result cap, *segments* the query with
//!    `size:` qualifiers — ranges are split recursively until each returns at
//!    most the cap (the paper generates size sequences "proportional to the
//!    number of files in the initial response"; recursive bisection yields
//!    exactly such a sequence adaptively);
//! 3. traverses the paginated responses of every (segmented) query;
//! 4. fetches the raw contents behind each URL.

use gittables_githost::{GitHost, Query, SearchResult};
use serde::{Deserialize, Serialize};

/// Maximum file size the API serves (438 kB, §3.2).
const MAX_FILE_SIZE: usize = 438 * 1024;

/// A fetched raw CSV file with its provenance.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RawCsvFile {
    /// Repository `owner/name`.
    pub repository: String,
    /// Path inside the repository.
    pub path: String,
    /// The topic whose query retrieved the file.
    pub topic: String,
    /// Repository license.
    pub license: Option<String>,
    /// Raw contents.
    pub content: String,
}

/// Statistics of one topic's extraction.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExtractStats {
    /// Initial response size of the unsegmented query.
    pub initial_count: usize,
    /// Number of segmented queries executed (1 if unsegmented).
    pub queries_executed: usize,
    /// URLs collected (deduplicated).
    pub urls: usize,
    /// Files fetched successfully.
    pub fetched: usize,
}

/// Order-preserving first-occurrence mask: `mask[i]` is true iff item `i`
/// is the first item with its key. Computed from one sorted index
/// permutation over *borrowed* keys — unlike a `HashSet<(String, String)>`
/// probe, no key is ever cloned or allocated.
pub fn first_occurrence_mask<'a, T, K: Ord + 'a>(
    items: &'a [T],
    key: impl Fn(&'a T) -> K,
) -> Vec<bool> {
    let mut idx: Vec<usize> = (0..items.len()).collect();
    idx.sort_by(|&a, &b| key(&items[a]).cmp(&key(&items[b])).then(a.cmp(&b)));
    let mut keep = vec![false; items.len()];
    let mut prev: Option<usize> = None;
    for &i in &idx {
        if prev.is_none_or(|p| key(&items[p]) != key(&items[i])) {
            keep[i] = true;
        }
        prev = Some(i);
    }
    keep
}

/// Recursively collects size ranges whose result counts fit under `cap`.
fn segment(
    api: &gittables_githost::SearchApi<'_>,
    base: &Query,
    lo: usize,
    hi: usize,
    cap: usize,
    out: &mut Vec<(usize, usize)>,
    queries: &mut usize,
) {
    let q = base.clone().with_size(lo, hi);
    *queries += 1;
    let count = api.count(&q);
    if count == 0 {
        return;
    }
    if count <= cap || lo >= hi {
        out.push((lo, hi));
        return;
    }
    let mid = lo + (hi - lo) / 2;
    segment(api, base, lo, mid, cap, out, queries);
    segment(api, base, mid + 1, hi, cap, out, queries);
}

/// Extracts all CSV files for one topic. Returns the files and stats.
#[must_use]
pub fn extract_topic(host: &GitHost, topic: &str, cap: usize) -> (Vec<RawCsvFile>, ExtractStats) {
    let api = host.search_api();
    let base = Query::csv(topic);
    let initial_count = api.count(&base);
    let mut stats = ExtractStats {
        initial_count,
        queries_executed: 1,
        ..Default::default()
    };

    let results: Vec<SearchResult> = if initial_count == 0 {
        Vec::new()
    } else if initial_count <= cap {
        api.search_all_pages(&base)
    } else {
        let mut ranges = Vec::new();
        let mut queries = 0usize;
        segment(
            &api,
            &base,
            0,
            MAX_FILE_SIZE,
            cap,
            &mut ranges,
            &mut queries,
        );
        stats.queries_executed += queries;
        let mut all = Vec::new();
        for (lo, hi) in ranges {
            all.extend(api.search_all_pages(&base.clone().with_size(lo, hi)));
        }
        all
    };

    // Deduplicate URLs (a file can match several size segments at range
    // boundaries only if ranges overlapped; they don't — but dedup anyway
    // for safety and cross-page duplicates). The mask keys on borrowed
    // `&str`s, so deduplication allocates nothing per result.
    let keep = first_occurrence_mask(&results, |r| (r.repository.as_str(), r.path.as_str()));
    let mut files = Vec::new();
    for (r, is_first) in results.into_iter().zip(keep) {
        if !is_first {
            continue;
        }
        stats.urls += 1;
        if let Some(content) = host.fetch(&r.repository, &r.path) {
            stats.fetched += 1;
            files.push(RawCsvFile {
                repository: r.repository,
                path: r.path,
                topic: topic.to_string(),
                license: r.license,
                content,
            });
        }
    }
    (files, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gittables_githost::{RepoFile, Repository};

    fn host(n: usize) -> GitHost {
        let host = GitHost::new();
        for i in 0..n {
            host.add_repository(Repository {
                full_name: format!("u{i}/r{i}"),
                license: Some("mit".into()),
                fork: false,
                files: vec![RepoFile::new(
                    "data.csv",
                    format!("id,pad\n{i},{}\n", "y".repeat(i % 97)),
                )],
            });
        }
        host
    }

    #[test]
    fn small_topic_single_query() {
        let h = host(50);
        let (files, stats) = extract_topic(&h, "id", 1000);
        assert_eq!(files.len(), 50);
        assert_eq!(stats.initial_count, 50);
        assert_eq!(stats.queries_executed, 1);
        assert_eq!(stats.fetched, 50);
    }

    #[test]
    fn large_topic_segmented_recovers_all() {
        let h = host(2500);
        let (files, stats) = extract_topic(&h, "id", 1000);
        assert_eq!(stats.initial_count, 2500);
        assert!(stats.queries_executed > 1, "should segment");
        assert_eq!(files.len(), 2500, "segmentation must recover past the cap");
    }

    #[test]
    fn unknown_topic_empty() {
        let h = host(10);
        let (files, stats) = extract_topic(&h, "nonexistenttopicz", 1000);
        assert!(files.is_empty());
        assert_eq!(stats.initial_count, 0);
    }

    #[test]
    fn first_occurrence_mask_keeps_order() {
        let items = vec![("a", 1), ("b", 1), ("a", 2), ("c", 1), ("b", 2), ("a", 3)];
        let mask = first_occurrence_mask(&items, |it| it.0);
        assert_eq!(mask, vec![true, true, false, true, false, false]);
        assert!(first_occurrence_mask::<(&str, i32), &str>(&[], |it| it.0).is_empty());
    }

    #[test]
    fn provenance_carried() {
        let h = host(3);
        let (files, _) = extract_topic(&h, "id", 1000);
        assert_eq!(files[0].topic, "id");
        assert_eq!(files[0].license.as_deref(), Some("mit"));
        assert!(files[0].content.starts_with("id,pad"));
    }
}
