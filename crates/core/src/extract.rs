//! File extraction from the (simulated) GitHub search API (§3.2).
//!
//! For each topic and file kind (CSV, SQL dump) the extractor:
//!
//! 1. issues the *initial topic query* `q="<topic>" extension:<ext>` and
//!    reads the initial response size;
//! 2. if the count exceeds the 1 000-result cap, *segments* the query with
//!    `size:` qualifiers — ranges are split recursively until each returns at
//!    most the cap (the paper generates size sequences "proportional to the
//!    number of files in the initial response"; recursive bisection yields
//!    exactly such a sequence adaptively);
//! 3. traverses the paginated responses of every (segmented) query;
//! 4. fetches the raw contents behind each URL.

use std::collections::HashMap;

use gittables_githost::{CodeHost, FileKind, HostError, Query, SearchResult};
use serde::{Deserialize, Serialize};

use crate::config::FaultPolicy;
use crate::pipeline::Quarantined;

/// Maximum file size the API serves (438 kB, §3.2).
const MAX_FILE_SIZE: usize = 438 * 1024;

/// A fetched raw tabular file (CSV or SQL dump) with its provenance.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RawCsvFile {
    /// Repository `owner/name`.
    pub repository: String,
    /// Path inside the repository.
    pub path: String,
    /// The topic whose query retrieved the file.
    pub topic: String,
    /// Repository license.
    pub license: Option<String>,
    /// Raw contents.
    pub content: String,
    /// Which parser the file dispatches to (classified from the path, so
    /// it holds regardless of which kind's query surfaced the file).
    pub kind: FileKind,
}

/// Statistics of one topic's extraction.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExtractStats {
    /// Initial response size of the unsegmented query.
    pub initial_count: usize,
    /// Number of segmented queries executed (1 if unsegmented).
    pub queries_executed: usize,
    /// URLs collected (deduplicated).
    pub urls: usize,
    /// Files fetched successfully.
    pub fetched: usize,
}

/// Order-preserving first-occurrence mask: `mask[i]` is true iff item `i`
/// is the first item with its key. Computed from one sorted index
/// permutation over *borrowed* keys — unlike a `HashSet<(String, String)>`
/// probe, no key is ever cloned or allocated.
pub fn first_occurrence_mask<'a, T, K: Ord + 'a>(
    items: &'a [T],
    key: impl Fn(&'a T) -> K,
) -> Vec<bool> {
    let mut idx: Vec<usize> = (0..items.len()).collect();
    idx.sort_by(|&a, &b| key(&items[a]).cmp(&key(&items[b])).then(a.cmp(&b)));
    let mut keep = vec![false; items.len()];
    let mut prev: Option<usize> = None;
    for &i in &idx {
        if prev.is_none_or(|p| key(&items[p]) != key(&items[i])) {
            keep[i] = true;
        }
        prev = Some(i);
    }
    keep
}

/// Per-run fault-handling state threaded through extraction: the retry
/// policy, accumulated retry/backoff accounting, per-repository retry
/// budgets, and the quarantine lists. One session spans every topic of a
/// pipeline run, so budgets and quarantines are repository-global.
#[derive(Debug)]
pub(crate) struct FaultSession<'a> {
    policy: &'a FaultPolicy,
    /// Seed of the deterministic backoff jitter.
    seed: u64,
    /// Host-operation retries performed.
    pub retries: usize,
    /// Total backoff scheduled, milliseconds.
    pub backoff_ms: u64,
    /// Search operations that failed even after retries (the topic is
    /// degraded, not the run).
    pub queries_failed: usize,
    /// Retries consumed per repository.
    budget_used: HashMap<String, u32>,
    /// Repositories quarantined this session, with reasons.
    pub quarantined_repos: Vec<Quarantined>,
    /// Files that triggered a quarantine, with reasons.
    pub quarantined_files: Vec<Quarantined>,
    /// Repositories to skip outright (sticky quarantine from a previous
    /// store-backed run), with the recorded reason.
    skip: HashMap<String, String>,
}

impl<'a> FaultSession<'a> {
    pub(crate) fn new(policy: &'a FaultPolicy, seed: u64, skip: HashMap<String, String>) -> Self {
        FaultSession {
            policy,
            seed,
            retries: 0,
            backoff_ms: 0,
            queries_failed: 0,
            budget_used: HashMap::new(),
            quarantined_repos: Vec::new(),
            quarantined_files: Vec::new(),
            skip,
        }
    }

    fn is_quarantined(&self, repo: &str) -> bool {
        self.quarantined_repos.iter().any(|q| q.name == repo)
    }

    fn quarantine_repo(&mut self, repo: &str, reason: &str) {
        if !self.is_quarantined(repo) {
            self.quarantined_repos.push(Quarantined {
                name: repo.to_string(),
                reason: reason.to_string(),
            });
        }
    }

    /// Schedules (and optionally sleeps) one jittered exponential-backoff
    /// delay: `base * 2^(attempt-1)` capped at `backoff_max_ms`, jittered
    /// deterministically into `[delay/2, delay]` by `(seed, key,
    /// attempt)`.
    fn backoff(&mut self, key: &str, attempt: u32) {
        self.retries += 1;
        let base = self.policy.backoff_base_ms;
        if base == 0 {
            return;
        }
        let exp = base
            .saturating_mul(1u64 << u64::from(attempt.saturating_sub(1)).min(16))
            .min(self.policy.backoff_max_ms.max(base));
        let mut h = self.seed ^ u64::from(attempt).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        for b in key.bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
        let ms = exp / 2 + h % (exp / 2 + 1);
        self.backoff_ms += ms;
        if self.policy.sleep && ms > 0 {
            // Interruption-safe: the crawl daemon installs SIGTERM/SIGINT
            // handlers, and a plain sleep cut short by EINTR would make
            // backoff delays silently shrink under signal load.
            gittables_githost::sleep_full(std::time::Duration::from_millis(ms));
        }
    }

    /// Runs a topic-level search operation, retrying transient faults up
    /// to the per-operation attempt limit. `None` when the operation
    /// ultimately failed — the caller degrades (skips the query) instead
    /// of aborting the run.
    fn query<T>(&mut self, key: &str, mut op: impl FnMut() -> Result<T, HostError>) -> Option<T> {
        let mut attempt = 1u32;
        loop {
            match op() {
                Ok(v) => return Some(v),
                Err(e) if e.is_transient() && attempt < self.policy.max_attempts => {
                    self.backoff(key, attempt);
                    attempt += 1;
                }
                Err(_) => {
                    self.queries_failed += 1;
                    return None;
                }
            }
        }
    }

    /// Takes one retry from `repo`'s budget; `false` when exhausted.
    fn take_budget(&mut self, repo: &str) -> bool {
        let used = self.budget_used.entry(repo.to_string()).or_insert(0);
        if *used >= self.policy.repo_retry_budget {
            return false;
        }
        *used += 1;
        true
    }
}

/// Outcome of fetching one search result under the fault policy.
enum FetchOutcome {
    /// Full contents, verified against the advertised size.
    Fetched(String),
    /// The host no longer has the file — skipped, as before faults.
    Missing,
    /// The file's repository is quarantined (now or earlier); drop it.
    Quarantined,
}

/// Fetches one file with transient-retry and quarantine handling. The
/// advertised search-result size is the truncation oracle: a shorter
/// download is a cut-off transfer and retried like any transient fault.
fn fetch_one(host: &dyn CodeHost, r: &SearchResult, session: &mut FaultSession) -> FetchOutcome {
    if session.is_quarantined(&r.repository) || session.skip.contains_key(&r.repository) {
        if let Some(reason) = session.skip.get(&r.repository).cloned() {
            session.quarantine_repo(&r.repository, &reason);
        }
        return FetchOutcome::Quarantined;
    }
    let key = format!("fetch:{}/{}", r.repository, r.path);
    let mut attempt = 1u32;
    loop {
        match host.fetch(&r.repository, &r.path) {
            Ok(Some(content)) if content.len() == r.size => return FetchOutcome::Fetched(content),
            Ok(None) => return FetchOutcome::Missing,
            // Truncated download or transient error: retry within both
            // the per-operation attempt limit and the repo budget.
            Ok(Some(_))
            | Err(HostError::Timeout | HostError::RateLimited | HostError::ServerError(_)) => {
                if attempt >= session.policy.max_attempts {
                    session.quarantined_files.push(Quarantined {
                        name: format!("{}/{}", r.repository, r.path),
                        reason: "retry attempts exhausted".to_string(),
                    });
                    session.quarantine_repo(&r.repository, "retry attempts exhausted");
                    return FetchOutcome::Quarantined;
                }
                if !session.take_budget(&r.repository) {
                    session.quarantined_files.push(Quarantined {
                        name: format!("{}/{}", r.repository, r.path),
                        reason: "repository retry budget exhausted".to_string(),
                    });
                    session.quarantine_repo(&r.repository, "retry budget exhausted");
                    return FetchOutcome::Quarantined;
                }
                session.backoff(&key, attempt);
                attempt += 1;
            }
            Err(HostError::CorruptContent { .. }) => {
                session.quarantined_files.push(Quarantined {
                    name: format!("{}/{}", r.repository, r.path),
                    reason: "corrupt content".to_string(),
                });
                session.quarantine_repo(&r.repository, "corrupt content");
                return FetchOutcome::Quarantined;
            }
        }
    }
}

/// Recursively collects size ranges whose result counts fit under `cap`.
fn segment(
    host: &dyn CodeHost,
    session: &mut FaultSession,
    base: &Query,
    (lo, hi): (usize, usize),
    cap: usize,
    out: &mut Vec<(usize, usize)>,
    queries: &mut usize,
) {
    let q = base.clone().with_size(lo, hi);
    *queries += 1;
    let count = session
        .query(&format!("count:{q}"), || host.count(&q))
        .unwrap_or(0);
    if count == 0 {
        return;
    }
    if count <= cap || lo >= hi {
        out.push((lo, hi));
        return;
    }
    let mid = lo + (hi - lo) / 2;
    segment(host, session, base, (lo, mid), cap, out, queries);
    segment(host, session, base, (mid + 1, hi), cap, out, queries);
}

/// Traverses all pages of `query` with transient-retry; an ultimately
/// failed page request truncates the traversal (degraded, recorded in
/// the session) rather than aborting.
fn search_pages(
    host: &dyn CodeHost,
    query: &Query,
    session: &mut FaultSession,
) -> Vec<SearchResult> {
    let mut out = Vec::new();
    let mut page = 1usize;
    loop {
        let key = format!("search:{query}:p{page}");
        let Some(resp) = session.query(&key, || host.search(query, page)) else {
            break;
        };
        let done = !resp.has_next_page;
        out.extend(resp.items);
        if done {
            break;
        }
        page += 1;
    }
    out
}

/// Extracts all CSV files for one topic. Returns the files and stats.
/// Infallible-host convenience wrapper around
/// [`extract_topic_session`] with the default fault policy and the CSV
/// file kind.
#[must_use]
pub fn extract_topic(
    host: &dyn CodeHost,
    topic: &str,
    cap: usize,
) -> (Vec<RawCsvFile>, ExtractStats) {
    let policy = FaultPolicy::default();
    let mut session = FaultSession::new(&policy, 0, HashMap::new());
    extract_topic_session(host, topic, FileKind::Csv, cap, &mut session)
}

/// Extracts all files of one `kind` for one topic under `session`'s fault
/// policy: transient faults are retried with backoff, truncated downloads
/// are detected against the advertised size and retried, and permanent
/// faults or exhausted budgets quarantine the repository (recorded in
/// the session) while extraction keeps going.
pub(crate) fn extract_topic_session(
    host: &dyn CodeHost,
    topic: &str,
    kind: FileKind,
    cap: usize,
    session: &mut FaultSession,
) -> (Vec<RawCsvFile>, ExtractStats) {
    let base = Query::for_kind(topic, kind);
    let initial_count = session
        .query(&format!("count:{base}"), || host.count(&base))
        .unwrap_or(0);
    let mut stats = ExtractStats {
        initial_count,
        queries_executed: 1,
        ..Default::default()
    };

    let results: Vec<SearchResult> = if initial_count == 0 {
        Vec::new()
    } else if initial_count <= cap {
        search_pages(host, &base, session)
    } else {
        let mut ranges = Vec::new();
        let mut queries = 0usize;
        segment(
            host,
            session,
            &base,
            (0, MAX_FILE_SIZE),
            cap,
            &mut ranges,
            &mut queries,
        );
        stats.queries_executed += queries;
        let mut all = Vec::new();
        for (lo, hi) in ranges {
            all.extend(search_pages(host, &base.clone().with_size(lo, hi), session));
        }
        all
    };

    // Deduplicate URLs (a file can match several size segments at range
    // boundaries only if ranges overlapped; they don't — but dedup anyway
    // for safety and cross-page duplicates). The mask keys on borrowed
    // `&str`s, so deduplication allocates nothing per result.
    let keep = first_occurrence_mask(&results, |r| (r.repository.as_str(), r.path.as_str()));
    let mut files = Vec::new();
    for (r, is_first) in results.into_iter().zip(keep) {
        if !is_first {
            continue;
        }
        stats.urls += 1;
        match fetch_one(host, &r, session) {
            FetchOutcome::Fetched(content) => {
                stats.fetched += 1;
                let kind = FileKind::from_path(&r.path);
                files.push(RawCsvFile {
                    repository: r.repository,
                    path: r.path,
                    topic: topic.to_string(),
                    license: r.license,
                    content,
                    kind,
                });
            }
            FetchOutcome::Missing | FetchOutcome::Quarantined => {}
        }
    }
    (files, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gittables_githost::{GitHost, RepoFile, Repository};

    fn host(n: usize) -> GitHost {
        let host = GitHost::new();
        for i in 0..n {
            host.add_repository(Repository {
                full_name: format!("u{i}/r{i}"),
                license: Some("mit".into()),
                fork: false,
                files: vec![RepoFile::new(
                    "data.csv",
                    format!("id,pad\n{i},{}\n", "y".repeat(i % 97)),
                )],
            });
        }
        host
    }

    #[test]
    fn small_topic_single_query() {
        let h = host(50);
        let (files, stats) = extract_topic(&h, "id", 1000);
        assert_eq!(files.len(), 50);
        assert_eq!(stats.initial_count, 50);
        assert_eq!(stats.queries_executed, 1);
        assert_eq!(stats.fetched, 50);
    }

    #[test]
    fn large_topic_segmented_recovers_all() {
        let h = host(2500);
        let (files, stats) = extract_topic(&h, "id", 1000);
        assert_eq!(stats.initial_count, 2500);
        assert!(stats.queries_executed > 1, "should segment");
        assert_eq!(files.len(), 2500, "segmentation must recover past the cap");
    }

    #[test]
    fn unknown_topic_empty() {
        let h = host(10);
        let (files, stats) = extract_topic(&h, "nonexistenttopicz", 1000);
        assert!(files.is_empty());
        assert_eq!(stats.initial_count, 0);
    }

    #[test]
    fn first_occurrence_mask_keeps_order() {
        let items = vec![("a", 1), ("b", 1), ("a", 2), ("c", 1), ("b", 2), ("a", 3)];
        let mask = first_occurrence_mask(&items, |it| it.0);
        assert_eq!(mask, vec![true, true, false, true, false, false]);
        assert!(first_occurrence_mask::<(&str, i32), &str>(&[], |it| it.0).is_empty());
    }

    #[test]
    fn provenance_carried() {
        let h = host(3);
        let (files, _) = extract_topic(&h, "id", 1000);
        assert_eq!(files[0].topic, "id");
        assert_eq!(files[0].license.as_deref(), Some("mit"));
        assert!(files[0].content.starts_with("id,pad"));
    }
}
