//! Offline stand-in for `serde_json`, speaking the local `serde` shim's
//! [`serde::Value`] data model. Supports the surface this workspace uses:
//! `to_writer`, `to_string`, `to_vec`, `from_str`, `from_reader`, `Error`.

use std::fmt;
use std::io;

use serde::{Deserialize, Serialize, Value};

/// JSON error (I/O, syntax, or data-shape mismatch).
#[derive(Debug)]
pub struct Error(pub String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<io::Error> for Error {
    fn from(e: io::Error) -> Self {
        Error(format!("io error: {e}"))
    }
}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.0)
    }
}

pub type Result<T> = std::result::Result<T, Error>;

// ------------------------------------------------------------------ printing

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // `{:?}` keeps a trailing `.0` on integral floats, which is
                // still valid JSON and preserves float-ness on re-parse.
                out.push_str(&format!("{f:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => escape_into(s, out),
        Value::Seq(xs) => {
            out.push('[');
            for (i, x) in xs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(x, out);
            }
            out.push(']');
        }
        Value::Map(m) => {
            out.push('{');
            for (i, (k, x)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                escape_into(k, out);
                out.push(':');
                write_value(x, out);
            }
            out.push('}');
        }
    }
}

pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.serialize(), &mut out);
    Ok(out)
}

pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

pub fn to_writer<W: io::Write, T: Serialize + ?Sized>(mut writer: W, value: &T) -> Result<()> {
    writer.write_all(to_string(value)?.as_bytes())?;
    Ok(())
}

// ------------------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.keyword("null", Value::Null),
            Some(b't') => self.keyword("true", Value::Bool(true)),
            Some(b'f') => self.keyword("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn keyword(&mut self, kw: &str, v: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{kw}`")))
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let Some(esc) = self.peek() else {
                        return Err(self.err("dangling escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes.get(self.pos) == Some(&b'\\')
                                    && self.bytes.get(self.pos + 1) == Some(&b'u')
                                {
                                    let lo_hex = self
                                        .bytes
                                        .get(self.pos + 2..self.pos + 6)
                                        .ok_or_else(|| self.err("truncated surrogate"))?;
                                    let lo_hex = std::str::from_utf8(lo_hex)
                                        .map_err(|_| self.err("bad surrogate"))?;
                                    let lo = u32::from_str_radix(lo_hex, 16)
                                        .map_err(|_| self.err("bad surrogate"))?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    self.pos += 6;
                                    let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(combined)
                                        .ok_or_else(|| self.err("bad surrogate pair"))?
                                } else {
                                    return Err(self.err("lone surrogate"));
                                }
                            } else {
                                char::from_u32(cp).ok_or_else(|| self.err("bad codepoint"))?
                            };
                            out.push(c);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Bulk-copy the run of ordinary bytes up to the next
                    // `"` or `\` (both ASCII, so they can never split a
                    // multi-byte UTF-8 sequence). Validating only the run
                    // keeps parsing O(n) over the whole document.
                    let start = self.pos;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    let run = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    out.push_str(run);
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| self.err("invalid float"))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| self.err("invalid integer"))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| self.err("invalid integer"))
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(out));
        }
        loop {
            out.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(out));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(out));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            out.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(out));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

/// Parses a complete JSON document from bytes into the raw [`Value`] tree.
/// UTF-8 is validated lazily inside string parsing (see `parse_string`), so
/// there is no up-front whole-buffer scan.
fn parse_document(bytes: &[u8]) -> Result<Value> {
    let mut p = Parser { bytes, pos: 0 };
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

/// Parses a JSON string into the raw [`Value`] tree.
pub fn parse_value(s: &str) -> Result<Value> {
    parse_document(s.as_bytes())
}

pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    from_slice(s.as_bytes())
}

pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T> {
    Ok(T::deserialize(&parse_document(bytes)?)?)
}

pub fn from_reader<R: io::Read, T: Deserialize>(mut reader: R) -> Result<T> {
    let mut buf = Vec::new();
    reader.read_to_end(&mut buf)?;
    let value = parse_document(&buf)?;
    // Release the raw document before building T: peak memory becomes
    // max(document + value tree, value tree + T) instead of holding all
    // three at once — the win callers get from `from_reader` over reading
    // into their own long-lived buffer and calling `from_str`.
    drop(buf);
    Ok(T::deserialize(&value)?)
}
