//! Offline stand-in for `serde`.
//!
//! The workspace builds in a container without registry access, so this
//! crate supplies the minimal serde surface the codebase uses: the
//! `Serialize` / `Deserialize` traits (over a JSON-like [`Value`] tree),
//! derive macros re-exported from the sibling `serde_derive` shim, and
//! impls for the primitives and containers that appear in derived types.
//!
//! Maps serialize with keys sorted so output is deterministic regardless
//! of `HashMap` iteration order.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::hash::Hash;
use std::sync::Arc;

pub use serde_derive::{Deserialize, Serialize};

/// JSON-like data model shared by `Serialize` and `Deserialize`.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    UInt(u64),
    Float(f64),
    Str(String),
    Seq(Vec<Value>),
    Map(Vec<(String, Value)>),
}

impl Value {
    #[must_use]
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    #[must_use]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

/// Deserialization error.
#[derive(Debug, Clone)]
pub struct Error(pub String);

impl Error {
    #[must_use]
    pub fn expected(what: &str, context: &str) -> Self {
        Error(format!("expected {what} while deserializing {context}"))
    }

    #[must_use]
    pub fn unknown_variant(variant: &str, ty: &str) -> Self {
        Error(format!("unknown variant `{variant}` for {ty}"))
    }

    #[must_use]
    pub fn custom(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

pub trait Serialize {
    fn serialize(&self) -> Value;
}

pub trait Deserialize: Sized {
    fn deserialize(v: &Value) -> Result<Self, Error>;

    /// The value to use when a struct field is absent entirely. Only
    /// types that model absence (i.e. `Option`) return `Some`; for
    /// everything else a missing field is an error, matching real
    /// serde's `missing field` behavior.
    fn deserialize_missing() -> Option<Self> {
        None
    }
}

/// Looks up a struct field in a serialized map. Missing fields error,
/// except `Option` fields which treat absence as `None`.
pub fn de_field<T: Deserialize>(
    m: &[(String, Value)],
    name: &str,
    context: &str,
) -> Result<T, Error> {
    match m.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::deserialize(v),
        None => T::deserialize_missing()
            .ok_or_else(|| Error(format!("missing field `{name}` in {context}"))),
    }
}

// ---------------------------------------------------------------- primitives

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::expected("bool", "bool")),
        }
    }
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                #[allow(unused_comparisons)]
                if *self >= 0 {
                    Value::UInt(*self as u64)
                } else {
                    Value::Int(*self as i64)
                }
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::UInt(u) => <$t>::try_from(*u)
                        .map_err(|_| Error::custom(format!("integer {u} out of range for {}", stringify!($t)))),
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| Error::custom(format!("integer {i} out of range for {}", stringify!($t)))),
                    _ => Err(Error::expected("integer", stringify!($t))),
                }
            }
        }
    )*};
}

impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                if self.is_finite() {
                    Value::Float(f64::from(*self))
                } else {
                    // Mirrors serde_json: non-finite floats become null.
                    Value::Null
                }
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::UInt(u) => Ok(*u as $t),
                    Value::Int(i) => Ok(*i as $t),
                    Value::Null => Ok(<$t>::NAN),
                    _ => Err(Error::expected("number", stringify!($t))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::expected("string", "String")),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(Error::expected("single-char string", "char")),
        }
    }
}

// ---------------------------------------------------------------- containers

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(x) => x.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }

    fn deserialize_missing() -> Option<Self> {
        Some(None)
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(xs) if xs.len() == N => {
                let items: Vec<T> = xs.iter().map(T::deserialize).collect::<Result<_, _>>()?;
                items
                    .try_into()
                    .map_err(|_| Error::expected("fixed-size array", "array"))
            }
            _ => Err(Error::expected(&format!("sequence of length {N}"), "array")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(xs) => xs.iter().map(T::deserialize).collect(),
            _ => Err(Error::expected("sequence", "Vec")),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        T::deserialize(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Arc<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Deserialize> Deserialize for Arc<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        T::deserialize(v).map(Arc::new)
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident : $idx:tt),+)),+) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize(&self) -> Value {
                Value::Seq(vec![$(self.$idx.serialize()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Seq(xs) => {
                        let mut it = xs.iter();
                        Ok(($(
                            {
                                let _ = $idx;
                                $t::deserialize(it.next().ok_or_else(|| Error::expected("tuple element", "tuple"))?)?
                            },
                        )+))
                    }
                    _ => Err(Error::expected("sequence", "tuple")),
                }
            }
        }
    )+};
}

impl_tuple!((A: 0), (A: 0, B: 1), (A: 0, B: 1, C: 2));

/// Map keys must render to/from strings (JSON object keys).
pub trait MapKey: Sized {
    fn to_key(&self) -> String;
    fn from_key(s: &str) -> Result<Self, Error>;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(s: &str) -> Result<Self, Error> {
        Ok(s.to_string())
    }
}

macro_rules! impl_mapkey_int {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(s: &str) -> Result<Self, Error> {
                s.parse().map_err(|_| Error::custom(format!("bad integer map key `{s}`")))
            }
        }
    )*};
}

impl_mapkey_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: MapKey + Eq + Hash, V: Serialize> Serialize for HashMap<K, V> {
    fn serialize(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_key(), v.serialize()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl<K: MapKey + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Map(m) => m
                .iter()
                .map(|(k, v)| Ok((K::from_key(k)?, V::deserialize(v)?)))
                .collect(),
            _ => Err(Error::expected("map", "HashMap")),
        }
    }
}

impl<K: MapKey + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.serialize()))
                .collect(),
        )
    }
}

impl<K: MapKey + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Map(m) => m
                .iter()
                .map(|(k, v)| Ok((K::from_key(k)?, V::deserialize(v)?)))
                .collect(),
            _ => Err(Error::expected("map", "BTreeMap")),
        }
    }
}
