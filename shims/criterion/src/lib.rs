//! Offline stand-in for `criterion`.
//!
//! Provides the API surface the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `Bencher::iter`, `Throughput`,
//! `black_box`, and the `criterion_group!`/`criterion_main!` macros —
//! with a simple median-of-samples wall-clock measurement instead of
//! criterion's statistical machinery.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    #[must_use]
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
            throughput: None,
            _parent: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("");
        group.bench_function(id, f);
        group.finish();
        self
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                elapsed: Duration::ZERO,
                iters: 0,
            };
            f(&mut b);
            if b.iters > 0 {
                samples.push(b.elapsed.as_secs_f64() / b.iters as f64);
            }
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let median = samples.get(samples.len() / 2).copied().unwrap_or(0.0);
        let label = if self.name.is_empty() {
            id.to_string()
        } else {
            format!("{}/{id}", self.name)
        };
        let mut line = format!("bench {label:<50} {}", format_time(median));
        if let Some(t) = self.throughput {
            let (count, unit) = match t {
                Throughput::Elements(n) => (n, "elem/s"),
                Throughput::Bytes(n) => (n, "B/s"),
            };
            if median > 0.0 {
                line.push_str(&format!("  {:.3e} {unit}", count as f64 / median));
            }
        }
        println!("{line}");
        self
    }

    pub fn finish(&mut self) {}
}

fn format_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // One warm-up call, then a timed batch.
        black_box(f());
        let batch = 3u64;
        let start = Instant::now();
        for _ in 0..batch {
            black_box(f());
        }
        self.elapsed += start.elapsed();
        self.iters += batch;
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
