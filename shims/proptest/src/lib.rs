//! Offline stand-in for `proptest`.
//!
//! Supplies the subset this workspace's property tests use: the
//! `proptest!` macro, `prop_assert!`/`prop_assert_eq!`/`prop_assert_ne!`,
//! `Strategy` with `prop_map`, range/tuple/vec strategies, `any::<T>()`,
//! and `string::string_regex` over a small regex subset (literals,
//! escapes, character classes with ranges, groups, and `?`/`*`/`+`/
//! `{m}`/`{m,n}` repetition).
//!
//! Cases are generated from a deterministic per-test seed, and failures
//! report the case number and assertion message; there is no shrinking.

pub mod rng {
    /// SplitMix64: tiny, seedable, good enough for case generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        #[must_use]
        pub fn seed(seed: u64) -> Self {
            TestRng {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, n)`; `n` must be non-zero.
        pub fn below(&mut self, n: u64) -> u64 {
            self.next_u64() % n
        }

        /// Uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

pub mod strategy {
    use crate::rng::TestRng;

    pub trait Strategy {
        type Value;

        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<R, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> R,
        {
            Map { inner: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            (**self).new_value(rng)
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, R, F: Fn(S::Value) -> R> Strategy for Map<S, F> {
        type Value = R;

        fn new_value(&self, rng: &mut TestRng) -> R {
            (self.f)(self.inner.new_value(rng))
        }
    }

    macro_rules! impl_range_int {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = rng.next_u64() as u128 % span;
                    (self.start as i128 + v as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let v = rng.next_u64() as u128 % span;
                    (lo as i128 + v as i128) as $t
                }
            }
        )*};
    }

    impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_range_float {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    self.start + ((self.end - self.start) as f64 * rng.unit_f64()) as $t
                }
            }
        )*};
    }

    impl_range_float!(f32, f64);

    /// A `&str` is shorthand for `string_regex(s).unwrap()`.
    impl Strategy for str {
        type Value = String;

        fn new_value(&self, rng: &mut TestRng) -> String {
            crate::string::string_regex(self)
                .unwrap_or_else(|e| panic!("invalid regex strategy {self:?}: {e}"))
                .new_value(rng)
        }
    }

    macro_rules! impl_tuple {
        ($(($($s:ident),+)),+) => {$(
            #[allow(non_snake_case)]
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.new_value(rng),)+)
                }
            }
        )+};
    }

    impl_tuple!(
        (A),
        (A, B),
        (A, B, C),
        (A, B, C, D),
        (A, B, C, D, E),
        (A, B, C, D, E, F)
    );

    /// `any::<T>()` support.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    pub struct Any<T> {
        _marker: std::marker::PhantomData<T>,
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    #[must_use]
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: std::marker::PhantomData,
        }
    }
}

pub mod collection {
    use crate::rng::TestRng;
    use crate::strategy::Strategy;

    /// Vector length specification: `m..n`, `m..=n`, or an exact `n`.
    pub trait SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty vec size range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            let (lo, hi) = (*self.start(), *self.end());
            lo + rng.below((hi - lo + 1) as u64) as usize
        }
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.len.pick(rng);
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }

    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }
}

pub mod string {
    use crate::rng::TestRng;
    use crate::strategy::Strategy;

    /// Regex-subset AST node.
    #[derive(Debug, Clone)]
    enum Node {
        Lit(char),
        /// Inclusive character ranges, pre-expanded.
        Class(Vec<char>),
        Group(Vec<Node>),
        Rep(Box<Node>, usize, usize),
    }

    #[derive(Debug, Clone)]
    pub struct Error(pub String);

    impl std::fmt::Display for Error {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    impl std::error::Error for Error {}

    #[derive(Debug, Clone)]
    pub struct RegexGeneratorStrategy {
        seq: Vec<Node>,
    }

    impl Strategy for RegexGeneratorStrategy {
        type Value = String;

        fn new_value(&self, rng: &mut TestRng) -> String {
            let mut out = String::new();
            for node in &self.seq {
                emit(node, rng, &mut out);
            }
            out
        }
    }

    fn emit(node: &Node, rng: &mut TestRng, out: &mut String) {
        match node {
            Node::Lit(c) => out.push(*c),
            Node::Class(chars) => {
                let i = rng.below(chars.len() as u64) as usize;
                out.push(chars[i]);
            }
            Node::Group(seq) => {
                for n in seq {
                    emit(n, rng, out);
                }
            }
            Node::Rep(inner, lo, hi) => {
                let n = lo + rng.below((hi - lo + 1) as u64) as usize;
                for _ in 0..n {
                    emit(inner, rng, out);
                }
            }
        }
    }

    struct Parser<'a> {
        chars: std::iter::Peekable<std::str::Chars<'a>>,
    }

    impl Parser<'_> {
        fn parse_seq(&mut self, in_group: bool) -> Result<Vec<Node>, Error> {
            let mut seq = Vec::new();
            loop {
                let Some(&c) = self.chars.peek() else {
                    if in_group {
                        return Err(Error("unterminated group".into()));
                    }
                    return Ok(seq);
                };
                match c {
                    ')' if in_group => return Ok(seq),
                    ')' => return Err(Error("unbalanced `)`".into())),
                    '(' => {
                        self.chars.next();
                        let inner = self.parse_seq(true)?;
                        self.chars.next(); // consume ')'
                        seq.push(self.postfix(Node::Group(inner))?);
                    }
                    '[' => {
                        self.chars.next();
                        let class = self.parse_class()?;
                        seq.push(self.postfix(class)?);
                    }
                    '\\' => {
                        self.chars.next();
                        let esc = self
                            .chars
                            .next()
                            .ok_or_else(|| Error("dangling escape".into()))?;
                        seq.push(self.postfix(Node::Lit(unescape(esc)))?);
                    }
                    '|' => return Err(Error("alternation is not supported".into())),
                    _ => {
                        self.chars.next();
                        seq.push(self.postfix(Node::Lit(c))?);
                    }
                }
            }
        }

        /// Applies `?`, `*`, `+`, `{m}`, or `{m,n}` to `node` if present.
        fn postfix(&mut self, node: Node) -> Result<Node, Error> {
            match self.chars.peek() {
                Some('?') => {
                    self.chars.next();
                    Ok(Node::Rep(Box::new(node), 0, 1))
                }
                Some('*') => {
                    self.chars.next();
                    Ok(Node::Rep(Box::new(node), 0, 8))
                }
                Some('+') => {
                    self.chars.next();
                    Ok(Node::Rep(Box::new(node), 1, 8))
                }
                Some('{') => {
                    self.chars.next();
                    let mut spec = String::new();
                    loop {
                        match self.chars.next() {
                            Some('}') => break,
                            Some(c) => spec.push(c),
                            None => return Err(Error("unterminated `{`".into())),
                        }
                    }
                    let (lo, hi) = match spec.split_once(',') {
                        Some((lo, hi)) => (
                            lo.trim()
                                .parse()
                                .map_err(|_| Error(format!("bad repetition `{spec}`")))?,
                            hi.trim()
                                .parse()
                                .map_err(|_| Error(format!("bad repetition `{spec}`")))?,
                        ),
                        None => {
                            let n = spec
                                .trim()
                                .parse()
                                .map_err(|_| Error(format!("bad repetition `{spec}`")))?;
                            (n, n)
                        }
                    };
                    if lo > hi {
                        return Err(Error(format!("inverted repetition `{spec}`")));
                    }
                    Ok(Node::Rep(Box::new(node), lo, hi))
                }
                _ => Ok(node),
            }
        }

        fn parse_class(&mut self) -> Result<Node, Error> {
            let mut chars: Vec<char> = Vec::new();
            let mut prev: Option<char> = None;
            loop {
                let c = self
                    .chars
                    .next()
                    .ok_or_else(|| Error("unterminated character class".into()))?;
                match c {
                    ']' => break,
                    '\\' => {
                        let esc = self
                            .chars
                            .next()
                            .ok_or_else(|| Error("dangling escape in class".into()))?;
                        let lit = unescape(esc);
                        chars.push(lit);
                        prev = Some(lit);
                    }
                    '-' if prev.is_some() && self.chars.peek().is_some_and(|&n| n != ']') => {
                        let hi = self.chars.next().unwrap();
                        let lo = prev.take().unwrap();
                        if lo as u32 > hi as u32 {
                            return Err(Error(format!("inverted class range {lo}-{hi}")));
                        }
                        // `lo` itself is already pushed; add (lo, hi].
                        for cp in (lo as u32 + 1)..=(hi as u32) {
                            if let Some(ch) = char::from_u32(cp) {
                                chars.push(ch);
                            }
                        }
                    }
                    _ => {
                        chars.push(c);
                        prev = Some(c);
                    }
                }
            }
            if chars.is_empty() {
                return Err(Error("empty character class".into()));
            }
            Ok(Node::Class(chars))
        }
    }

    fn unescape(c: char) -> char {
        match c {
            'n' => '\n',
            't' => '\t',
            'r' => '\r',
            other => other,
        }
    }

    /// Compiles a regex-subset pattern into a string-generating strategy.
    pub fn string_regex(pattern: &str) -> Result<RegexGeneratorStrategy, Error> {
        let mut p = Parser {
            chars: pattern.chars().peekable(),
        };
        let seq = p.parse_seq(false)?;
        Ok(RegexGeneratorStrategy { seq })
    }
}

pub mod test_runner {
    use crate::rng::TestRng;
    use crate::strategy::Strategy;

    /// Runner configuration (`ProptestConfig` in the prelude).
    #[derive(Debug, Clone)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    #[derive(Debug, Clone)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        #[must_use]
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    pub type TestCaseResult = Result<(), TestCaseError>;

    pub struct TestRunner {
        config: Config,
    }

    impl TestRunner {
        #[must_use]
        pub fn new(config: Config) -> Self {
            TestRunner { config }
        }

        /// Runs `f` against `cases` generated values; panics (failing the
        /// surrounding `#[test]`) on the first case error.
        pub fn run_named<S, F>(&mut self, name: &str, strategy: &S, f: F)
        where
            S: Strategy,
            F: Fn(S::Value) -> TestCaseResult,
        {
            let name_seed = name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
                (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3)
            });
            for case in 0..self.config.cases {
                let mut rng = TestRng::seed(name_seed ^ (u64::from(case) << 32 | 0x5bd1));
                let value = strategy.new_value(&mut rng);
                if let Err(e) = f(value) {
                    panic!(
                        "proptest `{name}` failed on case {case}/{}: {e}",
                        self.config.cases
                    );
                }
            }
        }
    }
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{any, Arbitrary, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { (<$crate::test_runner::Config as ::core::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $cfg;
                let strategy = ($($strat,)+);
                let mut runner = $crate::test_runner::TestRunner::new(config);
                runner.run_named(
                    stringify!($name),
                    &strategy,
                    |($($arg,)+)| -> $crate::test_runner::TestCaseResult {
                        $body
                        ::core::result::Result::Ok(())
                    },
                );
            }
        )*
    };
}
