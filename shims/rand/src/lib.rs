//! Offline stand-in for `rand` 0.8, covering the surface this workspace
//! uses: `rngs::StdRng`, `SeedableRng::{seed_from_u64, from_seed}`, and
//! the `Rng` extension methods `gen_range` (half-open and inclusive,
//! integer and float) and `gen_bool`.
//!
//! The generator is xoshiro256** seeded through SplitMix64 — not the
//! same stream as the real `StdRng`, but the workspace only relies on
//! determinism per seed, never on a specific stream.

/// Low-level entropy source.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    type Seed: Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Types with a uniform sampler over `[lo, hi)` / `[lo, hi]`, mirroring
/// rand's `SampleUniform`. A single blanket `SampleRange` impl keyed on
/// this trait keeps type inference working exactly like the real crate
/// (`rng.gen_range(0..5)` with the element type inferred from use).
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let v = rng.next_u64() as u128 % span;
                (lo as i128 + v as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = rng.next_u64() as u128 % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                lo + ((hi - lo) as f64 * unit) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                Self::sample_half_open(rng, lo, hi)
            }
        }
    )*};
}

impl_uniform_float!(f32, f64);

/// Ranges samplable into a `T`, mirroring rand's `SampleRange`.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// The `Standard` distribution: what `rng.gen()` samples from.
pub trait StandardSample {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for bool {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl StandardSample for f32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }
}

/// User-facing convenience methods, blanket-implemented for every
/// `RngCore`.
pub trait Rng: RngCore {
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool: p out of [0, 1]");
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** — fast, full 64-bit output, deterministic per seed.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            // Avoid the all-zero state, which is a fixed point.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }
}
