//! Offline stand-in for `serde_derive`.
//!
//! The build container has no access to a crate registry, so the real
//! syn/quote-based derive cannot be used. This macro hand-parses the
//! restricted shapes this workspace actually derives on:
//!
//! * structs with named fields (no generics),
//! * enums with unit variants,
//! * enums with struct variants (named fields).
//!
//! It generates impls of the local `serde` shim's `Serialize` /
//! `Deserialize` traits, which speak a JSON-like `serde::Value` tree.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Field {
    name: String,
}

#[derive(Debug)]
enum Variant {
    Unit(String),
    Struct(String, Vec<Field>),
    /// Tuple variant with its field count.
    Tuple(String, usize),
}

#[derive(Debug)]
enum Item {
    Struct {
        name: String,
        fields: Vec<Field>,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Skips attributes (`#[...]`, incl. doc comments) and visibility
/// (`pub`, `pub(crate)`, ...) at the cursor.
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // `#` then a bracket group.
                i += 1;
                if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
                {
                    i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    i += 1;
                }
            }
            _ => return i,
        }
    }
}

/// Parses `name: Type, name: Type, ...` from the tokens of a brace group.
fn parse_named_fields(tokens: &[TokenTree]) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(tokens, i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        fields.push(Field {
            name: id.to_string(),
        });
        i += 1;
        // Expect `:`, then consume the type until a top-level `,`.
        // Generic angle brackets contain no top-level commas in token
        // trees only when balanced — track `<`/`>` depth.
        let mut depth = 0i32;
        while let Some(t) = tokens.get(i) {
            if let TokenTree::Punct(p) = t {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
    }
    fields
}

fn parse_variants(tokens: &[TokenTree]) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(tokens, i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        let name = id.to_string();
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                variants.push(Variant::Struct(name, parse_named_fields(&inner)));
                i += 1;
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                // Count top-level comma-separated types.
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                let mut arity = usize::from(!inner.is_empty());
                let mut depth = 0i32;
                let mut trailing_comma = false;
                for t in &inner {
                    if let TokenTree::Punct(p) = t {
                        match p.as_char() {
                            '<' => depth += 1,
                            '>' => depth -= 1,
                            ',' if depth == 0 => {
                                arity += 1;
                                trailing_comma = true;
                                continue;
                            }
                            _ => {}
                        }
                    }
                    trailing_comma = false;
                }
                if trailing_comma {
                    arity -= 1;
                }
                variants.push(Variant::Tuple(name, arity));
                i += 1;
            }
            _ => variants.push(Variant::Unit(name)),
        }
        // Skip to past the next top-level comma.
        while let Some(t) = tokens.get(i) {
            i += 1;
            if matches!(t, TokenTree::Punct(p) if p.as_char() == ',') {
                break;
            }
        }
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens, 0);
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected struct/enum, got {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected item name, got {other:?}"),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde shim derive: generic type `{name}` is not supported");
    }
    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            g.stream().into_iter().collect::<Vec<_>>()
        }
        other => panic!("serde shim derive: expected braced body for `{name}`, got {other:?}"),
    };
    match kind.as_str() {
        "struct" => Item::Struct {
            name,
            fields: parse_named_fields(&body),
        },
        "enum" => Item::Enum {
            name,
            variants: parse_variants(&body),
        },
        other => panic!("serde shim derive: unsupported item kind `{other}`"),
    }
}

fn gen_struct_serialize(name: &str, fields: &[Field]) -> String {
    let pushes: String = fields
        .iter()
        .map(|f| {
            format!(
                "m.push((\"{n}\".to_string(), ::serde::Serialize::serialize(&self.{n})));\n",
                n = f.name
            )
        })
        .collect();
    format!(
        "impl ::serde::Serialize for {name} {{\n\
            fn serialize(&self) -> ::serde::Value {{\n\
                let mut m: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n\
                {pushes}\
                ::serde::Value::Map(m)\n\
            }}\n\
        }}\n"
    )
}

fn gen_struct_deserialize(name: &str, fields: &[Field]) -> String {
    let inits: String = fields
        .iter()
        .map(|f| {
            format!(
                "{n}: ::serde::de_field(m, \"{n}\", \"{name}\")?,\n",
                n = f.name
            )
        })
        .collect();
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
            fn deserialize(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                let m = v.as_map().ok_or_else(|| ::serde::Error::expected(\"map\", \"{name}\"))?;\n\
                ::std::result::Result::Ok({name} {{\n\
                    {inits}\
                }})\n\
            }}\n\
        }}\n"
    )
}

fn gen_enum_serialize(name: &str, variants: &[Variant]) -> String {
    let arms: String = variants
        .iter()
        .map(|v| match v {
            Variant::Unit(vn) => format!(
                "{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string()),\n"
            ),
            Variant::Tuple(vn, arity) => {
                let binds: Vec<String> = (0..*arity).map(|i| format!("f{i}")).collect();
                let pushes: String = binds
                    .iter()
                    .map(|b| format!("inner.push(::serde::Serialize::serialize({b}));\n"))
                    .collect();
                let payload = if *arity == 1 {
                    "inner.pop().unwrap()".to_string()
                } else {
                    "::serde::Value::Seq(inner)".to_string()
                };
                format!(
                    "{name}::{vn}({binds}) => {{\n\
                        let mut inner: ::std::vec::Vec<::serde::Value> = ::std::vec::Vec::new();\n\
                        {pushes}\
                        ::serde::Value::Map(vec![(\"{vn}\".to_string(), {payload})])\n\
                    }}\n",
                    binds = binds.join(", ")
                )
            }
            Variant::Struct(vn, fields) => {
                let binds: String = fields
                    .iter()
                    .map(|f| f.name.clone())
                    .collect::<Vec<_>>()
                    .join(", ");
                let pushes: String = fields
                    .iter()
                    .map(|f| {
                        format!(
                            "inner.push((\"{n}\".to_string(), ::serde::Serialize::serialize({n})));\n",
                            n = f.name
                        )
                    })
                    .collect();
                format!(
                    "{name}::{vn} {{ {binds} }} => {{\n\
                        let mut inner: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n\
                        {pushes}\
                        ::serde::Value::Map(vec![(\"{vn}\".to_string(), ::serde::Value::Map(inner))])\n\
                    }}\n"
                )
            }
        })
        .collect();
    format!(
        "impl ::serde::Serialize for {name} {{\n\
            fn serialize(&self) -> ::serde::Value {{\n\
                match self {{\n{arms}}}\n\
            }}\n\
        }}\n"
    )
}

fn gen_enum_deserialize(name: &str, variants: &[Variant]) -> String {
    let unit_arms: String = variants
        .iter()
        .filter_map(|v| match v {
            Variant::Unit(vn) => Some(format!(
                "\"{vn}\" => return ::std::result::Result::Ok({name}::{vn}),\n"
            )),
            Variant::Struct(..) | Variant::Tuple(..) => None,
        })
        .collect();
    let struct_arms: String = variants
        .iter()
        .filter_map(|v| match v {
            Variant::Unit(_) => None,
            Variant::Tuple(vn, arity) => {
                if *arity == 1 {
                    Some(format!(
                        "\"{vn}\" => return ::std::result::Result::Ok({name}::{vn}(::serde::Deserialize::deserialize(val)?)),\n"
                    ))
                } else {
                    let elems: String = (0..*arity)
                        .map(|i| {
                            format!(
                                "::serde::Deserialize::deserialize(xs.get({i}).ok_or_else(|| ::serde::Error::expected(\"tuple element\", \"{name}::{vn}\"))?)?,\n"
                            )
                        })
                        .collect();
                    Some(format!(
                        "\"{vn}\" => {{\n\
                            let xs = match val {{ ::serde::Value::Seq(xs) => xs, _ => return ::std::result::Result::Err(::serde::Error::expected(\"sequence\", \"{name}::{vn}\")) }};\n\
                            return ::std::result::Result::Ok({name}::{vn}({elems}));\n\
                        }}\n"
                    ))
                }
            }
            Variant::Struct(vn, fields) => {
                let inits: String = fields
                    .iter()
                    .map(|f| {
                        format!(
                            "{n}: ::serde::de_field(inner, \"{n}\", \"{name}::{vn}\")?,\n",
                            n = f.name
                        )
                    })
                    .collect();
                Some(format!(
                    "\"{vn}\" => {{\n\
                        let inner = val.as_map().ok_or_else(|| ::serde::Error::expected(\"map\", \"{name}::{vn}\"))?;\n\
                        return ::std::result::Result::Ok({name}::{vn} {{ {inits} }});\n\
                    }}\n"
                ))
            }
        })
        .collect();
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
            fn deserialize(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                if let ::std::option::Option::Some(s) = v.as_str() {{\n\
                    match s {{\n{unit_arms}\
                        other => return ::std::result::Result::Err(::serde::Error::unknown_variant(other, \"{name}\")),\n\
                    }}\n\
                }}\n\
                if let ::std::option::Option::Some(m) = v.as_map() {{\n\
                    if let ::std::option::Option::Some((tag, val)) = m.first() {{\n\
                        match tag.as_str() {{\n{struct_arms}\
                            other => return ::std::result::Result::Err(::serde::Error::unknown_variant(other, \"{name}\")),\n\
                        }}\n\
                    }}\n\
                }}\n\
                ::std::result::Result::Err(::serde::Error::expected(\"string or map\", \"{name}\"))\n\
            }}\n\
        }}\n"
    )
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let code = match parse_item(input) {
        Item::Struct { name, fields } => gen_struct_serialize(&name, &fields),
        Item::Enum { name, variants } => gen_enum_serialize(&name, &variants),
    };
    code.parse()
        .expect("serde shim derive: generated invalid Serialize impl")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let code = match parse_item(input) {
        Item::Struct { name, fields } => gen_struct_deserialize(&name, &fields),
        Item::Enum { name, variants } => gen_enum_deserialize(&name, &variants),
    };
    code.parse()
        .expect("serde shim derive: generated invalid Deserialize impl")
}
