//! Offline stand-in for `rayon`.
//!
//! Implements exactly the slice-parallelism subset the workspace uses —
//! `par_iter().map(...)` followed by `collect`, `reduce`, or `for_each`
//! — on top of `std::thread::scope`. Work is split into contiguous
//! chunks, one per worker thread, and results are reassembled in input
//! order, so `collect` preserves ordering exactly like real rayon's
//! indexed parallel iterators. Extend it here when a caller needs more
//! of the real API.

use std::num::NonZeroUsize;

/// Number of worker threads: the available parallelism, overridable via
/// `RAYON_NUM_THREADS` just like real rayon.
#[must_use]
pub fn current_num_threads() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// A pending parallel map over a slice, producing ordered results.
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T, R, F> ParMap<'a, T, F>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    fn run(self) -> Vec<R> {
        let n = self.items.len();
        if n == 0 {
            return Vec::new();
        }
        let workers = current_num_threads().min(n).max(1);
        if workers == 1 {
            return self.items.iter().map(self.f).collect();
        }
        let chunk_size = n.div_ceil(workers);
        let mut out: Vec<Vec<R>> = Vec::with_capacity(workers);
        let f = &self.f;
        std::thread::scope(|s| {
            let mut handles = Vec::with_capacity(workers);
            for chunk in self.items.chunks(chunk_size) {
                handles.push(s.spawn(move || chunk.iter().map(f).collect::<Vec<R>>()));
            }
            for h in handles {
                out.push(h.join().expect("rayon shim worker panicked"));
            }
        });
        out.into_iter().flatten().collect()
    }

    pub fn collect<C: FromParallel<R>>(self) -> C {
        C::from_ordered(self.run())
    }

    /// Order-insensitive associative reduction (identity ⊕ x = x).
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> R
    where
        ID: Fn() -> R,
        OP: Fn(R, R) -> R,
    {
        self.run().into_iter().fold(identity(), op)
    }

    pub fn for_each<G: Fn(R) + Sync>(self, g: G) {
        for r in self.run() {
            g(r);
        }
    }
}

/// Conversion from an ordered parallel result, mirroring
/// `FromParallelIterator`.
pub trait FromParallel<R> {
    fn from_ordered(items: Vec<R>) -> Self;
}

impl<R> FromParallel<R> for Vec<R> {
    fn from_ordered(items: Vec<R>) -> Self {
        items
    }
}

/// Entry point on slices and vectors, mirroring
/// `IntoParallelRefIterator::par_iter`.
pub trait ParallelSlice<T: Sync> {
    fn as_parallel_slice(&self) -> &[T];

    /// Parallel iterator over elements; chain `.map(...)` next.
    fn par_iter(&self) -> ParIter<'_, T> {
        ParIter {
            items: self.as_parallel_slice(),
        }
    }
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn as_parallel_slice(&self) -> &[T] {
        self
    }
}

impl<T: Sync> ParallelSlice<T> for Vec<T> {
    fn as_parallel_slice(&self) -> &[T] {
        self
    }
}

pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }
}

pub mod prelude {
    pub use crate::{FromParallel, ParallelSlice};
}
