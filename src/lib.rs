//! Workspace-level re-exports for examples and integration tests.
pub use gittables_core as core;
