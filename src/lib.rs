//! Workspace-level re-exports for examples and integration tests.
pub use gittables_core as core;
pub use gittables_corpus as corpus;
pub use gittables_githost as githost;
pub use gittables_serve as serve;
pub use gittables_table as table;
pub use gittables_tablecsv as tablecsv;

pub use gittables_core::{Pipeline, PipelineConfig, PipelineReport, StoreRun};
pub use gittables_corpus::{load_store, save_store, CorpusStore, StoreError, TypeIndex};
pub use gittables_serve::{QueryEngine, Server, ServerConfig};
