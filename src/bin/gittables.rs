//! `gittables` — command-line interface to the corpus pipeline and the §5
//! applications.
//!
//! ```text
//! gittables build   --out corpus.json [--seed 42] [--topics 10] [--repos 40] [--sql 0.0]
//! gittables stats   --corpus corpus.json
//! gittables search  --corpus corpus.json --query "status and sales amount per product" [--k 5]
//! gittables complete --corpus corpus.json --prefix "order_id,order_date" [--k 5]
//! gittables annotate --csv file.csv
//! gittables export  --corpus corpus.json --out dir/
//! gittables union   --corpus corpus.json [--min 3]
//! gittables dedup   --corpus corpus.json
//! gittables save    --corpus corpus.json --out store_dir/ [--shard 256] [--format colv1|jsonl]
//! gittables load    --store store_dir/ --out corpus.json
//! gittables resume  --store store_dir/ [--seed 42] [--topics 10] [--repos 40] [--sql 0.0] [--max-shards N] [--format colv1|jsonl] [--retry-quarantined]
//! gittables crawl   store_dir/ [--passes N] [--interval-ms N] [--max-shards N] [--drain-every N] [--replicas N] [--fault-rate P] [--corrupt-rate P] [--fault-seed N]
//! gittables migrate store_dir/ --to <colv1|jsonl>
//! gittables index   store_dir/
//! gittables serve   store_dir/ [--addr 127.0.0.1:7878] [--threads 4] [--cache 1024]
//! ```
//!
//! `save`/`load` convert between the monolithic JSON file and the sharded
//! on-disk store (shard format defaults to the binary columnar `colv1`;
//! reads auto-detect from the manifest); `migrate` rewrites a store
//! between shard formats in place, atomically; `resume` runs the pipeline
//! incrementally against a store, skipping repositories whose shards are
//! already committed; `index` builds the persisted index sidecars that
//! let `serve` boot straight off the mapped files; `serve` boots a query
//! engine over a store (sidecar path when a fresh sidecar set exists,
//! materialized rebuild otherwise) and answers HTTP queries against it
//! until `/shutdown`; `crawl` is the long-running daemon: repeated
//! incremental passes over a replica [`HostPool`] (with optional
//! injected faults for chaos drills), scheduled quarantine drains with
//! exponential per-repo cooldowns, per-pass pool/breaker stats, and
//! graceful SIGTERM/SIGINT shutdown that commits in-flight shards.

use std::path::PathBuf;
use std::process::ExitCode;

use gittables_core::apps::{DataSearch, NearestCompletion};
use gittables_core::{Pipeline, PipelineConfig};
use gittables_corpus::{persist, AnnotationStats, Corpus, CorpusStats};
use gittables_githost::{FaultSpec, FlakyHost, GitHost, HostPool, PoolPolicy};
use gittables_serve::{Server, ServerConfig};

fn opt(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1).cloned())
}

fn num<T: std::str::FromStr>(args: &[String], key: &str, default: T) -> T {
    opt(args, key)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn load(args: &[String]) -> Result<Corpus, String> {
    let path = opt(args, "--corpus").ok_or("missing --corpus <file>")?;
    persist::load_corpus(&PathBuf::from(&path)).map_err(|e| format!("loading {path}: {e}"))
}

/// The `build`/`resume` pipeline config: `--seed/--topics/--repos` plus
/// `--sql <prob>`, the share of synthesized files rendered as SQL dumps
/// instead of CSV. The default 0.0 draws no extra randomness, so corpora
/// built before SQL ingestion existed stay bit-identical.
fn sized_config(args: &[String]) -> PipelineConfig {
    let seed = num(args, "--seed", 42u64);
    let topics = num(args, "--topics", 10usize);
    let repos = num(args, "--repos", 40usize);
    PipelineConfig {
        sql_file_prob: num(args, "--sql", 0.0f64).clamp(0.0, 1.0),
        ..PipelineConfig::sized(seed, topics, repos)
    }
}

fn cmd_build(args: &[String]) -> Result<(), String> {
    let out = opt(args, "--out").ok_or("missing --out <file>")?;
    let config = sized_config(args);
    eprintln!(
        "building corpus: seed {}, {} topics x {} repos, sql share {}",
        config.seed,
        config.topics.len(),
        config.repos_per_topic,
        config.sql_file_prob
    );
    let pipeline = Pipeline::new(config);
    let host = GitHost::new();
    pipeline.populate_host(&host);
    let (corpus, report) = pipeline.run(&host);
    eprintln!(
        "fetched {} files, parsed {} ({:.1}%), kept {} tables, anonymized {} columns",
        report.fetched,
        report.parsed,
        100.0 * report.parse_rate(),
        report.kept,
        report.pii_columns
    );
    persist::save_corpus(&corpus, &PathBuf::from(&out)).map_err(|e| e.to_string())?;
    eprintln!("wrote {out}");
    Ok(())
}

fn cmd_stats(args: &[String]) -> Result<(), String> {
    let corpus = load(args)?;
    let s = CorpusStats::of(&corpus);
    println!("corpus    : {} ({} tables)", corpus.name, s.tables);
    println!("avg rows  : {:.1}", s.avg_rows);
    println!("avg cols  : {:.1}", s.avg_columns);
    let (n, st, o) = s.atomic_fractions;
    println!(
        "atomic    : {:.1}% numeric / {:.1}% string / {:.1}% other",
        100.0 * n,
        100.0 * st,
        100.0 * o
    );
    for (method, ont) in Corpus::annotation_configs() {
        let a = AnnotationStats::of(&corpus, method, ont, corpus.len().max(10) / 10, 5);
        println!(
            "{:<9} {:<10}: {} tables, {} columns, {} types, coverage {:.0}%",
            method.name(),
            ont.name(),
            a.annotated_tables,
            a.annotated_columns,
            a.unique_types,
            100.0 * a.mean_coverage
        );
    }
    Ok(())
}

fn cmd_search(args: &[String]) -> Result<(), String> {
    let corpus = load(args)?;
    let query = opt(args, "--query").ok_or("missing --query <text>")?;
    let k = num(args, "--k", 5usize);
    let ds = DataSearch::build(&corpus);
    for hit in ds.search(&query, k) {
        let t = &corpus.tables[hit.table_index].table;
        println!(
            "{:.3}  {:<40} {}",
            hit.score,
            t.provenance().url(),
            hit.schema
        );
    }
    Ok(())
}

fn cmd_complete(args: &[String]) -> Result<(), String> {
    let corpus = load(args)?;
    let prefix_arg = opt(args, "--prefix").ok_or("missing --prefix a,b,c")?;
    let prefix: Vec<&str> = prefix_arg.split(',').map(str::trim).collect();
    let k = num(args, "--k", 5usize);
    let nc = NearestCompletion::build(&corpus);
    for c in nc.complete(&prefix, k) {
        println!(
            "distance {:.3}  completion: {}",
            c.prefix_distance,
            c.completion.join(", ")
        );
    }
    Ok(())
}

fn cmd_annotate(args: &[String]) -> Result<(), String> {
    let path = opt(args, "--csv").ok_or("missing --csv <file>")?;
    let content = std::fs::read_to_string(&path).map_err(|e| format!("{path}: {e}"))?;
    let parsed = gittables_tablecsv::read_csv(&content, &Default::default())
        .map_err(|e| format!("{path}: {e}"))?;
    let table = gittables_table::Table::from_string_rows("cli", &parsed.header, parsed.records)
        .map_err(|e| e.to_string())?;
    let ont = std::sync::Arc::new(gittables_ontology::dbpedia());
    let sem = gittables_annotate::SemanticAnnotator::new(ont);
    for a in sem.annotate(&table).annotations {
        println!(
            "{:<24} -> {:<24} (confidence {:.2})",
            table.column(a.column).map_or("?", |c| c.name()),
            a.label,
            a.similarity
        );
    }
    Ok(())
}

fn cmd_export(args: &[String]) -> Result<(), String> {
    let corpus = load(args)?;
    let out = opt(args, "--out").ok_or("missing --out <dir>")?;
    let n = gittables_corpus::export_csv(&corpus, std::path::Path::new(&out))
        .map_err(|e| e.to_string())?;
    eprintln!("wrote {n} CSV files under {out}");
    Ok(())
}

fn cmd_union(args: &[String]) -> Result<(), String> {
    let corpus = load(args)?;
    let min = num(args, "--min", 3usize);
    let groups = gittables_corpus::union_groups(&corpus, min);
    println!("{} union groups with >= {min} members", groups.len());
    for g in groups.iter().take(20) {
        let unioned = gittables_corpus::union_tables(&corpus, g).map_err(|e| e.to_string())?;
        println!(
            "{:<32} {} members -> {} x {}",
            g.repository,
            g.members.len(),
            unioned.num_rows(),
            unioned.num_columns()
        );
    }
    Ok(())
}

fn cmd_dedup(args: &[String]) -> Result<(), String> {
    let corpus = load(args)?;
    // One shared fingerprint pass feeds both analyses.
    let fingerprints = gittables_corpus::table_fingerprints(&corpus);
    let groups = gittables_corpus::exact_duplicates_with(&fingerprints);
    let survivors = gittables_corpus::dedup_indices_with(&fingerprints);
    println!(
        "{} tables, {} exact-duplicate groups, {} survive deduplication",
        corpus.len(),
        groups.len(),
        survivors.len()
    );
    for g in groups.iter().take(20) {
        let urls: Vec<String> = g
            .members
            .iter()
            .map(|&i| corpus.tables[i].table.provenance().url())
            .collect();
        println!("  {}", urls.join("  ==  "));
    }
    Ok(())
}

/// Parses `--format` (default: the fast binary `colv1`).
fn store_format(args: &[String]) -> Result<gittables_corpus::StoreFormat, String> {
    match opt(args, "--format") {
        None => Ok(gittables_corpus::StoreFormat::ColV1),
        Some(v) => gittables_corpus::StoreFormat::parse(&v)
            .ok_or_else(|| format!("unknown store format `{v}` (use colv1 or jsonl)")),
    }
}

fn cmd_save(args: &[String]) -> Result<(), String> {
    let corpus = load(args)?;
    let out = opt(args, "--out").ok_or("missing --out <dir>")?;
    let shard = num(args, "--shard", PipelineConfig::small(0).tables_per_shard);
    let format = store_format(args)?;
    let store = gittables_corpus::save_store_as(&corpus, PathBuf::from(&out), shard, format)
        .map_err(|e| e.to_string())?;
    eprintln!(
        "wrote {} tables across {} {format} shards under {out}",
        store.len(),
        store.num_shards()
    );
    Ok(())
}

fn cmd_migrate(args: &[String]) -> Result<(), String> {
    let dir = args
        .first()
        .filter(|a| !a.starts_with("--"))
        .cloned()
        .or_else(|| opt(args, "--store"))
        .ok_or("missing store directory (migrate <store-dir> --to <format>)")?;
    let to_arg = opt(args, "--to").ok_or("missing --to <colv1|jsonl>")?;
    let to = gittables_corpus::StoreFormat::parse(&to_arg)
        .ok_or_else(|| format!("unknown store format `{to_arg}` (use colv1 or jsonl)"))?;
    let report =
        gittables_corpus::migrate_store(PathBuf::from(&dir), to).map_err(|e| e.to_string())?;
    if report.shards == 0 && report.from == report.to {
        eprintln!("{dir} is already {to}; nothing to do");
    } else {
        eprintln!(
            "migrated {dir} from {} to {}: {} shards, {} tables rewritten",
            report.from, report.to, report.shards, report.tables
        );
    }
    Ok(())
}

fn cmd_load(args: &[String]) -> Result<(), String> {
    let dir = opt(args, "--store").ok_or("missing --store <dir>")?;
    let out = opt(args, "--out").ok_or("missing --out <file>")?;
    let corpus = gittables_corpus::load_store(PathBuf::from(&dir))
        .map_err(|e| format!("loading store {dir}: {e}"))?;
    persist::save_corpus(&corpus, &PathBuf::from(&out)).map_err(|e| e.to_string())?;
    eprintln!("loaded {} tables from {dir}, wrote {out}", corpus.len());
    Ok(())
}

fn cmd_resume(args: &[String]) -> Result<(), String> {
    let dir = opt(args, "--store").ok_or("missing --store <dir>")?;
    let max_shards = match opt(args, "--max-shards") {
        Some(v) => Some(
            v.parse::<usize>()
                .map_err(|_| format!("invalid --max-shards value: {v}"))?,
        ),
        None => None,
    };
    let config = sized_config(args);
    let (seed, topics, repos) = (config.seed, config.topics.len(), config.repos_per_topic);
    let pipeline = Pipeline::new(config);
    // `--format` applies when the store is first created; an existing
    // store keeps its recorded format (use `migrate` to change it).
    let store = gittables_corpus::CorpusStore::open_or_create_with_format(
        PathBuf::from(&dir),
        pipeline.corpus_name(),
        store_format(args)?,
    )
    .map_err(|e| e.to_string())?;
    eprintln!(
        "resuming into {dir} ({} format): seed {seed}, {topics} topics x {repos} repos ({} shards already stored)",
        store.format(),
        store.num_shards()
    );
    let retry_quarantined = args.iter().any(|a| a == "--retry-quarantined");
    let host = GitHost::new();
    pipeline.populate_host(&host);
    let run = pipeline
        .run_to_store_opts(&host, &store, max_shards, retry_quarantined)
        .map_err(|e| e.to_string())?;
    eprintln!(
        "wrote {} new shards, skipped {} existing; corpus now {} tables ({} parsed, {} kept this config)",
        run.shards_written,
        run.shards_skipped,
        run.corpus.len(),
        run.report.parsed,
        run.report.kept
    );
    if run.report.retries > 0 || run.report.queries_failed > 0 {
        eprintln!(
            "host faults: {} retries ({} ms backoff), {} queries failed",
            run.report.retries, run.report.backoff_ms, run.report.queries_failed
        );
    }
    if run.report.quarantined_repos.is_empty() {
        if retry_quarantined {
            eprintln!("quarantine is empty");
        }
    } else {
        eprintln!(
            "{} repositories quarantined (re-attempt with --retry-quarantined):",
            run.report.quarantined_repos.len()
        );
        for q in &run.report.quarantined_repos {
            eprintln!("  {} — {}", q.name, q.reason);
        }
    }
    Ok(())
}

fn cmd_crawl(args: &[String]) -> Result<(), String> {
    let dir = args
        .first()
        .filter(|a| !a.starts_with("--"))
        .cloned()
        .or_else(|| opt(args, "--store"))
        .ok_or("missing store directory (crawl <store-dir>)")?;
    let passes = num(args, "--passes", 0u64);
    let interval_ms = num(args, "--interval-ms", 1_000u64);
    let max_shards = match opt(args, "--max-shards") {
        Some(v) => Some(
            v.parse::<usize>()
                .map_err(|_| format!("invalid --max-shards value: {v}"))?,
        ),
        None => None,
    };
    let drain_every = num(args, "--drain-every", 2u64);
    let cooldown_base = num(args, "--cooldown-base", 1u64);
    let replicas = num(args, "--replicas", 2usize).max(1);
    let fault_rate = num(args, "--fault-rate", 0.0f64).clamp(0.0, 1.0);
    let corrupt_rate = num(args, "--corrupt-rate", 0.0f64).clamp(0.0, 1.0);
    let fault_seed = num(args, "--fault-seed", 1u64);

    // Handlers go in before the (slow) replica population so an early
    // SIGTERM stops the daemon gracefully instead of killing it.
    let stop = gittables_core::crawl::signals::install();

    let config = sized_config(args);
    let (seed, topics, repos) = (config.seed, config.topics.len(), config.repos_per_topic);
    let pipeline = Pipeline::new(config);
    let store = gittables_corpus::CorpusStore::open_or_create_with_format(
        PathBuf::from(&dir),
        pipeline.corpus_name(),
        store_format(args)?,
    )
    .map_err(|e| e.to_string())?;

    // Replica mirrors of one upstream: identical content and a shared
    // corruption schedule, independent transient-fault schedules.
    let backends: Vec<FlakyHost<GitHost>> = (0..replicas)
        .map(|i| {
            let host = GitHost::new();
            pipeline.populate_host(&host);
            FlakyHost::new(
                host,
                FaultSpec {
                    seed: fault_seed.wrapping_add(i as u64),
                    transient_rate: fault_rate,
                    corrupt_rate,
                    corrupt_seed: Some(fault_seed),
                    ..FaultSpec::default()
                },
            )
        })
        .collect();
    let pool = HostPool::new(
        backends,
        PoolPolicy {
            seed: fault_seed,
            ..PoolPolicy::default()
        },
    );

    let options = gittables_core::CrawlOptions {
        passes: (passes > 0).then_some(passes),
        interval: std::time::Duration::from_millis(interval_ms),
        max_shards_per_pass: max_shards,
        drain_every,
        cooldown_base_passes: cooldown_base,
    };
    eprintln!(
        "crawling into {dir} ({} format): seed {seed}, {topics} topics x {repos} repos, {replicas} replica(s), {} pass budget",
        store.format(),
        if passes > 0 {
            passes.to_string()
        } else {
            "unbounded".to_string()
        }
    );
    let summary = gittables_core::crawl(&pipeline, &pool, &store, &options, stop, |p| {
        eprintln!(
            "pass {}: +{} shards ({} skipped, {} deferred), corpus {} tables, {} quarantined",
            p.pass,
            p.run.shards_written,
            p.run.shards_skipped,
            p.run.shards_deferred,
            p.run.corpus.len(),
            p.quarantined
        );
        if !p.drained.is_empty() {
            eprintln!(
                "  drain: re-attempted {} quarantined repo(s), healed {}",
                p.drained.len(),
                p.healed.len()
            );
        }
        if let Some(pool) = &p.pool {
            eprintln!(
                "  pool: {} ops, {} failovers, {} hedges ({} won), {} budget waits, {} breaker opens",
                pool.operations,
                pool.failovers,
                pool.hedges,
                pool.hedges_won,
                pool.budget_waits,
                pool.breaker_opens()
            );
        }
    })
    .map_err(|e| e.to_string())?;
    eprintln!(
        "crawl {}: {} pass(es) this run ({} lifetime), {} repositories quarantined",
        if summary.interrupted {
            "interrupted — store is consistent, restart to continue"
        } else {
            "finished"
        },
        summary.passes_run,
        summary.pass,
        summary.quarantined
    );
    Ok(())
}

fn cmd_index(args: &[String]) -> Result<(), String> {
    let dir = args
        .first()
        .filter(|a| !a.starts_with("--"))
        .cloned()
        .or_else(|| opt(args, "--store"))
        .ok_or("missing store directory (index <store-dir>)")?;
    let report =
        gittables_serve::build_sidecars(&dir).map_err(|e| format!("indexing {dir}: {e}"))?;
    eprintln!(
        "indexed {dir}: {} tables, {} semantic types, {} search entries, {} distinct schemas; {} sidecar bytes",
        report.tables, report.types, report.search_entries, report.schemas, report.bytes
    );
    Ok(())
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    // The store directory is the positional argument (`serve dir/`) with
    // `--store dir/` accepted as an alias.
    let dir = args
        .first()
        .filter(|a| !a.starts_with("--"))
        .cloned()
        .or_else(|| opt(args, "--store"))
        .ok_or("missing store directory (serve <store-dir>)")?;
    let addr = opt(args, "--addr").unwrap_or_else(|| "127.0.0.1:7878".to_string());
    let threads = num(args, "--threads", 4usize);
    let cache = num(args, "--cache", 1024usize);
    let shards = num(args, "--shards", 1usize);
    eprintln!("loading corpus from {dir} ...");
    let set = gittables_serve::ShardSet::load(&dir, shards)
        .map_err(|e| format!("loading store {dir}: {e}"))?;
    let stats = set.build_stats().clone();
    eprintln!(
        "loaded {} tables across {} shard engine(s) (boot path: {}{}; store {:.1} ms, indexes {:.1} ms)",
        set.num_tables(),
        set.num_shards(),
        stats.boot_path,
        stats
            .fallback_reason
            .as_deref()
            .map(|r| format!(", fallback: {r}"))
            .unwrap_or_default(),
        stats.store_load_ms,
        stats.index_build_ms
    );
    let config = ServerConfig {
        threads,
        cache_capacity: cache,
        reload: Some(gittables_serve::ReloadSpec {
            dir: std::path::PathBuf::from(&dir),
            shards,
        }),
        ..ServerConfig::default()
    };
    let handle = Server::start_set(set, addr.as_str(), config)
        .map_err(|e| format!("binding {addr}: {e}"))?;
    // Printed on stdout so scripts can discover an ephemeral port.
    println!("serving on http://{}", handle.addr());
    eprintln!(
        "{threads} worker threads; POST /reload or SIGHUP to swap in a fresh snapshot; GET /shutdown for a graceful drain"
    );
    handle.join();
    eprintln!("server drained");
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("build") => cmd_build(&args[1..]),
        Some("stats") => cmd_stats(&args[1..]),
        Some("search") => cmd_search(&args[1..]),
        Some("complete") => cmd_complete(&args[1..]),
        Some("annotate") => cmd_annotate(&args[1..]),
        Some("export") => cmd_export(&args[1..]),
        Some("union") => cmd_union(&args[1..]),
        Some("dedup") => cmd_dedup(&args[1..]),
        Some("save") => cmd_save(&args[1..]),
        Some("load") => cmd_load(&args[1..]),
        Some("resume") => cmd_resume(&args[1..]),
        Some("crawl") => cmd_crawl(&args[1..]),
        Some("migrate") => cmd_migrate(&args[1..]),
        Some("index") => cmd_index(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        _ => {
            eprintln!("usage: gittables <build|stats|search|complete|annotate|export|union|dedup|save|load|resume|crawl|migrate|index|serve> [options]");
            eprintln!("  build    --out corpus.json [--seed N] [--topics N] [--repos N] [--sql P]");
            eprintln!("  stats    --corpus corpus.json");
            eprintln!("  search   --corpus corpus.json --query \"...\" [--k N]");
            eprintln!("  complete --corpus corpus.json --prefix a,b,c [--k N]");
            eprintln!("  annotate --csv file.csv");
            eprintln!("  export   --corpus corpus.json --out dir/");
            eprintln!("  union    --corpus corpus.json [--min N]");
            eprintln!("  dedup    --corpus corpus.json");
            eprintln!("  save     --corpus corpus.json --out store_dir/ [--shard N] [--format colv1|jsonl]");
            eprintln!("  load     --store store_dir/ --out corpus.json");
            eprintln!("  resume   --store store_dir/ [--seed N] [--topics N] [--repos N] [--sql P] [--max-shards N] [--format colv1|jsonl] [--retry-quarantined]");
            eprintln!("  crawl    store_dir/ [--passes N (0 = until SIGTERM)] [--interval-ms N] [--max-shards N] [--drain-every N] [--cooldown-base N] [--replicas N] [--fault-rate P] [--corrupt-rate P] [--fault-seed N]");
            eprintln!("  migrate  store_dir/ --to <colv1|jsonl>");
            eprintln!("  index    store_dir/   (build index sidecars for fast `serve` boots)");
            eprintln!(
                "  serve    store_dir/ [--addr HOST:PORT] [--threads N] [--cache N] [--shards N]"
            );
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
