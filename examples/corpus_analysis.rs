//! Corpus analysis walkthrough (paper §4): structural statistics, annotation
//! statistics, similarity distributions, and the bias audit.
//!
//! ```sh
//! cargo run --release --example corpus_analysis
//! ```

use gittables_annotate::Method;
use gittables_core::{Pipeline, PipelineConfig};
use gittables_corpus::{annstats, bias_audit, AnnotationStats, CorpusStats};
use gittables_githost::GitHost;
use gittables_ontology::OntologyKind;

fn main() {
    let pipeline = Pipeline::new(PipelineConfig::sized(99, 10, 25));
    let host = GitHost::new();
    pipeline.populate_host(&host);
    let (corpus, _) = pipeline.run(&host);

    let stats = CorpusStats::of(&corpus);
    println!("== structural statistics (§4.1) ==");
    println!(
        "tables {} | avg rows {:.0} | avg cols {:.1} | avg cells {:.0}",
        stats.tables, stats.avg_rows, stats.avg_columns, stats.avg_cells
    );
    println!(
        "tables per repo {:.1} | repos with ≤5 tables {:.0}%",
        stats.avg_tables_per_repo,
        100.0 * stats.frac_repos_leq5
    );

    println!("\n== annotation statistics (Table 5) ==");
    for (method, ont) in gittables_corpus::Corpus::annotation_configs() {
        let s = AnnotationStats::of(&corpus, method, ont, 50, 5);
        println!(
            "{:<10} {:<10} tables {:>5} columns {:>6} types {:>4} coverage {:.0}%",
            method.name(),
            ont.name(),
            s.annotated_tables,
            s.annotated_columns,
            s.unique_types,
            100.0 * s.mean_coverage
        );
    }

    println!("\n== top semantic types (Fig. 5) ==");
    let s = AnnotationStats::of(&corpus, Method::Syntactic, OntologyKind::DBpedia, 50, 10);
    for (label, count) in &s.top_types {
        println!("  {label:<20} {count}");
    }

    println!("\n== similarity distribution (Fig. 4c) ==");
    let h = annstats::similarity_histogram(&corpus, OntologyKind::DBpedia);
    for (mid, count) in h.series() {
        if count > 0 {
            println!("  {:.2}: {}", mid, "#".repeat((count / 10 + 1).min(60)));
        }
    }

    println!("\n== bias audit (Table 6) ==");
    for row in bias_audit(&corpus, Method::Syntactic, 4) {
        let values: Vec<&str> = row
            .frequent_values
            .iter()
            .map(|(v, _)| v.as_str())
            .collect();
        println!(
            "  {:<12} {:.3}% of columns  frequent: {}",
            row.semantic_type,
            row.percentage_columns,
            values.join(", ")
        );
    }
}
