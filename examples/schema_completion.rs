//! Schema completion (paper §5.2, Algorithm 1, Table 8): complete schema
//! prefixes from real database schemas using nearest corpus schemas.
//!
//! The completion engine is built by the shared [`QueryEngine`]
//! constructor — the exact same code path the `gittables serve` HTTP
//! subsystem uses — so what this example prints is what
//! `/complete?prefix=...` serves.
//!
//! ```sh
//! cargo run --release --example schema_completion
//! ```

use gittables_core::{Pipeline, PipelineConfig};
use gittables_githost::GitHost;
use gittables_serve::QueryEngine;

/// The three CTU Prague Relational Learning Repository prefixes evaluated in
/// the paper's Table 8 (employees / ClassicModels orders / AdventureWorks
/// work orders), with their original full schemas for relevance scoring.
const TARGETS: &[(&str, &[&str], &[&str])] = &[
    (
        "employees",
        &["emp_no", "birth_date", "first_name"],
        &[
            "emp_no",
            "birth_date",
            "first_name",
            "last_name",
            "gender",
            "hire_date",
        ],
    ),
    (
        "orders",
        &["orderNumber", "orderDate", "requiredDate"],
        &[
            "orderNumber",
            "orderDate",
            "requiredDate",
            "shippedDate",
            "status",
            "customerNumber",
        ],
    ),
    (
        "workorder",
        &["WorkOrderID", "ProductID", "OrderQty"],
        &[
            "WorkOrderID",
            "ProductID",
            "OrderQty",
            "StockedQty",
            "ScrappedQty",
            "StartDate",
            "EndDate",
        ],
    ),
];

fn main() {
    let pipeline = Pipeline::new(PipelineConfig::sized(7, 8, 30));
    let host = GitHost::new();
    pipeline.populate_host(&host);
    let (corpus, _) = pipeline.run(&host);
    println!("corpus: {} tables", corpus.len());

    let engine = QueryEngine::from_corpus(corpus);
    let nc = engine.completion();
    println!("indexed {} distinct schemas\n", nc.len());

    for (name, prefix, full) in TARGETS {
        // k = 10 nearest completions, as in the paper.
        let completions = nc.complete(prefix, 10);
        println!("target: {name}");
        println!("  prefix: {prefix:?}");
        let Some(best) = completions.first() else {
            println!("  (no completion found)\n");
            continue;
        };
        // Pick the most relevant of the 10, Table 8 style.
        let best = completions
            .iter()
            .map(|c| (nc.relevance(full, &c.schema), c))
            .max_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal))
            .map_or(best, |(_, c)| c);
        let relevance = nc.relevance(full, &best.schema);
        println!(
            "  suggested attributes: {:?}",
            best.completion.iter().take(5).collect::<Vec<_>>()
        );
        println!("  full-schema cosine similarity: {relevance:.2}\n");
    }
}
