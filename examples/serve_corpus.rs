//! End-to-end serving demo: build a corpus, persist it to a sharded
//! store, load it into a [`QueryEngine`], serve it over HTTP, and query
//! it with the bundled client — the full `gittables serve` round trip in
//! one process.
//!
//! ```sh
//! cargo run --release --example serve_corpus
//! ```

use std::sync::Arc;

use gittables_core::{Pipeline, PipelineConfig};
use gittables_githost::GitHost;
use gittables_serve::{client, QueryEngine, Server, ServerConfig};

fn main() {
    // Build once, persist, reload — the server never re-runs extraction.
    let pipeline = Pipeline::new(PipelineConfig::sized(21, 6, 12));
    let host = GitHost::new();
    pipeline.populate_host(&host);
    let (corpus, _) = pipeline.run(&host);
    let dir = std::env::temp_dir().join(format!("gt_serve_example_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    gittables_corpus::save_store(&corpus, &dir, 64).expect("save store");
    let engine = QueryEngine::load(&dir).expect("load store");
    println!(
        "serving {} tables, {} semantic types",
        engine.num_tables(),
        engine.type_index().len()
    );

    let handle = Server::start(
        Arc::new(engine),
        "127.0.0.1:0",
        ServerConfig {
            threads: 2,
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let addr = handle.addr();
    println!("listening on http://{addr}\n");

    for target in [
        "/health",
        "/search?q=status+and+sales+amount+per+product&k=3",
        "/types",
        "/tables/0",
        "/metrics",
    ] {
        let (status, body) = client::get(addr, target).expect("request");
        let preview: String = body.chars().take(120).collect();
        println!("GET {target}\n  {status} {preview}...\n");
    }

    handle.shutdown();
    println!("server drained");
    std::fs::remove_dir_all(&dir).ok();
}
