//! Quickstart: build a small GitTables-style corpus end-to-end and inspect it.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use gittables_core::{Pipeline, PipelineConfig};
use gittables_corpus::CorpusStats;
use gittables_githost::GitHost;

fn main() {
    // 1. Configure a small pipeline (3 topics, a dozen repositories each).
    let config =
        PipelineConfig::sized(/* seed */ 42, /* topics */ 5, /* repos */ 20);
    let pipeline = Pipeline::new(config);

    // 2. Populate the simulated GitHub with CSV-bearing repositories.
    let host = GitHost::new();
    pipeline.populate_host(&host);
    println!(
        "host populated: {} repositories, {} files",
        host.repo_count(),
        host.file_count()
    );

    // 3. Run the pipeline: extract → parse → curate → annotate → anonymize.
    let (corpus, report) = pipeline.run(&host);
    println!("\npipeline report");
    println!("  fetched       : {}", report.fetched);
    println!(
        "  parsed        : {} ({:.1}%)",
        report.parsed,
        100.0 * report.parse_rate()
    );
    println!("  parse failures: {}", report.parse_failed);
    for (reason, count) in &report.filtered {
        println!("  filtered[{reason}]: {count}");
    }
    println!("  kept          : {}", report.kept);
    println!(
        "  PII columns   : {} ({:.2}%)",
        report.pii_columns,
        100.0 * report.pii_rate()
    );

    // 4. Corpus statistics (paper Table 1 / §4.1).
    let stats = CorpusStats::of(&corpus);
    println!("\ncorpus statistics");
    println!("  tables      : {}", stats.tables);
    println!("  avg rows    : {:.1}", stats.avg_rows);
    println!("  avg columns : {:.1}", stats.avg_columns);
    let (num, string, other) = stats.atomic_fractions;
    println!(
        "  atomic types: {:.1}% numeric / {:.1}% string / {:.1}% other",
        100.0 * num,
        100.0 * string,
        100.0 * other
    );

    // 5. Show one annotated table, Fig. 2 style.
    if let Some(at) = corpus
        .tables
        .iter()
        .max_by_key(|t| t.semantic_schema.annotations.len())
    {
        println!(
            "\nsample annotated table: {} ({})",
            at.table.name(),
            at.table.provenance().url()
        );
        for ann in at.semantic_schema.annotations.iter().take(8) {
            let col = at.table.column(ann.column).expect("annotated column");
            println!(
                "  column {:<20} -> {:<20} (confidence {:.2})",
                format!("{:?}", col.name()),
                ann.label,
                ann.similarity
            );
        }
    }
}
