//! SQL-dump ingestion: build a mixed CSV + SQL corpus and inspect both
//! ingestion paths (ISSUE 9).
//!
//! ```sh
//! cargo run --release --example sql_corpus
//! ```
//!
//! Half the synthesized repository files are SQL dumps (MySQL, Postgres,
//! SQLite, or ANSI flavored); the pipeline sniffs each file's kind from
//! its path, routes it to the CSV or SQL reader, and both kinds land in
//! the same annotated corpus. A dump with several `CREATE`/`INSERT`
//! sections yields several corpus tables sharing one file's provenance.

use gittables_core::{Pipeline, PipelineConfig};
use gittables_githost::GitHost;
use gittables_tablesql::{read_sql_tables, SqlReadOptions};

fn main() {
    // 1. A small pipeline where half the synthesized files are SQL dumps.
    //    `sql_file_prob: 0.0` (the default) reproduces the historical
    //    CSV-only corpora bit for bit; any higher share mixes in dumps.
    let config = PipelineConfig {
        sql_file_prob: 0.5,
        ..PipelineConfig::sized(/* seed */ 42, /* topics */ 4, /* repos */ 16)
    };
    let pipeline = Pipeline::new(config);
    let host = GitHost::new();
    pipeline.populate_host(&host);

    // 2. Peek at one synthesized dump before the pipeline eats it.
    let (raw_files, _) = pipeline.extract_all(&host);
    let raw = raw_files
        .iter()
        .find(|f| f.path.ends_with(".sql"))
        .expect("a SQL dump was synthesized");
    println!("sample dump: {}/{}", raw.repository, raw.path);
    let parsed =
        read_sql_tables(&raw.content, &SqlReadOptions::default()).expect("synthesized dumps parse");
    println!("  dialect   : {:?}", parsed.dialect);
    println!("  statements: {}", parsed.statements);
    for t in &parsed.tables {
        println!(
            "  table {:<24} {} columns x {} rows",
            t.name,
            t.header.len(),
            t.num_rows()
        );
    }

    // 3. Run the full pipeline over the mixed host.
    let (corpus, report) = pipeline.run_parallel(&host);
    let sql_tables = corpus
        .tables
        .iter()
        .filter(|at| at.table.provenance().path.ends_with(".sql"))
        .count();
    println!("\npipeline report");
    println!("  fetched      : {} files", report.fetched);
    println!("  parsed       : {} files", report.parsed);
    println!("  parse failed : {} files", report.parse_failed);
    println!(
        "  kept         : {} tables ({} from SQL dumps, {} from CSV)",
        report.kept,
        sql_tables,
        report.kept - sql_tables
    );

    // 4. Both kinds flow through the same annotation stages: show one
    //    annotated table that came from a dump.
    if let Some(at) = corpus
        .tables
        .iter()
        .filter(|at| at.table.provenance().path.ends_with(".sql"))
        .max_by_key(|at| at.semantic_schema.annotations.len())
    {
        println!(
            "\nannotated SQL table: {} (from {})",
            at.table.name(),
            at.table.provenance().url()
        );
        for ann in at.semantic_schema.annotations.iter().take(6) {
            let col = at.table.column(ann.column).expect("annotated column");
            println!(
                "  column {:<20} -> {:<20} (confidence {:.2})",
                format!("{:?}", col.name()),
                ann.label,
                ann.similarity
            );
        }
    }
}
