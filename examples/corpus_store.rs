//! Demonstrates the sharded corpus store: a store-backed pipeline run, an
//! incremental resume that skips every committed shard, and a save/load
//! round-trip of the monolithic corpus through the sharded layout.
//!
//! ```sh
//! cargo run --release --example corpus_store
//! ```

use gittables::{load_store, save_store, CorpusStore, Pipeline, PipelineConfig};
use gittables_githost::GitHost;

fn main() {
    let dir = std::env::temp_dir().join(format!("gittables_store_example_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    let pipeline = Pipeline::new(PipelineConfig::sized(42, 3, 12));
    let host = GitHost::new();
    pipeline.populate_host(&host);

    // Reference: the in-memory parallel run.
    let (reference, reference_report) = pipeline.run_parallel(&host);
    println!(
        "in-memory run : {} tables, {} columns",
        reference.len(),
        reference_report.total_columns
    );

    // A bounded store run simulates an interrupted build: only 4 repository
    // shards are committed before "the crash".
    let store = CorpusStore::create(dir.join("pipeline"), pipeline.corpus_name()).expect("create");
    let partial = pipeline
        .run_to_store_bounded(&host, &store, Some(4))
        .expect("bounded run");
    println!(
        "interrupted   : {} shards committed, {} tables durable",
        partial.shards_written,
        partial.corpus.len()
    );

    // Resume: already-committed shards are skipped, the rest is processed,
    // and the result is identical to the uninterrupted run.
    let resumed = pipeline.run_to_store(&host, &store).expect("resume");
    println!(
        "resumed       : {} new shards, {} skipped, {} tables",
        resumed.shards_written,
        resumed.shards_skipped,
        resumed.corpus.len()
    );
    assert_eq!(resumed.corpus, reference, "resumed corpus must match");
    assert_eq!(resumed.report, reference_report, "merged report must match");
    println!("resume output is bit-identical to the uninterrupted run ✓");

    // Monolithic corpus → sharded store → corpus round-trip.
    let store_dir = dir.join("converted");
    let converted = save_store(&reference, &store_dir, 32).expect("save_store");
    let loaded = load_store(&store_dir).expect("load_store");
    assert_eq!(loaded, reference, "store round-trip must be lossless");
    println!(
        "save/load     : {} tables across {} shards round-trip losslessly ✓",
        converted.len(),
        converted.num_shards()
    );

    std::fs::remove_dir_all(&dir).ok();
}
