//! Data search over table schemas (paper §5.3, Fig. 6b): natural-language
//! queries against embedded table schemas.
//!
//! The search index is built by the shared [`QueryEngine`] constructor —
//! the exact same code path the `gittables serve` HTTP subsystem uses —
//! so what this example prints is what `/search?q=...` serves.
//!
//! ```sh
//! cargo run --release --example data_search
//! ```

use gittables_core::{Pipeline, PipelineConfig};
use gittables_githost::GitHost;
use gittables_serve::QueryEngine;

fn main() {
    let pipeline = Pipeline::new(PipelineConfig::sized(13, 8, 25));
    let host = GitHost::new();
    pipeline.populate_host(&host);
    let (corpus, _) = pipeline.run(&host);
    let engine = QueryEngine::from_corpus(corpus);
    println!("indexed {} tables\n", engine.search_index().len());

    let queries = [
        "status and sales amount per product", // Fig. 6b's query
        "species observed per country",
        "employee names and salaries",
        "match scores per team and season",
    ];
    for q in queries {
        println!("query: {q:?}");
        for hit in engine.search(q, 3) {
            let corpus = engine.corpus().expect("in-memory engine");
            let table = &corpus.tables[hit.table_index].table;
            println!(
                "  {:.2}  {:<28} {}",
                hit.score,
                table.provenance().url(),
                hit.schema
            );
        }
        println!();
    }

    // Show the top table's contents for the paper's query, Fig. 6b style.
    if let Some(hit) = engine.search(queries[0], 1).first() {
        let corpus = engine.corpus().expect("in-memory engine");
        let table = &corpus.tables[hit.table_index].table;
        println!("top table for {:?}:", queries[0]);
        let header = table.schema();
        println!("  {}", header.attributes().join(" | "));
        for r in 0..table.num_rows().min(4) {
            let row = table.row(r).expect("row in range");
            println!("  {}", row.join(" | "));
        }
    }
}
