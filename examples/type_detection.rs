//! Semantic column type detection (paper §5.1, Table 7): train a
//! Sherlock-style model on GitTables columns and compare against a
//! web-table-trained model.
//!
//! ```sh
//! cargo run --release --example type_detection
//! ```

use gittables_core::apps::type_detection::{
    build_type_dataset, build_webtable_type_dataset, train_eval_cross, train_sherlock,
    TypeDetectionConfig,
};
use gittables_core::{Pipeline, PipelineConfig};
use gittables_githost::GitHost;
use gittables_ml::FeatureExtractor;
use gittables_synth::WebTableGenerator;

fn main() {
    let pipeline = Pipeline::new(PipelineConfig::sized(5, 12, 30));
    let host = GitHost::new();
    pipeline.populate_host(&host);
    let (corpus, _) = pipeline.run(&host);

    let config = TypeDetectionConfig {
        per_type: 80, // the paper uses 500; scaled down for the example
        folds: 3,
        ..Default::default()
    };
    let extractor = FeatureExtractor::default();

    let git = build_type_dataset(&corpus, &config, &extractor);
    println!(
        "GitTables dataset: {} columns over {:?}",
        git.len(),
        config.types
    );

    let web_tables = WebTableGenerator::new(1).generate_many(4000);
    let web = build_webtable_type_dataset(&web_tables, &config, &extractor);
    println!("web-table dataset: {} columns\n", web.len());

    let git_cv = train_sherlock(&git, &config);
    println!(
        "train GitTables  → eval GitTables : macro F1 {:.2} (±{:.2})",
        git_cv.mean_macro_f1, git_cv.std_macro_f1
    );
    let web_cv = train_sherlock(&web, &config);
    println!(
        "train web tables → eval web tables: macro F1 {:.2} (±{:.2})",
        web_cv.mean_macro_f1, web_cv.std_macro_f1
    );
    let (_, cross_f1) = train_eval_cross(&web, &git, &config);
    println!("train web tables → eval GitTables : macro F1 {cross_f1:.2}");
    println!("\npaper's Table 7 shape: in-corpus scores high; the cross-corpus");
    println!("score drops, showing web-table models do not generalize.");
}
