//! Recombining snapshot tables through unions (paper §4.1): repositories
//! holding daily dumps of the same database are detected and their tables
//! unioned into one larger table.
//!
//! ```sh
//! cargo run --release --example snapshot_union
//! ```

use gittables_core::{Pipeline, PipelineConfig};
use gittables_corpus::{union_groups, union_tables};
use gittables_githost::GitHost;
use gittables_synth::repo::{RepoConfig, RepoGenerator};
use gittables_synth::wordnet::topic_subset;

fn main() {
    // Populate with an elevated snapshot-repository share so the effect is
    // easy to see in a small run.
    let config = PipelineConfig {
        topics: topic_subset(3),
        repos_per_topic: 25,
        ..PipelineConfig::small(2024)
    };
    let pipeline = Pipeline::new(config);
    let host = GitHost::new();
    let gen = RepoGenerator::with_config(
        2024,
        RepoConfig {
            snapshot_prob: 0.25,
            ..Default::default()
        },
    );
    for topic in &pipeline.config.topics {
        for i in 0..pipeline.config.repos_per_topic {
            let spec = gen.generate(topic, i);
            host.add_repository(gittables_githost::Repository {
                full_name: spec.full_name,
                license: spec.license,
                fork: spec.fork,
                files: spec
                    .files
                    .into_iter()
                    .map(|f| gittables_githost::RepoFile::new(f.path, f.content))
                    .collect(),
            });
        }
    }
    let (corpus, _) = pipeline.run(&host);
    println!("corpus: {} tables", corpus.len());

    let groups = union_groups(&corpus, 3);
    println!(
        "union groups (≥3 same-schema tables in one repo): {}\n",
        groups.len()
    );
    for group in groups.iter().take(5) {
        let unioned = union_tables(&corpus, group).expect("compatible by construction");
        let member_rows: Vec<usize> = group
            .members
            .iter()
            .map(|&i| corpus.tables[i].table.num_rows())
            .collect();
        println!(
            "{}: {} snapshots with rows {:?} -> unioned table {} x {}",
            group.repository,
            group.members.len(),
            &member_rows[..member_rows.len().min(6)],
            unioned.num_rows(),
            unioned.num_columns()
        );
    }
}
