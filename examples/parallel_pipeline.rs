//! Demonstrates the rayon-backed `Pipeline::run_parallel`: same corpus
//! and report as the serial `run`, with per-repository fan-out.
//!
//! ```sh
//! cargo run --release --example parallel_pipeline
//! ```

use std::time::Instant;

use gittables_core::{Pipeline, PipelineConfig};
use gittables_githost::GitHost;

fn main() {
    // Single-worker serial baseline vs the sharded rayon fan-out.
    let serial = Pipeline::new(PipelineConfig {
        workers: 1,
        ..PipelineConfig::sized(42, 3, 12)
    });
    let parallel = Pipeline::new(PipelineConfig::sized(42, 3, 12));
    let host = GitHost::new();
    serial.populate_host(&host);

    let t0 = Instant::now();
    let (serial_corpus, serial_report) = serial.run(&host);
    let serial_time = t0.elapsed();

    let t1 = Instant::now();
    let (parallel_corpus, parallel_report) = parallel.run_parallel(&host);
    let parallel_time = t1.elapsed();

    println!(
        "serial   : {} tables, {} columns in {serial_time:?}",
        serial_corpus.len(),
        serial_report.total_columns
    );
    println!(
        "parallel : {} tables, {} columns in {parallel_time:?}",
        parallel_corpus.len(),
        parallel_report.total_columns
    );
    assert_eq!(serial_report, parallel_report, "reports must match exactly");
    assert_eq!(serial_corpus, parallel_corpus, "corpora must match exactly");
    println!("parallel output is bit-identical to serial ✓");
}
