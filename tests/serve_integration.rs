//! Integration tests for the `gittables_serve` subsystem: every endpoint's
//! JSON must be byte-identical to the corresponding in-process engine call
//! on the same stored corpus, under serial and concurrent access, and
//! graceful shutdown must not lose accepted requests.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use gittables_core::{Pipeline, PipelineConfig};
use gittables_githost::GitHost;
use gittables_serve::{client, ErrorResponse, MetricsSnapshot, QueryEngine, Server, ServerConfig};

fn corpus(seed: u64) -> gittables_corpus::Corpus {
    let pipeline = Pipeline::new(PipelineConfig::sized(seed, 6, 12));
    let host = GitHost::new();
    pipeline.populate_host(&host);
    pipeline.run(&host).0
}

fn tmp(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "gt_serve_{tag}_{}_{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Starts a server over a store-loaded engine and returns both.
fn served_engine(
    seed: u64,
    tag: &str,
    config: ServerConfig,
) -> (
    Arc<QueryEngine>,
    gittables_serve::ServerHandle,
    std::path::PathBuf,
) {
    let c = corpus(seed);
    let dir = tmp(tag);
    gittables_corpus::save_store(&c, &dir, 32).expect("save store");
    let engine = Arc::new(QueryEngine::load(&dir).expect("load store"));
    // Loading must reproduce the corpus bit-identically (no sidecars
    // were written, so this boots via the materialized rebuild path).
    assert_eq!(engine.corpus(), Some(&c));
    let handle = Server::start(engine.clone(), "127.0.0.1:0", config).expect("bind");
    (engine, handle, dir)
}

#[test]
fn every_endpoint_equals_in_process_answer() {
    let (engine, handle, dir) = served_engine(71, "equiv", ServerConfig::default());
    let addr = handle.addr();

    // A label and table id that actually exist in this corpus.
    let label = engine
        .type_index()
        .labels()
        .first()
        .cloned()
        .expect("annotated corpus");
    let last_id = engine.num_tables() - 1;

    // (target, expected in-process JSON) pairs covering every endpoint.
    let label_path = label.replace(' ', "%20");
    let cases: Vec<(String, String)> = vec![
        (
            "/health".to_string(),
            serde_json::to_string(&engine.health()).unwrap(),
        ),
        (
            "/search?q=status+and+sales+amount+per+product&k=5".to_string(),
            serde_json::to_string(&engine.search("status and sales amount per product", 5))
                .unwrap(),
        ),
        (
            "/search?q=species%20observed&k=3".to_string(),
            serde_json::to_string(&engine.search("species observed", 3)).unwrap(),
        ),
        (
            "/complete?prefix=order_id,order_date&k=4".to_string(),
            serde_json::to_string(&engine.complete(&["order_id", "order_date"], 4)).unwrap(),
        ),
        (
            "/complete?prefix=id&k=2".to_string(),
            serde_json::to_string(&engine.complete(&["id"], 2)).unwrap(),
        ),
        (
            "/types".to_string(),
            serde_json::to_string(&engine.type_counts()).unwrap(),
        ),
        (
            format!("/types/{label_path}/tables"),
            serde_json::to_string(&engine.type_tables(&label).unwrap()).unwrap(),
        ),
        (
            "/tables/0".to_string(),
            serde_json::to_string(&engine.table_summary(0).unwrap()).unwrap(),
        ),
        (
            format!("/tables/{last_id}"),
            serde_json::to_string(&engine.table_summary(last_id).unwrap()).unwrap(),
        ),
    ];
    for (target, expected) in &cases {
        let (status, body) = client::get(addr, target).expect("request");
        assert_eq!(status, 200, "{target}");
        assert_eq!(&body, expected, "served JSON diverged for {target}");
    }

    // Repeat through one keep-alive connection: cache replay must serve
    // the exact same bytes.
    let mut ka = client::HttpClient::connect(addr).expect("connect");
    for (target, expected) in &cases {
        let (status, body) = ka.get(target).expect("keep-alive request");
        assert_eq!(status, 200);
        assert_eq!(&body, expected, "cached replay diverged for {target}");
    }

    handle.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn error_statuses_and_bodies() {
    let (_engine, handle, dir) = served_engine(72, "errors", ServerConfig::default());
    let addr = handle.addr();

    let cases = [
        ("/search?k=3", 400),              // missing q
        ("/search?q=x&k=notanumber", 400), // bad k
        ("/complete?k=2", 400),            // missing prefix
        ("/types/zzz_not_a_type/tables", 404),
        ("/tables/notanid", 400),
        ("/tables/99999999", 404),
        ("/absolutely/unrouted", 404),
    ];
    for (target, expected_status) in cases {
        let (status, body) = client::get(addr, target).expect("request");
        assert_eq!(status, expected_status, "{target}: {body}");
        let err: ErrorResponse = serde_json::from_str(&body).expect("error body is JSON");
        assert!(!err.error.is_empty(), "{target}");
    }

    // Non-GET methods are rejected with 405 (raw socket: the client
    // helper only speaks GET).
    let mut s = TcpStream::connect(addr).unwrap();
    // `Connection: close` so read_to_string returns as soon as the 405
    // is written instead of waiting out the keep-alive timeout.
    s.write_all(b"DELETE /types HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")
        .unwrap();
    let mut resp = String::new();
    s.read_to_string(&mut resp).unwrap();
    assert!(resp.starts_with("HTTP/1.1 405"), "{resp}");

    // A malformed request line gets 400, not a hang or a panic.
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(b"NONSENSE\r\n\r\n").unwrap();
    let mut resp = String::new();
    s.read_to_string(&mut resp).unwrap();
    assert!(resp.starts_with("HTTP/1.1 400"), "{resp}");

    // Protocol-level failures (405, malformed 400) are visible in
    // /metrics alongside the routed errors: 7 routed + 2 protocol.
    let snap = handle.metrics_snapshot();
    assert!(snap.client_errors >= 9, "{snap:?}");

    handle.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn metrics_report_counts_latency_and_cache() {
    let (_engine, handle, dir) = served_engine(73, "metrics", ServerConfig::default());
    let addr = handle.addr();

    let target = "/search?q=employee+salaries&k=3";
    let (s1, first) = client::get(addr, target).expect("first");
    let (s2, second) = client::get(addr, target).expect("second");
    assert_eq!((s1, s2), (200, 200));
    assert_eq!(first, second, "cache replay must be byte-identical");
    client::get(addr, "/no/such/route").expect("404 route");

    let (status, body) = client::get(addr, "/metrics").expect("metrics");
    assert_eq!(status, 200);
    let snap: MetricsSnapshot = serde_json::from_str(&body).expect("metrics JSON");
    assert!(snap.total_requests >= 3, "{snap:?}");
    assert!(snap.client_errors >= 1, "{snap:?}");
    let search = snap
        .requests
        .iter()
        .find(|r| r.endpoint == "search")
        .unwrap();
    assert_eq!(search.count, 2, "{snap:?}");
    assert!(snap.cache.hits >= 1, "second request must hit: {snap:?}");
    assert!(snap.cache.entries >= 1);
    // Handler latencies are recorded: the histogram produced quantiles.
    assert!(snap.p99_us >= snap.p50_us);

    handle.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn concurrent_clients_get_byte_identical_answers() {
    let (engine, handle, dir) = served_engine(
        74,
        "conc",
        ServerConfig {
            threads: 4,
            cache_capacity: 0, // exercise the full handler path on every request
            ..ServerConfig::default()
        },
    );
    let addr = handle.addr();

    // Expected bodies computed serially, in-process.
    let queries = [
        "status and sales amount per product",
        "species observed per country",
        "employee names and salaries",
        "match scores per team and season",
        "order id and total price",
        "habitat of species",
    ];
    let expected: Vec<(String, String)> = queries
        .iter()
        .map(|q| {
            (
                format!("/search?q={}&k=5", q.replace(' ', "+")),
                serde_json::to_string(&engine.search(q, 5)).unwrap(),
            )
        })
        .collect();

    let expected = Arc::new(expected);
    let mut threads = Vec::new();
    for t in 0..8 {
        let expected = expected.clone();
        threads.push(std::thread::spawn(move || {
            let mut client = client::HttpClient::connect(addr).expect("connect");
            for i in 0..30 {
                let (target, want) = &expected[(t + i) % expected.len()];
                let (status, body) = client.get(target).expect("request");
                assert_eq!(status, 200, "{target}");
                assert_eq!(
                    &body, want,
                    "thread {t} iteration {i} diverged for {target}"
                );
            }
        }));
    }
    for th in threads {
        th.join().expect("hammer thread");
    }

    let snap = handle.metrics_snapshot();
    assert!(snap.total_requests >= 8 * 30, "{snap:?}");
    handle.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn graceful_shutdown_under_load_loses_no_accepted_request() {
    let (engine, handle, dir) = served_engine(
        75,
        "drain",
        ServerConfig {
            threads: 3,
            ..ServerConfig::default()
        },
    );
    let addr = handle.addr();
    let target = "/search?q=status+and+sales&k=4";
    let expected = serde_json::to_string(&engine.search("status and sales", 4)).unwrap();

    let shutting_down = Arc::new(AtomicBool::new(false));
    let successes = Arc::new(AtomicUsize::new(0));
    let mut threads = Vec::new();
    for _ in 0..4 {
        let shutting_down = shutting_down.clone();
        let successes = successes.clone();
        let expected = expected.clone();
        threads.push(std::thread::spawn(move || {
            let mut client = match client::HttpClient::connect(addr) {
                Ok(c) => c,
                Err(_) => return,
            };
            loop {
                match client.get(target) {
                    Ok((status, body)) => {
                        // Every response ever received must be complete and
                        // correct — a drained server may refuse new work but
                        // never truncates or corrupts an answered request.
                        assert_eq!(status, 200);
                        assert_eq!(body, expected, "response corrupted");
                        successes.fetch_add(1, Ordering::SeqCst);
                    }
                    Err(_) => {
                        // Failures may only happen once shutdown began.
                        assert!(
                            shutting_down.load(Ordering::SeqCst),
                            "request failed before shutdown was requested"
                        );
                        return;
                    }
                }
            }
        }));
    }

    // Let the hammer run, then drain mid-load.
    std::thread::sleep(std::time::Duration::from_millis(300));
    shutting_down.store(true, Ordering::SeqCst);
    handle.request_shutdown();
    for t in threads {
        t.join().expect("client thread");
    }
    assert!(
        successes.load(Ordering::SeqCst) > 0,
        "hammer never got a response"
    );
    handle.join();

    // Fully drained: new connections are refused (or reset immediately).
    assert!(
        client::get(addr, "/health").is_err(),
        "server still answering after drain"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn shutdown_endpoint_not_starved_by_persistent_keep_alive_clients() {
    // Regression: with every worker pinned to a long-lived keep-alive
    // connection, a queued /shutdown connection must still get picked up
    // — connection recycling (max_requests_per_connection) guarantees a
    // worker frees up.
    let (_engine, handle, dir) = served_engine(
        78,
        "starve",
        ServerConfig {
            threads: 2,
            max_requests_per_connection: 8,
            ..ServerConfig::default()
        },
    );
    let addr = handle.addr();

    let stop = Arc::new(AtomicBool::new(false));
    let mut hammers = Vec::new();
    for _ in 0..2 {
        let stop = stop.clone();
        hammers.push(std::thread::spawn(move || {
            // HttpClient reconnects transparently when the server
            // recycles the connection, keeping the workers saturated.
            let mut client = match client::HttpClient::connect(addr) {
                Ok(c) => c,
                Err(_) => return,
            };
            while !stop.load(Ordering::SeqCst) {
                if client.get("/health").is_err() {
                    return; // server draining
                }
            }
        }));
    }

    // Give the hammers time to pin both workers, then ask a third
    // client for a graceful drain; it must not hang.
    std::thread::sleep(std::time::Duration::from_millis(200));
    let (status, body) = client::get(addr, "/shutdown").expect("shutdown not starved");
    assert_eq!(status, 200, "{body}");
    handle.join();
    stop.store(true, Ordering::SeqCst);
    for h in hammers {
        h.join().expect("hammer thread");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn shutdown_endpoint_drains_the_server() {
    let (_engine, handle, dir) = served_engine(76, "shutdownep", ServerConfig::default());
    let addr = handle.addr();

    let (status, body) = client::get(addr, "/shutdown").expect("shutdown request");
    assert_eq!(status, 200);
    assert!(body.contains("draining"), "{body}");

    // join() must return on its own: the endpoint triggered the drain.
    handle.join();
    assert!(client::get(addr, "/health").is_err());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn chunked_requests_rejected_with_501_and_close() {
    // Regression: the server frames bodies by Content-Length only. A
    // chunked request used to be parsed as if it had no body, leaving
    // the chunk bytes in the connection buffer to be misread as the
    // next request (framing desync). It must now be refused loudly and
    // the connection closed.
    let (_engine, handle, dir) = served_engine(79, "chunked", ServerConfig::default());
    let addr = handle.addr();

    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(
        b"POST /search HTTP/1.1\r\nHost: t\r\nTransfer-Encoding: chunked\r\n\r\n\
          5\r\nhello\r\n0\r\n\r\n",
    )
    .unwrap();
    let mut resp = String::new();
    s.read_to_string(&mut resp).unwrap(); // EOF: server closed
    assert!(resp.starts_with("HTTP/1.1 501"), "{resp}");
    assert!(resp.contains("Connection: close"), "{resp}");
    // Exactly one response: the chunk body bytes were NOT interpreted
    // as a second (phantom) request.
    assert_eq!(resp.matches("HTTP/1.1").count(), 1, "{resp}");

    // The server remains healthy for the next, fresh connection.
    let (status, _) = client::get(addr, "/health").expect("fresh connection after 501");
    assert_eq!(status, 200);

    handle.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn pipelined_requests_in_one_segment_answered_in_order() {
    // Two complete requests written in a single TCP segment: both must
    // be answered, in order, each byte-identical to the in-process
    // engine's answer — the buffered second request must survive the
    // first response (and must not be lost to event-loop parking).
    let (engine, handle, dir) = served_engine(80, "pipeline", ServerConfig::default());
    let addr = handle.addr();

    let expected_health = serde_json::to_string(&engine.health()).unwrap();
    let expected_search = serde_json::to_string(&engine.search("total price", 3)).unwrap();

    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(
        b"GET /health HTTP/1.1\r\nHost: t\r\n\r\n\
          GET /search?q=total+price&k=3 HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
    )
    .unwrap();
    let mut resp = String::new();
    s.read_to_string(&mut resp).unwrap();
    assert_eq!(resp.matches("HTTP/1.1 200").count(), 2, "{resp}");

    // Walk the byte stream response by response, framing each body by
    // its Content-Length — exactly what a pipelining client would do.
    let mut rest = resp.as_str();
    let mut bodies = Vec::new();
    while let Some(head_end) = rest.find("\r\n\r\n") {
        let head = &rest[..head_end];
        let len: usize = head
            .lines()
            .find_map(|l| l.strip_prefix("Content-Length: "))
            .expect("Content-Length header")
            .trim()
            .parse()
            .unwrap();
        let body_start = head_end + 4;
        bodies.push(&rest[body_start..body_start + len]);
        rest = &rest[body_start + len..];
    }
    assert_eq!(bodies.len(), 2, "{resp}");
    assert_eq!(bodies[0], expected_health, "first pipelined response");
    assert_eq!(bodies[1], expected_search, "second pipelined response");

    handle.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn smoke_health_and_search_roundtrip() {
    // The CI smoke test in miniature: ephemeral port, /health, one
    // /search, valid JSON, drain.
    let (engine, handle, dir) = served_engine(77, "smoke", ServerConfig::default());
    let addr = handle.addr();

    let (status, body) = client::get(addr, "/health").expect("health");
    assert_eq!(status, 200);
    let health: gittables_serve::HealthResponse = serde_json::from_str(&body).expect("json");
    assert_eq!(health.status, "ok");
    assert_eq!(health.tables, engine.num_tables());

    let (status, body) = client::get(addr, "/search?q=total+price&k=3").expect("search");
    assert_eq!(status, 200);
    let hits: Vec<gittables_core::apps::SearchHit> = serde_json::from_str(&body).expect("json");
    assert!(hits.len() <= 3);

    handle.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
