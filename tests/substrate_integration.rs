//! Cross-crate integration tests of the substrates themselves: extraction
//! against the simulated host, ontology metadata completeness, and the
//! synthetic corpus' statistical contracts.

use gittables_core::extract_topic;
use gittables_core::{Pipeline, PipelineConfig};
use gittables_githost::{GitHost, RepoFile, Repository};
use gittables_ontology::{dbpedia, schema_org};
use gittables_synth::repo::RepoGenerator;
use gittables_synth::wordnet::{topic_subset, topics};

#[test]
fn pipeline_on_empty_host_yields_empty_corpus() {
    let pipeline = Pipeline::new(PipelineConfig::small(1));
    let host = GitHost::new();
    let (corpus, report) = pipeline.run(&host);
    assert!(corpus.is_empty());
    assert_eq!(report.fetched, 0);
    assert_eq!(report.parse_rate(), 0.0);
}

#[test]
fn extraction_ignores_forked_duplicates() {
    let host = GitHost::new();
    host.add_repository(Repository {
        full_name: "orig/data".into(),
        license: Some("mit".into()),
        fork: false,
        files: vec![RepoFile::new("a.csv", "id,v\n1,2\n")],
    });
    host.add_repository(Repository {
        full_name: "forker/data".into(),
        license: Some("mit".into()),
        fork: true,
        files: vec![RepoFile::new("a.csv", "id,v\n1,2\n")],
    });
    let (files, stats) = extract_topic(&host, "id", 1000);
    assert_eq!(files.len(), 1);
    assert_eq!(files[0].repository, "orig/data");
    assert_eq!(stats.initial_count, 1);
}

#[test]
fn synthetic_repos_index_and_extract_end_to_end() {
    // RepoGenerator output must be fully consumable by the host + extractor.
    let host = GitHost::new();
    let gen = RepoGenerator::new(5);
    let topic = &topic_subset(1)[0];
    let mut non_fork_files = 0usize;
    for i in 0..20 {
        let spec = gen.generate(topic, i);
        if !spec.fork {
            non_fork_files += spec.files.len();
        }
        host.add_repository(Repository {
            full_name: spec.full_name,
            license: spec.license,
            fork: spec.fork,
            files: spec
                .files
                .into_iter()
                .map(|f| RepoFile::new(f.path, f.content))
                .collect(),
        });
    }
    let (files, _) = extract_topic(&host, &topic.noun, 1000);
    // Every non-fork file is token-indexed under its own topic (the topic
    // appears in the file path) — extraction must find most of them. A few
    // garbage-rendered files may not contain the topic token in content or
    // parseable path tokens.
    assert!(
        files.len() * 10 >= non_fork_files * 9,
        "{} of {} extracted",
        files.len(),
        non_fork_files
    );
}

#[test]
fn ontology_metadata_complete() {
    // §3.4 metadata items (1)-(5): every type has a label and atomic kind;
    // compounds have superclasses that resolve; curated core has domains.
    for ont in [dbpedia(), schema_org()] {
        for ty in ont.types() {
            assert!(!ty.label.is_empty());
            assert_eq!(ty.label, gittables_ontology::normalize_label(&ty.label));
            if let Some(sup) = &ty.superclass {
                assert!(
                    ont.lookup(sup).is_some(),
                    "dangling superclass {sup:?} of {:?} in {}",
                    ty.label,
                    ont.kind()
                );
            }
        }
        // Hierarchies terminate (no cycles reachable from any type).
        for ty in ont.types().iter().step_by(97) {
            let anc = ont.ancestors(ty.id);
            assert!(anc.len() < 16);
        }
    }
}

#[test]
fn wordnet_topics_drive_distinct_content() {
    // Tables retrieved under different topics must differ in provenance and
    // (statistically) in schema vocabulary.
    let mut config = PipelineConfig::small(3);
    config.topics = topics()
        .into_iter()
        .filter(|t| t.noun == "order" || t.noun == "species")
        .collect();
    config.repos_per_topic = 10;
    let pipeline = Pipeline::new(config);
    let host = GitHost::new();
    pipeline.populate_host(&host);
    let (corpus, _) = pipeline.run(&host);
    let order_tables = corpus.topic_subset("order");
    let species_tables = corpus.topic_subset("species");
    assert!(!order_tables.is_empty() && !species_tables.is_empty());
    let has_species_col = |tables: &[&gittables_corpus::AnnotatedTable]| {
        tables.iter().any(|t| {
            t.table
                .columns()
                .iter()
                .any(|c| c.name().to_lowercase().contains("species"))
        })
    };
    assert!(has_species_col(&species_tables));
    assert!(!has_species_col(&order_tables));
}

#[test]
fn pii_anonymization_end_to_end_on_people_topics() {
    // People-domain topics must produce PII columns which the pipeline
    // anonymizes (Table 3 behaviour).
    let mut config = PipelineConfig::small(9);
    config.topics = topics()
        .into_iter()
        .filter(|t| ["employee", "person", "customer"].contains(&t.noun.as_str()))
        .collect();
    config.repos_per_topic = 40;
    let pipeline = Pipeline::new(config);
    let host = GitHost::new();
    pipeline.populate_host(&host);
    let (corpus, report) = pipeline.run(&host);
    assert!(report.pii_columns > 0, "no PII columns anonymized");
    // Anonymized email columns contain the faker domain.
    let fake_emails = corpus.tables.iter().any(|t| {
        t.table
            .columns()
            .iter()
            .any(|c| c.values().iter().any(|v| v.ends_with("@anon.example")))
    });
    assert!(fake_emails, "expected faker-generated emails in the corpus");
}
