//! Integration tests of the sharded corpus store: round-trip fidelity over a
//! fully annotated pipeline corpus, typed errors for every corruption mode,
//! and interrupted-run resume equivalence.

use std::path::PathBuf;

use gittables_core::{Pipeline, PipelineConfig};
use gittables_corpus::store::{
    load_store, save_store, CorpusStore, StoreError, StoreManifest, MANIFEST_FILE,
};
use gittables_corpus::Corpus;
use gittables_githost::GitHost;

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gt_store_it_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn pipeline_corpus(seed: u64) -> Corpus {
    let pipeline = Pipeline::new(PipelineConfig::sized(seed, 3, 8));
    let host = GitHost::new();
    pipeline.populate_host(&host);
    pipeline.run_parallel(&host).0
}

/// Reads, mutates, and atomically rewrites a store's manifest.
fn tamper_manifest(dir: &std::path::Path, mutate: impl FnOnce(&mut StoreManifest)) {
    let path = dir.join(MANIFEST_FILE);
    let text = std::fs::read_to_string(&path).expect("manifest readable");
    let mut manifest: StoreManifest = serde_json::from_str(&text).expect("manifest parses");
    mutate(&mut manifest);
    std::fs::write(&path, serde_json::to_string(&manifest).expect("serialize")).expect("rewrite");
}

#[test]
fn round_trip_is_bit_identical_including_annotations() {
    let dir = tmp("roundtrip");
    let corpus = pipeline_corpus(31);
    assert!(!corpus.is_empty());
    save_store(&corpus, &dir, 5).expect("save");
    let loaded = load_store(&dir).expect("load");
    assert_eq!(corpus, loaded);
    // Corpus equality already covers annotations, but assert the four
    // annotation configurations explicitly so a future PartialEq change
    // cannot silently weaken this guarantee.
    let some_annotations = corpus.tables.iter().zip(&loaded.tables).all(|(a, b)| {
        Corpus::annotation_configs()
            .iter()
            .all(|&(m, o)| a.annotations(m, o) == b.annotations(m, o))
    });
    assert!(some_annotations);
    assert!(
        corpus.tables.iter().any(|t| Corpus::annotation_configs()
            .iter()
            .any(|&(m, o)| !t.annotations(m, o).annotations.is_empty())),
        "corpus should carry non-trivial annotations for the check to mean anything"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn truncated_shard_mid_line_is_typed_json_error() {
    let dir = tmp("trunc_midline");
    save_store(&pipeline_corpus(33), &dir, 4).expect("save");
    let store = CorpusStore::open(&dir).expect("open");
    let entry = &store.shard_entries()[0];
    let path = dir.join(&entry.file);
    let bytes = std::fs::read(&path).expect("shard readable");
    assert!(bytes.len() > 20);
    std::fs::write(&path, &bytes[..bytes.len() - 20]).expect("truncate");
    let err = store.load_corpus().expect_err("must fail");
    assert!(
        matches!(err, StoreError::Json(_)),
        "mid-line truncation should fail JSON parsing, got: {err}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn truncated_shard_at_line_boundary_is_count_mismatch() {
    let dir = tmp("trunc_line");
    save_store(&pipeline_corpus(33), &dir, 4).expect("save");
    let store = CorpusStore::open(&dir).expect("open");
    let entry = store
        .shard_entries()
        .into_iter()
        .find(|e| e.tables > 1)
        .expect("a multi-table shard");
    let path = dir.join(&entry.file);
    let text = std::fs::read_to_string(&path).expect("shard readable");
    let first_line = text.lines().next().expect("non-empty shard");
    std::fs::write(&path, format!("{first_line}\n")).expect("truncate to one line");
    let err = store.load_corpus().expect_err("must fail");
    match err {
        StoreError::TableCountMismatch {
            id,
            expected,
            actual,
        } => {
            assert_eq!(id, entry.id);
            assert_eq!(expected, entry.tables);
            assert_eq!(actual, 1);
        }
        other => panic!("expected TableCountMismatch, got: {other}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn missing_manifest_is_typed() {
    let dir = tmp("nomanifest");
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("stray.jsonl"), "{}\n").unwrap();
    assert!(matches!(
        CorpusStore::open(&dir).expect_err("must fail"),
        StoreError::MissingManifest(_)
    ));
    assert!(matches!(
        load_store(&dir).expect_err("must fail"),
        StoreError::MissingManifest(_)
    ));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn missing_shard_file_is_typed() {
    let dir = tmp("missing_shard");
    save_store(&pipeline_corpus(35), &dir, 6).expect("save");
    let store = CorpusStore::open(&dir).expect("open");
    let entry = &store.shard_entries()[0];
    std::fs::remove_file(dir.join(&entry.file)).expect("delete shard");
    match store.load_corpus().expect_err("must fail") {
        StoreError::MissingShard { id } => assert_eq!(id, entry.id),
        other => panic!("expected MissingShard, got: {other}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn manifest_count_mismatch_is_typed() {
    let dir = tmp("count");
    save_store(&pipeline_corpus(37), &dir, 6).expect("save");
    tamper_manifest(&dir, |m| m.shards[0].tables += 1);
    let err = load_store(&dir).expect_err("must fail");
    assert!(
        matches!(err, StoreError::TableCountMismatch { .. }),
        "got: {err}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn manifest_fingerprint_mismatch_is_typed() {
    let dir = tmp("fingerprint");
    save_store(&pipeline_corpus(39), &dir, 6).expect("save");
    tamper_manifest(&dir, |m| {
        m.shards[0].fingerprint = m.shards[0].fingerprint.wrapping_add(1);
    });
    let err = load_store(&dir).expect_err("must fail");
    assert!(
        matches!(err, StoreError::FingerprintMismatch { .. }),
        "got: {err}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn edited_shard_content_fails_fingerprint_check() {
    let dir = tmp("edited");
    save_store(&pipeline_corpus(41), &dir, 6).expect("save");
    let store = CorpusStore::open(&dir).expect("open");
    // Reorder the lines of a shard whose first and last tables differ; the
    // order-sensitive fingerprint must notice.
    let (entry, mut lines, path) = store
        .shard_entries()
        .into_iter()
        .find_map(|e| {
            let path = dir.join(&e.file);
            let text = std::fs::read_to_string(&path).ok()?;
            let lines: Vec<String> = text.lines().map(str::to_owned).collect();
            (lines.len() > 1 && lines.first() != lines.last()).then_some((e, lines, path))
        })
        .expect("a shard with two distinct tables");
    let _ = &entry;
    lines.reverse();
    std::fs::write(&path, format!("{}\n", lines.join("\n"))).expect("rewrite");
    let err = store.load_corpus().expect_err("must fail");
    assert!(
        matches!(err, StoreError::FingerprintMismatch { .. }),
        "reordered content must change the order-sensitive fingerprint, got: {err}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn interrupted_then_resumed_equals_uninterrupted() {
    let pipeline = Pipeline::new(PipelineConfig::sized(43, 3, 7));
    let host = GitHost::new();
    pipeline.populate_host(&host);
    let (full_corpus, full_report) = pipeline.run_parallel(&host);

    let dir = tmp("resume");
    let store = CorpusStore::create(&dir, pipeline.corpus_name()).expect("create");
    // "Crash" after k = 3 repository shards.
    let partial = pipeline
        .run_to_store_bounded(&host, &store, Some(3))
        .expect("bounded run");
    assert_eq!(partial.shards_written, 3);
    assert!(partial.corpus.len() < full_corpus.len());

    // Reopen (as a fresh process would) and resume to completion.
    let reopened = CorpusStore::open(&dir).expect("reopen");
    let resumed = pipeline.run_to_store(&host, &reopened).expect("resume");
    assert_eq!(resumed.shards_skipped, 3);
    assert_eq!(resumed.corpus, full_corpus);
    assert_eq!(resumed.report, full_report);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn fresh_repositories_append_to_existing_store() {
    // Build with 5 repos per topic, then grow the config to 7: the resume
    // run keeps every old shard and only processes the new repositories.
    let seed = 45;
    let small = Pipeline::new(PipelineConfig::sized(seed, 3, 5));
    let host_small = GitHost::new();
    small.populate_host(&host_small);

    let dir = tmp("append");
    let store = CorpusStore::create(&dir, small.corpus_name()).expect("create");
    let first = small.run_to_store(&host_small, &store).expect("first run");
    assert!(first.shards_written > 0);

    let grown = Pipeline::new(PipelineConfig::sized(seed, 3, 7));
    let host_grown = GitHost::new();
    grown.populate_host(&host_grown);
    let appended = grown.run_to_store(&host_grown, &store).expect("append run");
    assert_eq!(appended.shards_skipped, first.shards_written);
    assert!(appended.shards_written > 0, "new repositories must appear");

    let (reference, reference_report) = grown.run_parallel(&host_grown);
    assert_eq!(appended.corpus, reference);
    assert_eq!(appended.report, reference_report);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn resume_into_store_of_different_seed_is_rejected() {
    let first = Pipeline::new(PipelineConfig::sized(51, 2, 3));
    let host = GitHost::new();
    first.populate_host(&host);
    let dir = tmp("wrong_seed");
    let store = CorpusStore::create(&dir, first.corpus_name()).expect("create");
    first.run_to_store(&host, &store).expect("first run");

    let other = Pipeline::new(PipelineConfig::sized(52, 2, 3));
    let other_host = GitHost::new();
    other.populate_host(&other_host);
    let err = other
        .run_to_store(&other_host, &store)
        .expect_err("must refuse to mix corpora");
    assert!(
        matches!(err, StoreError::CorpusNameMismatch { .. }),
        "got: {err}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bounded_run_report_partitions_fetched() {
    // A partial (bounded) run's report must still satisfy the stage
    // invariant `parsed + parse_failed == fetched`.
    let pipeline = Pipeline::new(PipelineConfig::sized(53, 3, 6));
    let host = GitHost::new();
    pipeline.populate_host(&host);
    let dir = tmp("bounded_report");
    let store = CorpusStore::create(&dir, pipeline.corpus_name()).expect("create");
    let partial = pipeline
        .run_to_store_bounded(&host, &store, Some(2))
        .expect("bounded");
    assert_eq!(
        partial.report.parsed + partial.report.parse_failed,
        partial.report.fetched,
        "partial report must partition its fetched files"
    );
    assert!(partial.report.fetched > 0);
    let full = pipeline.run_to_store(&host, &store).expect("resume");
    assert_eq!(
        full.report.parsed + full.report.parse_failed,
        full.report.fetched
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Builds, finishes, and commits one single-table shard.
fn commit_one(
    store: &CorpusStore,
    corpus: &Corpus,
    id: &str,
    index: usize,
) -> Result<(), StoreError> {
    let mut writer = store.begin_shard(id)?;
    writer.push(index, &corpus.tables[index])?;
    let entry = writer.finish()?;
    store.commit_shard(entry)
}

/// Failpoint matrix over the store's durability path: an injected I/O
/// failure at any site (shard fsync; manifest write, torn write, fsync,
/// rename; directory fsync) surfaces as a typed [`StoreError::Io`] and
/// never leaves a silently-wrong manifest — on reopen the store is either
/// entirely pre-commit or entirely post-commit, and the failed commit can
/// be retried to success.
#[test]
fn injected_write_failures_are_typed_and_never_tear_the_manifest() {
    use gittables_corpus::failpoint::{self, FailMode};

    let corpus = pipeline_corpus(61);
    assert!(corpus.len() >= 2);

    for (i, site) in [
        "store::shard_fsync",
        "store::manifest_write",
        "store::manifest_fsync",
        "store::manifest_rename",
        "store::dir_fsync",
    ]
    .iter()
    .enumerate()
    {
        let dir = tmp(&format!("fp_err_{i}"));
        let store = CorpusStore::create(&dir, "fp").expect("create");
        failpoint::configure(site, FailMode::Err, 1, dir.to_str());

        let err = commit_one(&store, &corpus, "s0", 0).expect_err(site);
        assert!(matches!(err, StoreError::Io(_)), "{site}: {err}");
        failpoint::clear(site);

        // Reopen as a fresh process would: the on-disk manifest is a
        // complete pre-commit or post-commit state, never torn. Only the
        // dir-fsync site fails *after* the rename (the new manifest is in
        // place, merely of uncertain durability); every earlier site
        // leaves the previous manifest.
        let reopened = CorpusStore::open(&dir).expect("reopen after injected failure");
        let committed = reopened.shard_entries().len();
        match *site {
            "store::dir_fsync" => assert_eq!(committed, 1, "{site}"),
            _ => assert_eq!(committed, 0, "{site}"),
        }
        if committed == 0 {
            commit_one(&reopened, &corpus, "s0", 0).expect("retry succeeds once disarmed");
        }
        let healed = CorpusStore::open(&dir).expect("final open");
        assert_eq!(healed.load_corpus().expect("loadable").len(), 1, "{site}");
        std::fs::remove_dir_all(&dir).ok();
    }

    // Torn manifest write (ENOSPC mid-write): half the bytes land in the
    // temp file, which is garbage — but it was never renamed, so the live
    // manifest still holds exactly the previously committed shard.
    let dir = tmp("fp_short");
    let store = CorpusStore::create(&dir, "fp").expect("create");
    commit_one(&store, &corpus, "s0", 0).expect("first commit");
    failpoint::configure("store::manifest_write", FailMode::Short, 1, dir.to_str());
    let err = commit_one(&store, &corpus, "s1", 1).expect_err("torn write");
    assert!(matches!(err, StoreError::Io(_)), "got: {err}");
    failpoint::clear("store::manifest_write");

    let tmp_file = dir.join(format!("{MANIFEST_FILE}.tmp"));
    let torn = std::fs::read_to_string(&tmp_file).expect("torn temp file exists");
    assert!(
        serde_json::from_str::<StoreManifest>(&torn).is_err(),
        "the torn temp must not parse as a manifest"
    );
    let reopened = CorpusStore::open(&dir).expect("reopen");
    assert_eq!(
        reopened.shard_entries().len(),
        1,
        "live manifest holds exactly the pre-failure commit"
    );
    assert_eq!(reopened.load_corpus().expect("loadable").len(), 1);
    commit_one(&reopened, &corpus, "s1", 1).expect("retry succeeds");
    assert_eq!(
        CorpusStore::open(&dir)
            .unwrap()
            .load_corpus()
            .unwrap()
            .len(),
        2
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn legacy_single_file_format_still_round_trips() {
    // The old monolithic format stays readable behind PersistError.
    let corpus = pipeline_corpus(47);
    let dir = tmp("legacy");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("corpus.json");
    gittables_corpus::persist::save_corpus(&corpus, &path).expect("save");
    let loaded = gittables_corpus::persist::load_corpus(&path).expect("load");
    assert_eq!(corpus, loaded);
    let err = gittables_corpus::persist::load_corpus(&dir.join("nope.json")).expect_err("missing");
    assert!(matches!(
        err,
        gittables_corpus::persist::PersistError::Io(_)
    ));
    std::fs::remove_dir_all(&dir).ok();
}
