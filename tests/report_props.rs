//! Property tests of [`PipelineReport`] counter invariants: the §3.3
//! stage counters must stay mutually consistent for any pipeline input,
//! and merging partial reports must be associative so parallel fan-out
//! cannot change totals.

use std::collections::HashMap;

use gittables_core::{Pipeline, PipelineConfig, PipelineReport, Quarantined};
use gittables_githost::GitHost;
use proptest::prelude::*;

fn report_strategy() -> impl Strategy<Value = PipelineReport> {
    (
        (0usize..500, 0usize..200, 0usize..300),
        (0usize..40, 0usize..2000),
        proptest::collection::vec(("[a-z]{2,10}", 0usize..50), 0..5),
        (0usize..20, 0u64..500, 0usize..5),
        proptest::collection::vec("[a-z]{2,8}/[a-z]{2,8}", 0..4),
    )
        .prop_map(
            |((parsed, parse_failed, kept), (pii, total_columns), tags, fault, repos)| {
                let mut filtered: HashMap<String, usize> = HashMap::new();
                for (tag, n) in tags {
                    *filtered.entry(tag).or_default() += n;
                }
                let (retries, backoff_ms, queries_failed) = fault;
                let mut quarantined_repos: Vec<Quarantined> = repos
                    .into_iter()
                    .map(|name| Quarantined {
                        name,
                        reason: "corrupt content".to_string(),
                    })
                    .collect();
                quarantined_repos.sort();
                quarantined_repos.dedup();
                PipelineReport {
                    fetched: parsed + parse_failed,
                    parsed,
                    parse_failed,
                    filtered,
                    kept: kept.min(parsed),
                    pii_columns: pii.min(total_columns),
                    total_columns,
                    queries_executed: parsed / 10,
                    retries,
                    backoff_ms,
                    queries_failed,
                    quarantined_repos,
                    quarantined_files: Vec::new(),
                }
            },
        )
}

#[allow(clippy::type_complexity)]
fn totals(r: &PipelineReport) -> (usize, usize, usize, usize, usize, usize, usize, usize, u64) {
    (
        r.fetched,
        r.parsed,
        r.parse_failed,
        r.kept,
        r.pii_columns,
        r.total_columns,
        r.queries_executed,
        r.retries,
        r.backoff_ms,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// merge(merge(a, b), c) == merge(a, merge(b, c)) on every counter,
    /// including the per-reason filter map.
    #[test]
    fn merge_is_associative(
        a in report_strategy(),
        b in report_strategy(),
        c in report_strategy(),
    ) {
        let mut left = a.clone();
        left.merge(b.clone());
        left.merge(c.clone());

        let mut bc = b;
        bc.merge(c);
        let mut right = a;
        right.merge(bc);

        prop_assert_eq!(&left, &right);
    }

    /// Merging preserves each counter's sum exactly, and the quarantine
    /// lists union (sorted, deduplicated).
    #[test]
    fn merge_sums_counters(a in report_strategy(), b in report_strategy()) {
        let (af, ap, apf, ak, api, atc, aq, ar, ab) = totals(&a);
        let (bf, bp, bpf, bk, bpi, btc, bq, br, bb) = totals(&b);
        let mut merged = a.clone();
        merged.merge(b.clone());
        prop_assert_eq!(
            totals(&merged),
            (af + bf, ap + bp, apf + bpf, ak + bk, api + bpi, atc + btc, aq + bq, ar + br, ab + bb)
        );
        let a_dropped: usize = a.filtered.values().sum();
        let b_dropped: usize = b.filtered.values().sum();
        let merged_dropped: usize = merged.filtered.values().sum();
        prop_assert_eq!(merged_dropped, a_dropped + b_dropped);
        let mut expected_quarantine: Vec<Quarantined> = a
            .quarantined_repos
            .iter()
            .chain(&b.quarantined_repos)
            .cloned()
            .collect();
        expected_quarantine.sort();
        expected_quarantine.dedup();
        prop_assert_eq!(&merged.quarantined_repos, &expected_quarantine);
    }
}

proptest! {
    // End-to-end runs are expensive; a handful of seeds is enough to
    // exercise scheduling and content variety.
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// For any seed and (small) corpus size, the report of both the
    /// serial and the sharded pipeline satisfies the stage invariants.
    #[test]
    fn report_invariants_hold_end_to_end(
        seed in any::<u64>(),
        topics in 1usize..3,
        repos in 2usize..5,
    ) {
        let pipeline = Pipeline::new(PipelineConfig::sized(seed, topics, repos));
        let host = GitHost::new();
        pipeline.populate_host(&host);
        for report in [pipeline.run(&host).1, pipeline.run_parallel(&host).1] {
            prop_assert_eq!(
                report.parsed + report.parse_failed,
                report.fetched,
                "parse split must partition fetched files"
            );
            prop_assert!(report.kept <= report.parsed, "kept {} > parsed {}", report.kept, report.parsed);
            prop_assert!(
                report.pii_columns <= report.total_columns,
                "pii {} > columns {}",
                report.pii_columns,
                report.total_columns
            );
            let dropped: usize = report.filtered.values().sum();
            prop_assert_eq!(report.parsed - report.kept, dropped, "filtered must account for parsed-but-not-kept");
            prop_assert!((0.0..=1.0).contains(&report.parse_rate()));
            prop_assert!((0.0..=1.0).contains(&report.pii_rate()));
        }
    }
}
