//! The pipeline's per-name annotation cache must be a pure memoization:
//! every annotation set in the corpus must be identical to what the four
//! annotators produce when called directly on each kept table, and the
//! cache counters must reflect one miss per distinct normalized name.

use gittables_annotate::{SemanticAnnotator, SyntacticAnnotator};
use gittables_core::{Pipeline, PipelineConfig};
use gittables_githost::GitHost;

#[test]
fn cached_pipeline_annotations_match_direct_annotators() {
    let pipeline = Pipeline::new(PipelineConfig::small(33));
    let host = GitHost::new();
    pipeline.populate_host(&host);
    let (corpus, _) = pipeline.run_parallel(&host);
    assert!(!corpus.is_empty());

    let syn_dbp = SyntacticAnnotator::new(pipeline.dbpedia().clone());
    let syn_sch = SyntacticAnnotator::new(pipeline.schema_org().clone());
    let sem_dbp = SemanticAnnotator::new(pipeline.dbpedia().clone())
        .with_threshold(pipeline.config.semantic_threshold);
    let sem_sch = SemanticAnnotator::new(pipeline.schema_org().clone())
        .with_threshold(pipeline.config.semantic_threshold);

    for at in &corpus.tables {
        assert_eq!(at.syntactic_dbpedia, syn_dbp.annotate(&at.table));
        assert_eq!(at.syntactic_schema, syn_sch.annotate(&at.table));
        assert_eq!(at.semantic_dbpedia, sem_dbp.annotate(&at.table));
        assert_eq!(at.semantic_schema, sem_sch.annotate(&at.table));
    }
}

#[test]
fn cache_hits_dominate_and_misses_count_distinct_names() {
    use std::collections::HashSet;

    let pipeline = Pipeline::new(PipelineConfig::small(17));
    let host = GitHost::new();
    pipeline.populate_host(&host);
    let (corpus, _) = pipeline.run_parallel(&host);

    let stats = pipeline.annotation_cache_stats();
    // Distinct annotatable normalized names across kept tables is an upper
    // bound on misses (filtered tables may add a few more).
    let mut names: HashSet<String> = HashSet::new();
    let mut lookups = 0u64;
    for at in &corpus.tables {
        for col in at.table.columns() {
            let norm = gittables_ontology::normalize_label(col.name());
            if norm.is_empty() || gittables_ontology::contains_digit(&norm) {
                continue;
            }
            names.insert(norm);
            lookups += 1;
        }
    }
    assert!(
        stats.misses as usize >= names.len(),
        "misses {} < distinct kept-table names {}",
        stats.misses,
        names.len()
    );
    assert!(
        stats.hits + stats.misses >= lookups,
        "cache saw fewer lookups ({}) than kept-table columns ({lookups})",
        stats.hits + stats.misses
    );
    // The paper's observation: a few headers dominate — the hit rate on a
    // synth corpus must be overwhelming for the cache to be worth it.
    assert!(
        stats.hit_rate() > 0.5,
        "unexpectedly low hit rate: {:?}",
        stats
    );

    // A second run over the same host is pure hits: no new distinct names.
    let misses_before = stats.misses;
    let _ = pipeline.run_parallel(&host);
    assert_eq!(pipeline.annotation_cache_stats().misses, misses_before);
}
