//! The crawl daemon end to end: incremental passes converge on the
//! reference corpus, scheduled quarantine drains heal repositories with
//! exponential per-repo cooldown bookkeeping, a pre-set stop flag defers
//! every shard without corrupting the store, and the real binary
//! survives a SIGTERM mid-pass with an intact, resumable store.

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use gittables_core::crawl::{CrawlState, CRAWL_STATE_FILE};
use gittables_core::{crawl, CrawlOptions, FaultPolicy, Pipeline, PipelineConfig, QuarantineLog};
use gittables_corpus::store::CorpusStore;
use gittables_githost::{FaultSpec, FlakyHost, GitHost, HostPool, PoolPolicy};

fn cfg(seed: u64) -> PipelineConfig {
    PipelineConfig {
        fault: FaultPolicy {
            sleep: false,
            ..FaultPolicy::default()
        },
        ..PipelineConfig::small(seed)
    }
}

fn populated(pipeline: &Pipeline) -> GitHost {
    let host = GitHost::new();
    pipeline.populate_host(&host);
    host
}

fn temp_store(pipeline: &Pipeline, name: &str) -> (std::path::PathBuf, CorpusStore) {
    let dir = std::env::temp_dir().join(format!(
        "gt_crawl_{name}_{}_{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    let store = CorpusStore::create(&dir, pipeline.corpus_name()).unwrap();
    (dir, store)
}

/// Options tuned for tests: no inter-pass sleeping, drain every pass.
fn fast_options(passes: u64) -> CrawlOptions {
    CrawlOptions {
        passes: Some(passes),
        interval: Duration::ZERO,
        max_shards_per_pass: None,
        drain_every: 1,
        cooldown_base_passes: 1,
    }
}

/// Multiple crawl passes over a pooled healthy-plus-flaky host converge
/// on the reference corpus: pass 1 does all the work, pass 2 is a no-op
/// skip, the persisted pass counter survives, and per-pass pool stats
/// are deltas (pass 2 reports no failovers for already-stored shards).
#[test]
fn crawl_passes_converge_to_reference_corpus() {
    let pipeline = Pipeline::new(cfg(21));
    let (reference, _) = pipeline.run_parallel(&populated(&pipeline));
    let (dir, store) = temp_store(&pipeline, "converge");

    let backends = vec![
        FlakyHost::new(
            populated(&pipeline),
            FaultSpec {
                seed: 11,
                transient_rate: 0.2,
                ..FaultSpec::default()
            },
        ),
        FlakyHost::new(populated(&pipeline), FaultSpec::transient(12, 0.0)),
    ];
    let pool = HostPool::new(
        backends,
        PoolPolicy {
            seed: 3,
            deterministic: true,
            ..PoolPolicy::default()
        },
    );

    let stop = AtomicBool::new(false);
    let mut outcomes = Vec::new();
    let summary = crawl(&pipeline, &pool, &store, &fast_options(2), &stop, |p| {
        outcomes.push((
            p.pass,
            p.run.shards_written,
            p.run.shards_skipped,
            p.run.corpus.clone(),
            p.pool.clone(),
        ));
    })
    .unwrap();

    assert_eq!(summary.passes_run, 2);
    assert_eq!(summary.pass, 2);
    assert!(!summary.interrupted);
    assert_eq!(summary.quarantined, 0);

    let (_, written1, skipped1, ref corpus1, ref pool1) = outcomes[0];
    let (_, written2, skipped2, ref corpus2, ref pool2) = outcomes[1];
    assert!(written1 > 0);
    assert_eq!(skipped1, 0);
    assert_eq!(corpus1, &reference, "pass 1 must build the full corpus");
    assert_eq!(written2, 0, "pass 2 is incremental");
    assert_eq!(skipped2, written1);
    assert_eq!(corpus2, &reference);
    // Per-pass stats are deltas, not lifetime totals: the two passes'
    // operation counts sum to the pool's lifetime counter.
    let (pool1, pool2) = (pool1.as_ref().unwrap(), pool2.as_ref().unwrap());
    assert!(pool1.operations > 0 && pool2.operations > 0);
    assert_eq!(
        pool1.operations + pool2.operations,
        pool.stats().operations,
        "per-pass stats must be deltas"
    );

    // The pass counter persists for the next daemon start.
    let state = CrawlState::load(&dir).unwrap();
    assert_eq!(state.pass, 2);
    assert!(state.cooldowns.is_empty());
    std::fs::remove_dir_all(&dir).ok();
}

/// The drain schedule end to end: a corrupting host seeds quarantine;
/// drains against the still-corrupt host fail and back off exponentially
/// per repository (1 pass, then 2, gating eligibility in between); once
/// the host heals, the next eligible drain empties the quarantine and
/// the cooldown table, and the corpus converges to the fault-free run.
#[test]
fn scheduled_drains_heal_quarantine_with_exponential_cooldowns() {
    let pipeline = Pipeline::new(cfg(58));
    let (reference, _) = pipeline.run_parallel(&populated(&pipeline));
    let (dir, store) = temp_store(&pipeline, "drain");

    let corrupt = || {
        FlakyHost::new(
            populated(&pipeline),
            FaultSpec {
                seed: 2,
                corrupt_rate: 0.15,
                ..FaultSpec::default()
            },
        )
    };
    let stop = AtomicBool::new(false);

    // Pass 1 (drain_every=1 drains, but quarantine starts empty): the
    // corrupt host quarantines repositories.
    let summary = crawl(
        &pipeline,
        &corrupt(),
        &store,
        &fast_options(1),
        &stop,
        |_| {},
    )
    .unwrap();
    assert!(summary.quarantined > 0, "corruption must quarantine");
    let quarantined: HashSet<String> = QuarantineLog::load(&dir)
        .unwrap()
        .repos
        .iter()
        .map(|q| q.name.clone())
        .collect();
    assert!(CrawlState::load(&dir).unwrap().cooldowns.is_empty());

    // Pass 2: drain against the still-corrupt host — every re-attempt
    // fails, so every quarantined repository gets a 1-pass cooldown.
    let mut drained_sizes = Vec::new();
    crawl(
        &pipeline,
        &corrupt(),
        &store,
        &fast_options(1),
        &stop,
        |p| {
            drained_sizes.push((p.drained.len(), p.healed.len()));
        },
    )
    .unwrap();
    assert_eq!(drained_sizes, vec![(quarantined.len(), 0)]);
    let state = CrawlState::load(&dir).unwrap();
    assert_eq!(state.pass, 2);
    assert_eq!(state.cooldowns.len(), quarantined.len());
    for c in &state.cooldowns {
        assert!(quarantined.contains(&c.name));
        assert_eq!(
            (c.failures, c.eligible_pass),
            (1, 3),
            "first wait is 1 pass"
        );
    }

    // Passes 3 and 4, still corrupt: pass 3 is an eligible drain that
    // fails again (cooldown doubles to 2 passes → eligible at pass 5);
    // pass 4's drain finds nothing eligible.
    let mut drained_sizes = Vec::new();
    crawl(
        &pipeline,
        &corrupt(),
        &store,
        &fast_options(2),
        &stop,
        |p| {
            drained_sizes.push((p.pass, p.drained.len()));
        },
    )
    .unwrap();
    assert_eq!(
        drained_sizes,
        vec![(3, quarantined.len()), (4, 0)],
        "doubled cooldown must gate the pass-4 drain"
    );
    let state = CrawlState::load(&dir).unwrap();
    for c in &state.cooldowns {
        assert_eq!(
            (c.failures, c.eligible_pass),
            (2, 5),
            "second wait is 2 passes"
        );
    }

    // Pass 5, healthy host: the eligible drain heals everything — empty
    // quarantine, empty cooldown table, reference corpus.
    let mut healed = Vec::new();
    let summary = crawl(
        &pipeline,
        &populated(&pipeline),
        &store,
        &fast_options(1),
        &stop,
        |p| {
            healed = p.healed.clone();
            assert_eq!(p.run.corpus, reference);
        },
    )
    .unwrap();
    assert_eq!(summary.quarantined, 0);
    let healed: HashSet<String> = healed.into_iter().collect();
    assert_eq!(healed, quarantined);
    assert!(QuarantineLog::load(&dir).unwrap().repos.is_empty());
    assert!(CrawlState::load(&dir).unwrap().cooldowns.is_empty());
    std::fs::remove_dir_all(&dir).ok();
}

/// Graceful-stop semantics at the library level: a stop flag raised
/// before shard processing defers every shard (consistent report, store
/// untouched), and the next run completes the work as if never
/// interrupted.
#[test]
fn stop_flag_defers_shards_and_resume_completes() {
    let pipeline = Pipeline::new(cfg(35));
    let (reference, _) = pipeline.run_parallel(&populated(&pipeline));
    let (dir, store) = temp_store(&pipeline, "stop");

    let stop = AtomicBool::new(true);
    let retry = HashSet::new();
    let run = pipeline
        .run_to_store_crawl(&populated(&pipeline), &store, None, &retry, Some(&stop))
        .unwrap();
    assert!(run.interrupted);
    assert_eq!(run.shards_written, 0);
    assert!(run.shards_deferred > 0);
    assert!(run.corpus.is_empty());
    assert_eq!(
        run.report.parsed + run.report.parse_failed,
        run.report.fetched,
        "deferred shards must leave the stage counters consistent"
    );
    assert_eq!(store.num_shards(), 0, "no partial shard may be committed");

    stop.store(false, Ordering::Relaxed);
    let resumed = pipeline
        .run_to_store_crawl(&populated(&pipeline), &store, None, &retry, Some(&stop))
        .unwrap();
    assert!(!resumed.interrupted);
    assert_eq!(resumed.shards_deferred, 0);
    assert_eq!(resumed.corpus, reference);
    std::fs::remove_dir_all(&dir).ok();
}

/// The real daemon under SIGTERM: `gittables crawl` with an unbounded
/// pass budget is killed mid-run, exits 0 with the "interrupted" notice,
/// leaves a loadable store, and a follow-up bounded crawl converges with
/// an empty quarantine.
#[cfg(target_os = "linux")]
#[test]
fn crawl_binary_survives_sigterm_and_resumes() {
    mod sys {
        extern "C" {
            pub fn kill(pid: i32, sig: i32) -> i32;
        }
    }
    const SIGTERM: i32 = 15;

    let dir = std::env::temp_dir().join(format!("gt_crawl_sigterm_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let common = [
        "--seed",
        "7",
        "--topics",
        "3",
        "--repos",
        "6",
        "--replicas",
        "2",
        "--fault-rate",
        "0.05",
        "--fault-seed",
        "13",
    ];

    let child = std::process::Command::new(env!("CARGO_BIN_EXE_gittables"))
        .arg("crawl")
        .arg(&dir)
        .args(["--passes", "0", "--interval-ms", "200"])
        .args(common)
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("spawn crawl daemon");

    // Wait for pass 1 to commit (the crawl-state sidecar appears when a
    // pass completes), then catch the daemon ~300ms into pass 2 — with a
    // 200ms interval and multi-second passes, that is mid-pass.
    let deadline = std::time::Instant::now() + Duration::from_secs(120);
    while !dir.join(CRAWL_STATE_FILE).exists() {
        assert!(
            std::time::Instant::now() < deadline,
            "daemon never finished pass 1"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    std::thread::sleep(Duration::from_millis(300));
    assert_eq!(unsafe { sys::kill(child.id() as i32, SIGTERM) }, 0);
    let out = child.wait_with_output().expect("daemon exit");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "daemon must exit cleanly: {stderr}");
    assert!(
        stderr.contains("crawl interrupted") || stderr.contains("crawl finished"),
        "missing shutdown notice: {stderr}"
    );
    assert!(dir.join("manifest.json").exists(), "store must exist");
    assert!(
        dir.join(CRAWL_STATE_FILE).exists(),
        "crawl state must persist"
    );

    // The interrupted store resumes: one bounded pass converges and the
    // quarantine stays empty (transient faults only, absorbed in-pool).
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_gittables"))
        .arg("crawl")
        .arg(&dir)
        .args(["--passes", "1", "--interval-ms", "0"])
        .args(common)
        .output()
        .expect("resume crawl");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "{stderr}");
    assert!(stderr.contains("crawl finished"), "{stderr}");
    assert!(stderr.contains("0 repositories quarantined"), "{stderr}");

    // The store is fully loadable and matches the reference pipeline.
    let corpus = gittables_corpus::load_store(dir.clone()).unwrap();
    let config = PipelineConfig {
        sql_file_prob: 0.0,
        ..PipelineConfig::sized(7, 3, 6)
    };
    let pipeline = Pipeline::new(config);
    let (reference, _) = pipeline.run_parallel(&populated(&pipeline));
    assert_eq!(corpus, reference);
    std::fs::remove_dir_all(&dir).ok();
}
