//! Property tests of the dedup invariants the sharded store's integrity
//! checks are built on: `table_fingerprint` must ignore provenance and
//! naming, must react to any cell edit (including pure reorderings), and
//! `dedup_indices` must keep exactly one representative per duplicate group.

use gittables_corpus::dedup::{
    combine_fingerprints, dedup_indices, exact_duplicates, table_fingerprint,
};
use gittables_corpus::{AnnotatedTable, Corpus};
use gittables_table::{Provenance, Table};
use proptest::prelude::*;

/// A generated table: header names plus row-major cells.
#[derive(Debug, Clone)]
struct Spec {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

fn spec_strategy() -> impl Strategy<Value = Spec> {
    (1usize..4, 1usize..6, 0u64..u64::MAX).prop_map(|(cols, rows, salt)| {
        // Derive cell content deterministically from the sampled shape+salt;
        // distinct headers per column keep the table constructor happy.
        let header: Vec<String> = (0..cols).map(|c| format!("col{c}")).collect();
        let rows: Vec<Vec<String>> = (0..rows)
            .map(|r| {
                (0..cols)
                    .map(|c| {
                        format!(
                            "v{}",
                            salt.wrapping_mul(31).wrapping_add((r * cols + c) as u64) % 1000
                        )
                    })
                    .collect()
            })
            .collect();
        Spec { header, rows }
    })
}

fn build(spec: &Spec, name: &str, prov: Provenance) -> Table {
    Table::from_string_rows(name, &spec.header, spec.rows.clone())
        .unwrap()
        .with_provenance(prov)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Renaming the table or rewriting any provenance field never changes
    /// the content fingerprint.
    #[test]
    fn fingerprint_stable_under_provenance_only_changes(
        spec in spec_strategy(),
        repo in "[a-z]{2,8}",
        path in "[a-z]{2,8}",
        topic in "[a-z]{2,8}",
    ) {
        let plain = build(&spec, "original", Provenance::default());
        let relabeled = build(
            &spec,
            "renamed-elsewhere",
            Provenance::new(repo, format!("{path}.csv"))
                .with_license("mit")
                .with_topic(topic),
        );
        prop_assert_eq!(table_fingerprint(&plain), table_fingerprint(&relabeled));
    }

    /// Editing any single cell changes the fingerprint.
    #[test]
    fn fingerprint_reacts_to_any_cell_edit(
        spec in spec_strategy(),
        pick in 0usize..1000,
    ) {
        let original = build(&spec, "t", Provenance::default());
        let mut edited = spec;
        let r = pick % edited.rows.len();
        let c = (pick / edited.rows.len().max(1)) % edited.header.len();
        edited.rows[r][c].push_str("-edited");
        let edited = build(&edited, "t", Provenance::default());
        prop_assert_ne!(table_fingerprint(&original), table_fingerprint(&edited));
    }

    /// Swapping two distinct cell values is detected: the fingerprint is
    /// order-sensitive, not a bag-of-cells digest.
    #[test]
    fn fingerprint_is_order_sensitive_on_cell_swaps(
        spec in spec_strategy(),
        pick in 0usize..1000,
    ) {
        let cols = spec.header.len();
        let cells = spec.rows.len() * cols;
        if cells < 2 {
            return Ok(());
        }
        let a = pick % cells;
        let b = (a + 1 + pick / cells % (cells - 1)) % cells;
        let ((ra, ca), (rb, cb)) = ((a / cols, a % cols), (b / cols, b % cols));
        if spec.rows[ra][ca] == spec.rows[rb][cb] {
            return Ok(()); // swapping equal values is a no-op; nothing to test
        }
        let mut swapped = spec.clone();
        let tmp = swapped.rows[ra][ca].clone();
        swapped.rows[ra][ca] = swapped.rows[rb][cb].clone();
        swapped.rows[rb][cb] = tmp;
        let original = build(&spec, "t", Provenance::default());
        let swapped = build(&swapped, "t", Provenance::default());
        prop_assert_ne!(table_fingerprint(&original), table_fingerprint(&swapped));
    }

    /// `dedup_indices` keeps exactly one representative — the first member —
    /// of every `DuplicateGroup`, and every non-duplicated table survives.
    #[test]
    fn dedup_keeps_exactly_one_representative_per_group(
        specs in proptest::collection::vec(spec_strategy(), 1..6),
        dupes in proptest::collection::vec((0usize..1000, 0usize..1000), 0..8),
    ) {
        let mut corpus = Corpus::new("props");
        for (i, spec) in specs.iter().enumerate() {
            corpus.push(AnnotatedTable::new(build(spec, &format!("t{i}"), Provenance::default())));
        }
        // Splice in duplicates of random existing tables at random positions.
        for (src, at) in dupes {
            let src = src % corpus.len();
            let clone = corpus.tables[src].clone();
            let at = at % (corpus.len() + 1);
            corpus.tables.insert(at, clone);
        }

        let survivors = dedup_indices(&corpus);
        let survivor_set: std::collections::HashSet<usize> = survivors.iter().copied().collect();
        let groups = exact_duplicates(&corpus);
        let mut grouped = std::collections::HashSet::new();
        for g in &groups {
            let kept: Vec<usize> = g
                .members
                .iter()
                .copied()
                .filter(|i| survivor_set.contains(i))
                .collect();
            prop_assert_eq!(&kept, &vec![g.members[0]], "exactly the first member survives");
            grouped.extend(g.members.iter().copied());
        }
        // Tables outside any duplicate group all survive.
        for i in 0..corpus.len() {
            if !grouped.contains(&i) {
                prop_assert!(survivor_set.contains(&i), "unique table {} must survive", i);
            }
        }
        // Survivor fingerprints are pairwise distinct and cover the corpus.
        let fps: std::collections::HashSet<u64> = survivors
            .iter()
            .map(|&i| table_fingerprint(&corpus.tables[i].table))
            .collect();
        prop_assert_eq!(fps.len(), survivors.len());
        let all: std::collections::HashSet<u64> = corpus
            .tables
            .iter()
            .map(|t| table_fingerprint(&t.table))
            .collect();
        prop_assert_eq!(fps.len(), all.len());
    }

    /// The shard digest treats an appended table as a change.
    #[test]
    fn combined_fingerprint_extends_sensitively(
        specs in proptest::collection::vec(spec_strategy(), 1..5),
    ) {
        let fps: Vec<u64> = specs
            .iter()
            .map(|s| table_fingerprint(&build(s, "t", Provenance::default())))
            .collect();
        let whole = combine_fingerprints(fps.iter().copied());
        let prefix = combine_fingerprints(fps[..fps.len() - 1].iter().copied());
        prop_assert_ne!(whole, prefix);
    }
}
