//! The sidecar boot path is pinned to the materialized path: for any
//! corpus, any shard size, and either store format, every query endpoint
//! of a sidecar-booted [`QueryEngine`] serializes to **byte-identical**
//! JSON as the build-from-corpus engine — serially and under concurrent
//! readers. This is the equivalence battery that lets `serve` boot off
//! the mapped sidecars without a correctness caveat.

use std::path::PathBuf;
use std::sync::Arc;

use gittables_annotate::Annotation;
use gittables_corpus::{save_store_as, AnnotatedTable, Corpus, StoreFormat};
use gittables_serve::{build_sidecars, QueryEngine};
use gittables_table::{Provenance, Table};
use proptest::prelude::*;

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "gt_lazy_eq_{tag}_{}_{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Cell vocabulary stressing every encoding path (same set the colv1
/// store battery uses): quoting, delimiters, raw newlines, multi-byte
/// UTF-8, empty and missing-marker cells.
const NASTY: &[&str] = &[
    "plain",
    "",
    "nan",
    "has,comma",
    "has \"quotes\"",
    "two\nlines",
    "tab\there",
    "café ☕ 表",
    "  padded  ",
    "123",
    "4.5e-3",
    "true",
];

#[derive(Debug, Clone)]
struct Spec {
    tables: Vec<(usize, usize)>,
    salt: u64,
}

fn spec_strategy() -> impl Strategy<Value = Spec> {
    (1usize..6, 1usize..4, 0usize..7, 0u64..u64::MAX).prop_map(|(n, cols, rows, salt)| Spec {
        tables: (0..n)
            .map(|i| (1 + (cols + i) % 4, (rows + 3 * i) % 6))
            .collect(),
        salt,
    })
}

fn build_corpus(spec: &Spec) -> Corpus {
    let mut corpus = Corpus::new(format!("lazy-{}", spec.salt % 997));
    for (ti, &(cols, rows)) in spec.tables.iter().enumerate() {
        let header: Vec<String> = (0..cols).map(|c| format!("col{c}_{ti}")).collect();
        let row_data: Vec<Vec<String>> = (0..rows)
            .map(|r| {
                (0..cols)
                    .map(|c| {
                        let k = spec
                            .salt
                            .wrapping_mul(31)
                            .wrapping_add((ti * 131 + r * 17 + c) as u64);
                        NASTY[(k % NASTY.len() as u64) as usize].to_string()
                    })
                    .collect()
            })
            .collect();
        let mut prov = Provenance::new(format!("owner/repo{}", ti % 3), format!("data/t{ti}.csv"))
            .with_topic(NASTY[(spec.salt as usize + ti) % NASTY.len()]);
        if (spec.salt as usize + ti).is_multiple_of(2) {
            prov = prov.with_license("cc0-1.0");
        }
        let table = Table::from_string_rows(format!("t{ti}"), &header, row_data)
            .unwrap()
            .with_provenance(prov);
        let mut at = AnnotatedTable::new(table);
        for (si, (method, ontology)) in Corpus::annotation_configs().into_iter().enumerate() {
            let slot = at.annotations_mut(method, ontology);
            slot.num_columns = cols;
            for c in 0..cols {
                if (spec.salt as usize + ti + si + c).is_multiple_of(3) {
                    slot.annotations.push(Annotation {
                        column: c,
                        type_id: ((spec.salt as u32).wrapping_add(c as u32)) % 5000,
                        label: format!("type {}", NASTY[(si + c) % NASTY.len()]),
                        ontology,
                        method,
                        similarity: ((spec.salt % 1000) as f32).mul_add(1e-3, 1e-4 * c as f32),
                    });
                }
            }
        }
        corpus.push(at);
    }
    corpus
}

fn json<T: serde::Serialize>(v: &T) -> String {
    serde_json::to_string(v).unwrap()
}

/// Serializes every query endpoint's answer, in a deterministic order —
/// the full observable surface of an engine (modulo timings).
fn endpoint_bytes(engine: &QueryEngine) -> Vec<String> {
    let mut out = vec![json(&engine.health())];
    for (q, k) in [
        ("status and sales amount per product", 3),
        ("col0", 1),
        ("café ☕ 表", 5),
        ("", 2),
    ] {
        out.push(json(&engine.search(q, k)));
    }
    for prefix in [vec!["col0_0"], vec!["col0_1", "col1_1"], vec!["nope"]] {
        out.push(json(&engine.complete(&prefix, 3)));
    }
    out.push(json(&engine.type_counts()));
    for tc in engine.type_counts() {
        out.push(json(&engine.type_tables(&tc.label)));
    }
    out.push(json(&engine.type_tables("zzz_not_a_type")));
    for id in 0..engine.num_tables() + 2 {
        out.push(json(&engine.table_summary(id)));
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For random corpora, shard sizes, and both formats: a
    /// sidecar-booted engine answers every endpoint byte-identically to
    /// the materialized rebuild.
    #[test]
    fn sidecar_boot_equals_materialized(
        spec in spec_strategy(),
        per_shard in 1usize..4,
    ) {
        let corpus = build_corpus(&spec);
        for format in StoreFormat::ALL {
            let dir = tmp(&format!("prop_{format}"));
            save_store_as(&corpus, &dir, per_shard, format).unwrap();
            let report = build_sidecars(&dir).unwrap();
            prop_assert_eq!(report.tables, corpus.len());

            let lazy = QueryEngine::load(&dir).unwrap();
            prop_assert_eq!(&lazy.build_stats().boot_path, "sidecar");
            prop_assert_eq!(&lazy.build_stats().fallback_reason, &None);
            let reference = QueryEngine::load_materialized(&dir).unwrap();
            prop_assert_eq!(&reference.build_stats().boot_path, "rebuild");

            let got = endpoint_bytes(&lazy);
            let want = endpoint_bytes(&reference);
            prop_assert_eq!(got.len(), want.len());
            for (i, (g, w)) in got.iter().zip(&want).enumerate() {
                prop_assert_eq!(g, w, "endpoint {} differs ({})", i, format);
            }
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}

#[test]
fn concurrent_readers_see_identical_bytes() {
    // Lazy decoding happens per request — concurrent readers hitting the
    // same and different tables must all see the reference bytes.
    let corpus = build_corpus(&Spec {
        tables: vec![(3, 4), (2, 2), (4, 1), (1, 5), (2, 3)],
        salt: 20260808,
    });
    for format in StoreFormat::ALL {
        let dir = tmp(&format!("conc_{format}"));
        save_store_as(&corpus, &dir, 2, format).unwrap();
        build_sidecars(&dir).unwrap();
        let lazy = Arc::new(QueryEngine::load(&dir).unwrap());
        assert_eq!(lazy.build_stats().boot_path, "sidecar");
        let want = Arc::new(endpoint_bytes(
            &QueryEngine::load_materialized(&dir).unwrap(),
        ));

        // Serially first...
        assert_eq!(endpoint_bytes(&lazy), *want);
        // ...then from 8 threads at once, repeatedly.
        std::thread::scope(|s| {
            for worker in 0..8 {
                let (lazy, want) = (Arc::clone(&lazy), Arc::clone(&want));
                s.spawn(move || {
                    for round in 0..4 {
                        let got = endpoint_bytes(&lazy);
                        assert_eq!(got, *want, "worker {worker} round {round}");
                    }
                });
            }
        });
        std::fs::remove_dir_all(&dir).ok();
    }
}
