//! End-to-end tests of the `gittables` CLI binary.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_gittables"))
}

fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("gt_cli_{}_{name}", std::process::id()))
}

#[test]
fn build_stats_search_complete_roundtrip() {
    let corpus = temp_path("corpus.json");
    let out = bin()
        .args([
            "build",
            "--out",
            corpus.to_str().unwrap(),
            "--topics",
            "2",
            "--repos",
            "5",
            "--seed",
            "3",
        ])
        .output()
        .expect("run build");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let stats = bin()
        .args(["stats", "--corpus", corpus.to_str().unwrap()])
        .output()
        .expect("run stats");
    assert!(stats.status.success());
    let text = String::from_utf8_lossy(&stats.stdout);
    assert!(text.contains("avg rows"), "{text}");
    assert!(text.contains("Semantic"), "{text}");

    let search = bin()
        .args([
            "search",
            "--corpus",
            corpus.to_str().unwrap(),
            "--query",
            "things with ids and values",
            "--k",
            "3",
        ])
        .output()
        .expect("run search");
    assert!(search.status.success());
    assert!(!search.stdout.is_empty());

    let complete = bin()
        .args([
            "complete",
            "--corpus",
            corpus.to_str().unwrap(),
            "--prefix",
            "id,name",
            "--k",
            "3",
        ])
        .output()
        .expect("run complete");
    assert!(complete.status.success());

    std::fs::remove_file(&corpus).ok();
}

#[test]
fn annotate_csv_file() {
    let csv = temp_path("in.csv");
    std::fs::write(
        &csv,
        "id,species,price\n1,Homo sapiens,2.5\n2,Mus musculus,3.5\n",
    )
    .unwrap();
    let out = bin()
        .args(["annotate", "--csv", csv.to_str().unwrap()])
        .output()
        .expect("run annotate");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("species"), "{text}");
    std::fs::remove_file(&csv).ok();
}

#[test]
fn serve_subcommand_roundtrip() {
    // build → save → serve on an ephemeral port → query → /shutdown →
    // clean exit: the CI smoke test, self-contained.
    let corpus = temp_path("serve_corpus.json");
    let store = temp_path("serve_store");
    std::fs::remove_dir_all(&store).ok();
    let out = bin()
        .args([
            "build",
            "--out",
            corpus.to_str().unwrap(),
            "--topics",
            "2",
            "--repos",
            "5",
            "--seed",
            "9",
        ])
        .output()
        .expect("run build");
    assert!(out.status.success());
    let out = bin()
        .args([
            "save",
            "--corpus",
            corpus.to_str().unwrap(),
            "--out",
            store.to_str().unwrap(),
            "--shard",
            "16",
        ])
        .output()
        .expect("run save");
    assert!(out.status.success());

    let mut child = bin()
        .args([
            "serve",
            store.to_str().unwrap(),
            "--addr",
            "127.0.0.1:0",
            "--threads",
            "2",
        ])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn serve");

    // The server prints `serving on http://ADDR` once ready.
    let mut line = String::new();
    {
        use std::io::BufRead;
        let stdout = child.stdout.as_mut().expect("piped stdout");
        std::io::BufReader::new(stdout)
            .read_line(&mut line)
            .expect("read serve banner");
    }
    let addr: std::net::SocketAddr = line
        .trim()
        .strip_prefix("serving on http://")
        .unwrap_or_else(|| panic!("unexpected banner `{line}`"))
        .parse()
        .expect("parse bound address");

    let (status, body) = gittables_serve::client::get(addr, "/health").expect("health");
    assert_eq!(status, 200);
    assert!(body.contains("\"status\":\"ok\""), "{body}");
    let (status, body) =
        gittables_serve::client::get(addr, "/search?q=values+and+ids&k=3").expect("search");
    assert_eq!(status, 200);
    assert!(body.starts_with('['), "{body}");

    let (status, _) = gittables_serve::client::get(addr, "/shutdown").expect("shutdown");
    assert_eq!(status, 200);
    let exit = child.wait().expect("serve exit");
    assert!(exit.success(), "serve exited with {exit:?}");

    std::fs::remove_file(&corpus).ok();
    std::fs::remove_dir_all(&store).ok();
}

#[test]
fn usage_on_unknown_command() {
    let out = bin().arg("nonsense").output().expect("run");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}

#[test]
fn missing_required_option_fails_cleanly() {
    let out = bin().args(["stats"]).output().expect("run");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--corpus"));
}
