//! Integration tests of the §5 applications over a pipeline-built corpus.

use gittables_annotate::kgmatch::{CellValueMatcher, HeaderMatcher, PatternMatcher};
use gittables_core::apps::{build_cta_benchmark, run_kg_benchmark, DataSearch, NearestCompletion};
use gittables_core::{Pipeline, PipelineConfig};
use gittables_githost::GitHost;
use gittables_ontology::OntologyKind;

fn corpus(seed: u64) -> gittables_corpus::Corpus {
    let pipeline = Pipeline::new(PipelineConfig::sized(seed, 8, 25));
    let host = GitHost::new();
    pipeline.populate_host(&host);
    pipeline.run(&host).0
}

#[test]
fn schema_completion_returns_relevant_suggestions() {
    let c = corpus(31);
    let nc = NearestCompletion::build(&c);
    assert!(nc.len() > 10);
    // The paper's CTU "orders" prefix.
    let out = nc.complete(&["orderNumber", "orderDate", "requiredDate"], 10);
    assert!(!out.is_empty());
    // Completions sorted by prefix distance.
    for w in out.windows(2) {
        assert!(w[0].prefix_distance <= w[1].prefix_distance);
    }
    // Relevance of the best suggestion's full schema should be positive
    // (paper: ≈0.5 on [-1, 1]).
    let full = [
        "orderNumber",
        "orderDate",
        "requiredDate",
        "shippedDate",
        "status",
    ];
    let best_rel = out
        .iter()
        .map(|s| nc.relevance(&full, &s.schema))
        .fold(f64::MIN, f64::max);
    assert!(best_rel > 0.2, "best relevance {best_rel}");
}

#[test]
fn data_search_finds_topical_tables() {
    let c = corpus(32);
    let ds = DataSearch::build(&c);
    let hits = ds.search("status and sales amount per product", 5);
    assert_eq!(hits.len(), 5);
    assert!(hits[0].score > hits[4].score - 1e-9);
    // At least one of the top hits should contain a sales/order-ish
    // attribute (headers may be abbreviated by the corpus generator, so the
    // vocabulary includes the common short forms).
    let vocab = [
        "status", "stat", "price", "product", "prod", "sales", "order", "quantity", "qty",
        "amount", "amt", "total",
    ];
    let hit_ok = hits.iter().any(|h| {
        let schema = h.schema.to_string().to_lowercase();
        vocab.iter().any(|k| schema.contains(k))
    });
    assert!(
        hit_ok,
        "top schemas: {:?}",
        hits.iter()
            .map(|h| h.schema.to_string())
            .collect::<Vec<_>>()
    );
}

#[test]
fn kg_benchmark_shape_matches_fig6a() {
    let c = corpus(33);
    for ontology in [OntologyKind::DBpedia, OntologyKind::SchemaOrg] {
        let bench = build_cta_benchmark(&c, ontology, 3, 5, 1101);
        assert!(!bench.tables.is_empty());
        assert!(bench.distinct_types > 5);
        let cell = run_kg_benchmark(&bench, &CellValueMatcher::new());
        let header = run_kg_benchmark(&bench, &HeaderMatcher);
        let pattern = run_kg_benchmark(&bench, &PatternMatcher::new());
        // Fig. 6a: cell-value linking scores low on database-like tables;
        // header matching (what built the gold) scores high.
        assert!(cell.recall < 0.35, "cell recall {}", cell.recall);
        assert!(header.recall > 0.6, "header recall {}", header.recall);
        assert!(pattern.recall <= header.recall);
    }
}

#[test]
fn benchmark_respects_dimension_thresholds() {
    let c = corpus(34);
    let bench = build_cta_benchmark(&c, OntologyKind::DBpedia, 3, 5, 1101);
    for t in &bench.tables {
        assert!(t.table.num_columns() >= 3);
        assert!(t.table.num_rows() >= 5);
        assert!(!t.gold.is_empty());
    }
}
