//! Cross-format store tests: any corpus persisted as `colv1` must reload
//! bit-identical to the JSONL round trip (annotations, provenance, and
//! shard boundaries included), stream identically through the export and
//! CLI-load paths, and fail **typed** — never panic, never partially
//! load — on truncated segments, bad magic, and manifest/format
//! mismatches.

use std::path::PathBuf;

use gittables_annotate::Annotation;
use gittables_corpus::SIDECAR_FILES;
use gittables_corpus::{
    export_csv_store, load_store, migrate_store, save_store_as, AnnotatedTable, Corpus,
    CorpusStore, StoreError, StoreFormat,
};
use gittables_serve::{build_sidecars, QueryEngine};
use gittables_table::{Provenance, Table};
use proptest::prelude::*;

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "gt_colv1_it_{tag}_{}_{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Cell vocabulary stressing every encoding path: quoting, delimiters,
/// raw newlines, multi-byte UTF-8, empty and missing-marker cells.
const NASTY: &[&str] = &[
    "plain",
    "",
    "nan",
    "has,comma",
    "has \"quotes\"",
    "two\nlines",
    "tab\there",
    "café ☕ 表",
    "  padded  ",
    "123",
    "4.5e-3",
    "true",
];

/// A generated corpus shape: per-table column/row counts plus a salt
/// that deterministically picks cells, provenance, and annotations.
#[derive(Debug, Clone)]
struct Spec {
    tables: Vec<(usize, usize)>,
    salt: u64,
}

fn spec_strategy() -> impl Strategy<Value = Spec> {
    (1usize..5, 1usize..4, 0usize..7, 0u64..u64::MAX).prop_map(|(n, cols, rows, salt)| Spec {
        // Vary shape per table off the base dims so shard boundaries land
        // differently from corpus to corpus.
        tables: (0..n)
            .map(|i| (1 + (cols + i) % 4, (rows + 3 * i) % 6))
            .collect(),
        salt,
    })
}

fn build_corpus(spec: &Spec) -> Corpus {
    let mut corpus = Corpus::new(format!("prop-{}", spec.salt % 997));
    for (ti, &(cols, rows)) in spec.tables.iter().enumerate() {
        let header: Vec<String> = (0..cols).map(|c| format!("col{c}_{ti}")).collect();
        let row_data: Vec<Vec<String>> = (0..rows)
            .map(|r| {
                (0..cols)
                    .map(|c| {
                        let k = spec
                            .salt
                            .wrapping_mul(31)
                            .wrapping_add((ti * 131 + r * 17 + c) as u64);
                        NASTY[(k % NASTY.len() as u64) as usize].to_string()
                    })
                    .collect()
            })
            .collect();
        let mut prov = Provenance::new(format!("owner/repo{}", ti % 3), format!("data/t{ti}.csv"))
            .with_topic(NASTY[(spec.salt as usize + ti) % NASTY.len()]);
        if (spec.salt as usize + ti).is_multiple_of(2) {
            prov = prov.with_license("cc0-1.0");
        }
        prov.file_size = (spec.salt % 100_000) as usize + ti;
        let table = Table::from_string_rows(format!("t{ti}"), &header, row_data)
            .unwrap()
            .with_provenance(prov);
        let mut at = AnnotatedTable::new(table);
        // Populate every (method, ontology) slot with salt-derived
        // annotations; finite similarities only (the real annotators
        // never produce NaN/inf, and JSON nulls them).
        for (si, (method, ontology)) in Corpus::annotation_configs().into_iter().enumerate() {
            let slot = at.annotations_mut(method, ontology);
            slot.num_columns = cols;
            for c in 0..cols {
                if (spec.salt as usize + ti + si + c).is_multiple_of(3) {
                    slot.annotations.push(Annotation {
                        column: c,
                        type_id: ((spec.salt as u32).wrapping_add(c as u32)) % 5000,
                        label: format!("type {}", NASTY[(si + c) % NASTY.len()]),
                        ontology,
                        method,
                        similarity: ((spec.salt % 1000) as f32).mul_add(1e-3, 1e-4 * c as f32),
                    });
                }
            }
        }
        corpus.push(at);
    }
    corpus
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// colv1 and jsonl round trips are bit-identical to each other and to
    /// the original corpus, across shard boundaries.
    #[test]
    fn colv1_roundtrip_bit_identical_to_jsonl(
        spec in spec_strategy(),
        per_shard in 1usize..4,
    ) {
        let corpus = build_corpus(&spec);
        let base = tmp("prop");
        let jd = base.join("jsonl");
        let cd = base.join("colv1");
        save_store_as(&corpus, &jd, per_shard, StoreFormat::Jsonl).unwrap();
        save_store_as(&corpus, &cd, per_shard, StoreFormat::ColV1).unwrap();
        let from_jsonl = load_store(&jd).unwrap();
        let from_colv1 = load_store(&cd).unwrap();
        prop_assert_eq!(&from_jsonl, &corpus);
        prop_assert_eq!(&from_colv1, &corpus);
        prop_assert_eq!(&from_colv1, &from_jsonl);
        // Shard boundaries and fingerprints agree entry by entry.
        let je = CorpusStore::open(&jd).unwrap().shard_entries();
        let ce = CorpusStore::open(&cd).unwrap().shard_entries();
        prop_assert_eq!(je.len(), ce.len());
        for (j, c) in je.iter().zip(&ce) {
            prop_assert_eq!(&j.id, &c.id);
            prop_assert_eq!(j.tables, c.tables);
            prop_assert_eq!(j.fingerprint, c.fingerprint);
            prop_assert_eq!(&j.indices, &c.indices);
        }
        std::fs::remove_dir_all(&base).ok();
    }

    /// Migration in either direction reproduces the exact corpus.
    #[test]
    fn migration_preserves_corpus(spec in spec_strategy()) {
        let corpus = build_corpus(&spec);
        let dir = tmp("prop_mig");
        save_store_as(&corpus, &dir, 2, StoreFormat::ColV1).unwrap();
        migrate_store(&dir, StoreFormat::Jsonl).unwrap();
        prop_assert_eq!(&load_store(&dir).unwrap(), &corpus);
        migrate_store(&dir, StoreFormat::ColV1).unwrap();
        prop_assert_eq!(&load_store(&dir).unwrap(), &corpus);
        std::fs::remove_dir_all(&dir).ok();
    }
}

fn sample_corpus() -> Corpus {
    build_corpus(&Spec {
        tables: vec![(3, 4), (2, 2), (4, 1), (1, 5)],
        salt: 20260729,
    })
}

/// The first committed colv1 segment file of a store.
fn first_segment(dir: &PathBuf) -> PathBuf {
    let entry = CorpusStore::open(dir).unwrap().shard_entries()[0].clone();
    dir.join(entry.file)
}

#[test]
fn truncated_segment_is_typed_never_partial() {
    let corpus = sample_corpus();
    let dir = tmp("trunc");
    save_store_as(&corpus, &dir, 2, StoreFormat::ColV1).unwrap();
    let path = first_segment(&dir);
    let bytes = std::fs::read(&path).unwrap();
    // Every truncation point: footer gone, index gone, mid-block, near-empty.
    for cut in [bytes.len() - 1, bytes.len() - 9, bytes.len() / 2, 10, 0] {
        std::fs::write(&path, &bytes[..cut]).unwrap();
        let err = CorpusStore::open(&dir).unwrap().load_corpus().unwrap_err();
        assert!(
            matches!(err, StoreError::Corrupt { .. }),
            "cut={cut}: expected Corrupt, got {err}"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn flipped_footer_magic_is_typed() {
    let dir = tmp("magic");
    save_store_as(&sample_corpus(), &dir, 8, StoreFormat::ColV1).unwrap();
    let path = first_segment(&dir);
    let mut bytes = std::fs::read(&path).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0xFF;
    std::fs::write(&path, &bytes).unwrap();
    let err = CorpusStore::open(&dir).unwrap().load_corpus().unwrap_err();
    assert!(matches!(err, StoreError::Corrupt { .. }), "{err}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupted_footer_index_is_typed() {
    let dir = tmp("bitrot_footer");
    save_store_as(&sample_corpus(), &dir, 8, StoreFormat::ColV1).unwrap();
    let path = first_segment(&dir);
    let original = std::fs::read(&path).unwrap();
    // Corrupt the footer's fixed fields (footer_start, table count): the
    // consistency check must reject both, deterministically.
    for flip_from_end in [17, 25] {
        let mut bytes = original.clone();
        let at = bytes.len() - flip_from_end;
        bytes[at] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let err = CorpusStore::open(&dir).unwrap().load_corpus().unwrap_err();
        assert!(matches!(err, StoreError::Corrupt { .. }), "{err}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corruption_is_never_silent() {
    // Flipping any single block byte either fails typed (structure or
    // content fingerprint) or decodes to an observably different corpus
    // (a name/provenance/annotation byte — fields the content
    // fingerprint deliberately ignores, exactly as in JSONL shards).
    let corpus = sample_corpus();
    let dir = tmp("bitrot_block");
    save_store_as(&corpus, &dir, usize::MAX, StoreFormat::ColV1).unwrap();
    let path = first_segment(&dir);
    let original = std::fs::read(&path).unwrap();
    for pos in (9..original.len().saturating_sub(40)).step_by(97) {
        let mut bytes = original.clone();
        bytes[pos] ^= 0x20;
        std::fs::write(&path, &bytes).unwrap();
        match CorpusStore::open(&dir).unwrap().load_corpus() {
            Err(
                StoreError::Corrupt { .. }
                | StoreError::FingerprintMismatch { .. }
                | StoreError::TableCountMismatch { .. },
            ) => {}
            Err(other) => panic!("unexpected error kind at byte {pos}: {other}"),
            Ok(loaded) => assert_ne!(loaded, corpus, "silent corruption at byte {pos}"),
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn manifest_format_mismatching_file_content_is_typed() {
    // Manifest says colv1, but the segment holds JSONL text: the decoder
    // must reject it as corrupt, not misparse or panic.
    let dir = tmp("mismatch");
    save_store_as(&sample_corpus(), &dir, 8, StoreFormat::ColV1).unwrap();
    let path = first_segment(&dir);
    let colv1_bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, "{\"not\":\"a segment\"}\n").unwrap();
    let err = CorpusStore::open(&dir).unwrap().load_corpus().unwrap_err();
    assert!(matches!(err, StoreError::Corrupt { .. }), "{err}");

    // And the reverse: manifest says jsonl, segment holds colv1 binary —
    // a typed JSON error, still no panic or partial load.
    let dir2 = tmp("mismatch2");
    save_store_as(&sample_corpus(), &dir2, 8, StoreFormat::Jsonl).unwrap();
    let store2 = CorpusStore::open(&dir2).unwrap();
    let entry = store2.shard_entries()[0].clone();
    std::fs::write(dir2.join(&entry.file), colv1_bytes).unwrap();
    let err = store2.load_corpus().unwrap_err();
    assert!(
        matches!(
            err,
            // Binary bytes fail the line reader (invalid UTF-8) or the
            // JSON parser, depending on where the first bad byte lands.
            StoreError::Json(_) | StoreError::Io(_) | StoreError::TableCountMismatch { .. }
        ),
        "{err}"
    );
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&dir2).ok();
}

#[test]
fn export_streams_identically_through_both_codecs() {
    let corpus = sample_corpus();
    let base = tmp("export");
    let jd = base.join("jsonl_store");
    let cd = base.join("colv1_store");
    let js = save_store_as(&corpus, &jd, 3, StoreFormat::Jsonl).unwrap();
    let cs = save_store_as(&corpus, &cd, 3, StoreFormat::ColV1).unwrap();
    let je = base.join("jsonl_export");
    let ce = base.join("colv1_export");
    assert_eq!(
        export_csv_store(&js, &je).unwrap(),
        export_csv_store(&cs, &ce).unwrap()
    );
    // Identical file sets with identical bytes (manifest paths are
    // absolute, so compare them relative to each export root).
    let manifest = std::fs::read_to_string(je.join("manifest.tsv")).unwrap();
    let manifest_c = std::fs::read_to_string(ce.join("manifest.tsv")).unwrap();
    assert_eq!(
        manifest.replace(je.to_str().unwrap(), "<root>"),
        manifest_c.replace(ce.to_str().unwrap(), "<root>")
    );
    for line in manifest.lines().skip(1) {
        let path = line.split('\t').next().unwrap();
        let rel = std::path::Path::new(path).strip_prefix(&je).unwrap();
        assert_eq!(
            std::fs::read(path).unwrap(),
            std::fs::read(ce.join(rel)).unwrap(),
            "export mismatch for {rel:?}"
        );
    }
    std::fs::remove_dir_all(&base).ok();
}

#[test]
fn cli_load_path_identical_across_formats() {
    // What `gittables load` does — store → load_store → save_corpus —
    // must produce byte-identical corpus.json regardless of format.
    let corpus = sample_corpus();
    let base = tmp("cliload");
    std::fs::create_dir_all(&base).unwrap();
    let mut outputs = Vec::new();
    for format in StoreFormat::ALL {
        let sd = base.join(format!("store_{format}"));
        save_store_as(&corpus, &sd, 2, format).unwrap();
        let loaded = load_store(&sd).unwrap();
        let out = base.join(format!("corpus_{format}.json"));
        gittables_corpus::persist::save_corpus(&loaded, &out).unwrap();
        outputs.push(std::fs::read(&out).unwrap());
    }
    assert_eq!(outputs[0], outputs[1], "load output differs across formats");
    std::fs::remove_dir_all(&base).ok();
}

/// A compact sample of every endpoint family's bytes — what any boot of
/// the engine over this store must serve, bit for bit.
fn endpoint_sample(engine: &QueryEngine) -> Vec<String> {
    let mut out = vec![
        serde_json::to_string(&engine.health()).unwrap(),
        serde_json::to_string(&engine.search("col0 status", 3)).unwrap(),
        serde_json::to_string(&engine.complete(&["col0_0"], 3)).unwrap(),
        serde_json::to_string(&engine.type_counts()).unwrap(),
    ];
    for id in 0..engine.num_tables() + 1 {
        out.push(serde_json::to_string(&engine.table_summary(id)).unwrap());
    }
    out
}

/// Loads the engine expecting a fallback rebuild for `reason`, and
/// asserts its answers equal the reference bytes.
fn assert_falls_back_identically(dir: &PathBuf, want: &[String], reasons: &[&str], what: &str) {
    let engine = QueryEngine::load(dir).unwrap();
    let stats = engine.build_stats();
    assert_eq!(stats.boot_path, "rebuild", "{what}");
    let reason = stats.fallback_reason.as_deref().unwrap_or("none");
    assert!(reasons.contains(&reason), "{what}: got reason `{reason}`");
    assert_eq!(endpoint_sample(&engine), want, "{what}");
}

#[test]
fn sidecar_byte_flips_never_serve_wrong_bytes() {
    // Flipping any sidecar byte must yield a typed refusal and a correct
    // fallback rebuild — byte-identical answers, never a wrong one. The
    // checksum covers everything before it, so a flip lands as `corrupt`
    // (or `stale` when it hits the binding fields read first).
    let corpus = sample_corpus();
    let dir = tmp("sidecar_flip");
    save_store_as(&corpus, &dir, 2, StoreFormat::ColV1).unwrap();
    build_sidecars(&dir).unwrap();
    let want = endpoint_sample(&QueryEngine::load_materialized(&dir).unwrap());
    assert_eq!(
        endpoint_sample(&QueryEngine::load(&dir).unwrap()),
        want,
        "healthy sidecars must serve the reference bytes"
    );
    for file in SIDECAR_FILES {
        let path = dir.join(file);
        let original = std::fs::read(&path).unwrap();
        for pos in (0..original.len()).step_by(31) {
            let mut bytes = original.clone();
            bytes[pos] ^= 0x20;
            std::fs::write(&path, &bytes).unwrap();
            assert_falls_back_identically(
                &dir,
                &want,
                &["corrupt", "stale"],
                &format!("{file} byte {pos}"),
            );
        }
        std::fs::write(&path, &original).unwrap();
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn truncated_or_missing_sidecar_falls_back_identically() {
    let corpus = sample_corpus();
    let dir = tmp("sidecar_trunc");
    save_store_as(&corpus, &dir, 2, StoreFormat::ColV1).unwrap();
    build_sidecars(&dir).unwrap();
    let want = endpoint_sample(&QueryEngine::load_materialized(&dir).unwrap());
    for file in SIDECAR_FILES {
        let path = dir.join(file);
        let original = std::fs::read(&path).unwrap();
        // Torn writes: footer gone, half a file, header fragment, empty.
        for cut in [original.len() - 1, original.len() / 2, 4, 0] {
            std::fs::write(&path, &original[..cut]).unwrap();
            assert_falls_back_identically(&dir, &want, &["corrupt"], &format!("{file} cut {cut}"));
        }
        // Bad header magic and bad footer magic.
        for at in [0, original.len() - 1] {
            let mut bytes = original.clone();
            bytes[at] ^= 0xFF;
            std::fs::write(&path, &bytes).unwrap();
            assert_falls_back_identically(&dir, &want, &["corrupt"], &format!("{file} magic {at}"));
        }
        // A deleted sidecar downgrades the whole set to `no_sidecar`.
        std::fs::remove_file(&path).unwrap();
        assert_falls_back_identically(&dir, &want, &["no_sidecar"], &format!("{file} missing"));
        std::fs::write(&path, &original).unwrap();
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sidecars_from_an_older_corpus_are_stale_never_served() {
    // Sidecars indexed over yesterday's store contents must be refused
    // by fingerprint, not served against today's tables.
    let old_dir = tmp("sidecar_stale_old");
    save_store_as(&sample_corpus(), &old_dir, 2, StoreFormat::ColV1).unwrap();
    build_sidecars(&old_dir).unwrap();

    let mut newer = sample_corpus();
    newer.push(AnnotatedTable::new(
        Table::from_string_rows("added_later", &["fresh_col"], vec![vec!["v".to_string()]])
            .unwrap(),
    ));
    let dir = tmp("sidecar_stale_new");
    save_store_as(&newer, &dir, 2, StoreFormat::ColV1).unwrap();
    for file in SIDECAR_FILES {
        std::fs::copy(old_dir.join(file), dir.join(file)).unwrap();
    }
    let want = endpoint_sample(&QueryEngine::load_materialized(&dir).unwrap());
    assert_falls_back_identically(&dir, &want, &["stale"], "older-corpus sidecars");
    std::fs::remove_dir_all(&old_dir).ok();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn migrate_invalidates_sidecars() {
    // `migrate` rewrites every shard; sidecars indexed over the old
    // bytes are removed with them, so the next boot rebuilds.
    let dir = tmp("sidecar_migrate");
    save_store_as(&sample_corpus(), &dir, 2, StoreFormat::ColV1).unwrap();
    build_sidecars(&dir).unwrap();
    assert_eq!(
        QueryEngine::load(&dir).unwrap().build_stats().boot_path,
        "sidecar"
    );
    migrate_store(&dir, StoreFormat::Jsonl).unwrap();
    let want = endpoint_sample(&QueryEngine::load_materialized(&dir).unwrap());
    assert_falls_back_identically(&dir, &want, &["no_sidecar"], "post-migration boot");
    // Re-indexing restores the fast path over the new format.
    build_sidecars(&dir).unwrap();
    let engine = QueryEngine::load(&dir).unwrap();
    assert_eq!(engine.build_stats().boot_path, "sidecar");
    assert_eq!(endpoint_sample(&engine), want);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn engine_reports_cold_start_breakdown_per_format() {
    let corpus = sample_corpus();
    let base = tmp("engine");
    for format in StoreFormat::ALL {
        let sd = base.join(format!("store_{format}"));
        save_store_as(&corpus, &sd, 2, format).unwrap();
        let engine = QueryEngine::load(&sd).unwrap();
        let stats = engine.build_stats();
        assert_eq!(stats.store_format.as_deref(), Some(format.name()));
        assert!(stats.store_load_ms >= 0.0);
        assert!(stats.index_build_ms > 0.0);
        // The breakdown is served via /metrics (snapshot carries it).
        let snap = serde_json::to_string(
            &gittables_serve::Metrics::new()
                .snapshot(gittables_serve::CacheStats::default(), stats.clone()),
        )
        .unwrap();
        assert!(snap.contains("store_load_ms"), "{snap}");
        assert!(snap.contains(format.name()), "{snap}");
    }
    // In-memory engines have no store to attribute load time to.
    let direct = QueryEngine::from_corpus(corpus);
    assert_eq!(direct.build_stats().store_format, None);
    assert_eq!(direct.build_stats().store_load_ms, 0.0);
    std::fs::remove_dir_all(&base).ok();
}
