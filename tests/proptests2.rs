//! Second property-test batch: provenance-bearing utilities and the search
//! query language.

use gittables_corpus::dedup::table_fingerprint;
use gittables_corpus::{union_tables, AnnotatedTable, Corpus, UnionGroup};
use gittables_curate::faker::{Faker, FakerClass};
use gittables_githost::Query;
use gittables_table::{Provenance, Table};
use proptest::prelude::*;

fn table_strategy() -> impl Strategy<Value = Table> {
    (
        proptest::collection::vec("[a-z]{1,8}", 1..5),
        1usize..6,
        any::<u64>(),
    )
        .prop_map(|(header, nrows, seed)| {
            let ncols = header.len();
            let rows: Vec<Vec<String>> = (0..nrows)
                .map(|r| {
                    (0..ncols)
                        .map(|c| format!("v{}", seed.wrapping_add((r * ncols + c) as u64) % 97))
                        .collect()
                })
                .collect();
            Table::from_string_rows("t", &header, rows).expect("valid table")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Union of any group of same-schema tables has the summed row count and
    /// the shared schema.
    #[test]
    fn union_preserves_rows_and_schema(base in table_strategy(), copies in 1usize..5) {
        let mut corpus = Corpus::new("p");
        for i in 0..copies {
            let mut t = base.clone();
            t.set_provenance(Provenance::new("r/x", format!("{i}.csv")));
            corpus.push(AnnotatedTable::new(t));
        }
        let group = UnionGroup {
            repository: "r/x".into(),
            schema: base.schema().attributes().to_vec(),
            members: (0..copies).collect(),
        };
        let unioned = union_tables(&corpus, &group).expect("compatible");
        prop_assert_eq!(unioned.num_rows(), base.num_rows() * copies);
        prop_assert_eq!(unioned.schema(), base.schema());
    }

    /// Fingerprints are content-determined: equal content ⇒ equal hash;
    /// changing one cell ⇒ (statistically) different hash.
    #[test]
    fn fingerprint_content_sensitivity(t in table_strategy()) {
        let a = AnnotatedTable::new(t.clone());
        let b = AnnotatedTable::new(t.clone());
        prop_assert_eq!(table_fingerprint(&a.table), table_fingerprint(&b.table));
        // Mutate one cell.
        let mut cols = t.columns().to_vec();
        let mut values = cols[0].values().to_vec();
        values[0] = format!("{}-mutated", values[0]);
        cols[0].replace_values(values);
        let mutated = Table::new("t", cols).expect("valid");
        prop_assert_ne!(table_fingerprint(&a.table), table_fingerprint(&mutated));
    }

    /// Query display → parse round-trips term, extension, and size range.
    #[test]
    fn query_roundtrip(term in "[a-z]{1,10}( [a-z]{1,10})?", lo in 0usize..1000, span in 1usize..100_000) {
        let q = Query::csv(&term).with_size(lo, lo + span);
        let parsed = Query::parse(&q.to_string()).expect("parse back");
        prop_assert_eq!(parsed.term, q.term);
        prop_assert_eq!(parsed.extension, q.extension);
        prop_assert_eq!(parsed.size, q.size);
    }

    /// Faker values have the right shape for every class and are
    /// deterministic per seed.
    #[test]
    fn faker_shapes(seed in any::<u64>()) {
        let classes = [
            FakerClass::Name,
            FakerClass::Address,
            FakerClass::Email,
            FakerClass::Date,
            FakerClass::City,
            FakerClass::Postcode,
        ];
        let mut a = Faker::new(seed);
        let mut b = Faker::new(seed);
        for class in classes {
            let va = a.value(class);
            let vb = b.value(class);
            prop_assert_eq!(&va, &vb);
            prop_assert!(!va.is_empty());
            match class {
                FakerClass::Email => prop_assert!(va.contains('@')),
                FakerClass::Postcode => {
                    prop_assert_eq!(va.len(), 5);
                    prop_assert!(va.bytes().all(|c| c.is_ascii_digit()));
                }
                FakerClass::Date => prop_assert_eq!(va.len(), 10),
                FakerClass::Name => prop_assert!(va.contains(' ')),
                _ => {}
            }
        }
    }
}
