//! Crash-consistency torture: a store-backed pipeline run is SIGKILLed at
//! seeded failpoints inside the durability path (shard fsync, manifest
//! write/fsync/rename, directory fsync), then resumed — and the resumed
//! store must always converge to the bit-identical uninterrupted corpus.
//!
//! SIGKILL leaves no unwinding and no destructors, so each interrupted
//! build runs in a **child process**: the test re-execs its own binary
//! filtered to [`child_build`] with `GITTABLES_FAILPOINTS=<site>=kill@N`
//! in its environment; the kill fires on the N-th hit of the site. The
//! parent then reopens whatever the kill left on disk and resumes
//! in-process with failpoints disarmed.
//!
//! Rounds default to 5 (one per failpoint site); CI sets
//! `GT_TORTURE_ROUNDS=20` to sweep more (site, N) combinations.

use gittables_core::{FaultPolicy, Pipeline, PipelineConfig};
use gittables_corpus::store::CorpusStore;
use gittables_githost::GitHost;

const DIR_VAR: &str = "GT_TORTURE_DIR";
const SEED: u64 = 90;

/// Every failpoint site on the store's durability path, in commit order.
const SITES: [&str; 5] = [
    "store::shard_fsync",
    "store::manifest_write",
    "store::manifest_fsync",
    "store::manifest_rename",
    "store::dir_fsync",
];

/// The pipeline both halves build: small enough that a round is cheap,
/// large enough for several repository shards (so a kill can land between
/// commits).
fn pipeline() -> Pipeline {
    Pipeline::new(PipelineConfig {
        fault: FaultPolicy {
            sleep: false,
            ..FaultPolicy::default()
        },
        ..PipelineConfig::sized(SEED, 2, 6)
    })
}

fn populated(pipeline: &Pipeline) -> GitHost {
    let host = GitHost::new();
    pipeline.populate_host(&host);
    host
}

/// Child half: builds the corpus into `$GT_TORTURE_DIR` with whatever
/// failpoints `$GITTABLES_FAILPOINTS` arms — a `kill` mode point SIGKILLs
/// this process mid-commit. Inert no-op in a normal suite run (the env
/// var is unset).
#[test]
fn child_build() {
    let Ok(dir) = std::env::var(DIR_VAR) else {
        return;
    };
    let pipeline = pipeline();
    let store = CorpusStore::open_or_create(&dir, pipeline.corpus_name()).unwrap();
    pipeline
        .run_to_store(&populated(&pipeline), &store)
        .unwrap();
    println!("TORTURE_CHILD_COMPLETED");
}

/// Spawns [`child_build`] with `site=kill@nth` armed. Returns whether the
/// child was SIGKILLed (vs completing because the site was hit fewer than
/// `nth` times).
fn spawn_interrupted(dir: &std::path::Path, site: &str, nth: u32) -> bool {
    use std::os::unix::process::ExitStatusExt;

    let exe = std::env::current_exe().expect("current exe");
    let out = std::process::Command::new(exe)
        .args(["child_build", "--exact", "--nocapture", "--test-threads=1"])
        .env(DIR_VAR, dir)
        .env("GITTABLES_FAILPOINTS", format!("{site}=kill@{nth}"))
        .output()
        .expect("spawn torture child");
    if out.status.success() {
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(
            stdout.contains("TORTURE_CHILD_COMPLETED"),
            "child exited 0 without finishing the build:\n{stdout}"
        );
        return false;
    }
    assert_eq!(
        out.status.signal(),
        Some(9),
        "child must die by SIGKILL, not fail: {}\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    true
}

#[test]
fn sigkill_mid_commit_then_resume_is_bit_identical() {
    let pipeline = pipeline();
    let (reference_corpus, reference_report) = pipeline.run_parallel(&populated(&pipeline));

    let rounds: u32 = std::env::var("GT_TORTURE_ROUNDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5);
    let mut kills = 0u32;
    for round in 0..rounds {
        let site = SITES[round as usize % SITES.len()];
        // Sweep the kill deeper into the run as rounds progress, so early
        // commits, mid-run commits, and the final manifest all get hit.
        let nth = round / SITES.len() as u32 + 1;
        let dir = std::env::temp_dir().join(format!("gt_torture_{}_{round}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();

        let killed = spawn_interrupted(&dir, site, nth);
        kills += u32::from(killed);

        // Resume over the wreckage: whatever state the SIGKILL left —
        // torn manifest temp, fsynced-but-uncommitted shard, missing
        // directory entry — the resumed run must converge exactly.
        let store = CorpusStore::open_or_create(&dir, pipeline.corpus_name())
            .unwrap_or_else(|e| panic!("round {round} ({site}@{nth}): store unopenable: {e}"));
        let resumed = pipeline
            .run_to_store(&populated(&pipeline), &store)
            .unwrap_or_else(|e| panic!("round {round} ({site}@{nth}): resume failed: {e}"));
        assert_eq!(
            resumed.corpus, reference_corpus,
            "round {round} ({site}@{nth}, killed={killed}): resumed corpus diverged"
        );
        assert_eq!(
            resumed.report, reference_report,
            "round {round} ({site}@{nth}, killed={killed}): resumed report diverged"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
    assert!(
        kills > 0,
        "no round actually interrupted the child — the torture proved nothing"
    );
}
