//! Round-trip property tests of the SQL ingestion path (ISSUE 9): a table
//! rendered as a SQL dump in **any** dialect must parse back cell-for-cell
//! — quotes, semicolons, newlines, NULLs, unicode and all — and must agree
//! with the CSV renderer + parser over the same table from the same seed.

use gittables_synth::sqlrender::{render_sql_dialect, SqlRenderOptions};
use gittables_synth::tablegen::GeneratedTable;
use gittables_synth::{generate_table, render_csv, Domain, MessModel, SchemaPlan, SchemaSampler};
use gittables_tablecsv::{read_csv, Dialect as CsvDialect, ReadOptions};
use gittables_tablesql::{read_sql_tables, sniff_dialect, SqlDialect, SqlReadOptions};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Adversarial cell payloads: every character class the statement splitter
/// and both unescapers must survive.
const NASTY: &[&str] = &[
    "it's \"quoted\"",
    "semi;colons, commas",
    "line\nbreak",
    "καφές ☕ 表",
    "back\\slash\\",
    "NULL",
    "`tick` $tag$ [brack]",
    "-- not a comment",
    "/* not */ a block",
    "tab\there",
];

fn cell() -> impl Strategy<Value = String> {
    ("[a-z0-9]{0,8}", 0usize..(NASTY.len() + 4)).prop_map(|(s, sel)| match NASTY.get(sel) {
        Some(n) => format!("{s}{n}"),
        // A couple of extra slots so plain text and empty (→ NULL) cells
        // stay common.
        None if sel == NASTY.len() => String::new(),
        None => s,
    })
}

fn plan() -> SchemaPlan {
    let mut rng = StdRng::seed_from_u64(0);
    SchemaSampler::default().sample(&mut rng, "order", Domain::Business)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sql_dump_round_trips_and_matches_csv(
        header in proptest::collection::vec("[a-zA-Z_][a-zA-Z0-9 _]{0,10}", 1..5),
        rows in proptest::collection::vec(proptest::collection::vec(cell(), 1..5), 1..8),
        seed in 0u64..1_000,
    ) {
        let width = header.len();
        let rows: Vec<Vec<String>> = rows
            .into_iter()
            .map(|mut r| {
                r.resize(width, String::new());
                // The CSV reader drops all-blank rows (§3.3); keep every
                // row comparable across both ingestion paths.
                if r.iter().all(|c| c.trim().is_empty()) {
                    r[0] = "x".to_string();
                }
                r
            })
            .collect();
        let table = GeneratedTable {
            header: header.clone(),
            rows: rows.clone(),
            plan: plan(),
        };

        // CSV path from the same seed.
        let mut rng = StdRng::seed_from_u64(seed);
        let csv = render_csv(&mut rng, &table, &MessModel::clean());
        let copts = ReadOptions {
            dialect: Some(CsvDialect::default()),
            ..ReadOptions::default()
        };
        let cparsed = read_csv(&csv, &copts).expect("clean CSV parses");
        prop_assert_eq!(&cparsed.header, &header);
        prop_assert_eq!(&cparsed.records, &rows);

        // SQL path: every dialect, same seed, cell-for-cell.
        for dialect in SqlDialect::ALL {
            let mut rng = StdRng::seed_from_u64(seed);
            let sql = render_sql_dialect(
                &mut rng,
                "prop_table",
                &table,
                dialect,
                &SqlRenderOptions::clean(),
            );
            let sopts = SqlReadOptions {
                dialect: Some(dialect),
                ..SqlReadOptions::default()
            };
            let parsed = read_sql_tables(&sql, &sopts)
                .unwrap_or_else(|e| panic!("{dialect:?}: {e}\n--- dump ---\n{sql}"));
            prop_assert_eq!(parsed.tables.len(), 1);
            let st = &parsed.tables[0];
            prop_assert_eq!(&st.name, "prop_table");
            prop_assert_eq!(&st.header, &header);
            prop_assert_eq!(st.num_rows(), rows.len(), "{:?}\n{}", dialect, sql);
            for (i, row) in rows.iter().enumerate() {
                for (j, want) in row.iter().enumerate() {
                    prop_assert_eq!(
                        &st.columns[j][i], want,
                        "{:?} cell ({}, {})", dialect, i, j
                    );
                }
            }
            // By the two assertions above, SQL cells == `rows` == CSV cells:
            // both ingestion paths recover the identical table.
        }
    }

    /// Synth-realistic tables (no adversarial payloads) must additionally
    /// round-trip through *sniffed* dialect detection, as the pipeline
    /// parses them.
    #[test]
    fn synth_tables_round_trip_via_sniffing(seed in 0u64..200) {
        let mut rng = StdRng::seed_from_u64(seed);
        let plan = SchemaSampler::default().sample(&mut rng, "ride", Domain::Geo);
        let table = generate_table(&mut rng, &plan);
        for dialect in SqlDialect::ALL {
            let mut rng = StdRng::seed_from_u64(seed ^ 0xabcd);
            let sql = render_sql_dialect(
                &mut rng,
                "rides",
                &table,
                dialect,
                &SqlRenderOptions::clean(),
            );
            prop_assert_eq!(sniff_dialect(&sql), Some(dialect));
            let parsed = read_sql_tables(&sql, &SqlReadOptions::default())
                .unwrap_or_else(|e| panic!("{dialect:?}: {e}"));
            prop_assert_eq!(&parsed.tables[0].header, &table.header);
            prop_assert_eq!(parsed.tables[0].num_rows(), table.rows.len());
        }
    }
}
