//! Integration tests of the corpus tooling (export, dedup, joins) over a
//! pipeline-built corpus.

use gittables_core::{Pipeline, PipelineConfig};
use gittables_corpus::{dedup_indices, exact_duplicates, export_csv, join_candidates, join_tables};
use gittables_githost::GitHost;

fn corpus(seed: u64) -> gittables_corpus::Corpus {
    let pipeline = Pipeline::new(PipelineConfig::sized(seed, 4, 15));
    let host = GitHost::new();
    pipeline.populate_host(&host);
    pipeline.run(&host).0
}

#[test]
fn export_writes_parseable_files_for_whole_corpus() {
    let c = corpus(41);
    let dir = std::env::temp_dir().join(format!("gt_it_export_{}", std::process::id()));
    let n = export_csv(&c, &dir).expect("export");
    assert_eq!(n, c.len());
    // Every topic subset got a directory; spot-check files parse back.
    let manifest = std::fs::read_to_string(dir.join("manifest.tsv")).expect("manifest");
    assert_eq!(manifest.lines().count(), n + 1);
    let mut checked = 0;
    for line in manifest.lines().skip(1).take(10) {
        let path = line.split('\t').next().expect("path column");
        let text = std::fs::read_to_string(path).expect("exported file");
        let parsed = gittables_tablecsv::read_csv(&text, &Default::default()).expect("reparse");
        assert!(!parsed.records.is_empty());
        checked += 1;
    }
    assert!(checked > 0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn dedup_is_idempotent_and_order_preserving() {
    let c = corpus(43);
    let idx = dedup_indices(&c);
    assert!(idx.len() <= c.len());
    for w in idx.windows(2) {
        assert!(w[0] < w[1]);
    }
    // Groups and survivors are consistent: survivors = total - extra members.
    let dup_extra: usize = exact_duplicates(&c)
        .iter()
        .map(|g| g.members.len() - 1)
        .sum();
    assert_eq!(idx.len(), c.len() - dup_extra);
}

#[test]
fn joins_materialize_with_consistent_arity() {
    let c = corpus(47);
    let cands = join_candidates(&c, 0.3);
    for cand in cands.iter().take(5) {
        let left = &c.tables[cand.left].table;
        let right = &c.tables[cand.right].table;
        let joined = join_tables(&c, cand).expect("join");
        assert_eq!(
            joined.num_columns(),
            left.num_columns() + right.num_columns() - 1
        );
        assert!(joined.num_rows() <= left.num_rows());
    }
}
