//! End-to-end pipeline integration tests spanning all crates.

use gittables_annotate::Method;
use gittables_core::{Pipeline, PipelineConfig};
use gittables_corpus::{AnnotationStats, CorpusStats};
use gittables_githost::GitHost;
use gittables_ontology::OntologyKind;

fn build(
    seed: u64,
    topics: usize,
    repos: usize,
) -> (gittables_corpus::Corpus, gittables_core::PipelineReport) {
    let pipeline = Pipeline::new(PipelineConfig::sized(seed, topics, repos));
    let host = GitHost::new();
    pipeline.populate_host(&host);
    pipeline.run(&host)
}

#[test]
fn parse_rate_matches_paper_regime() {
    let (_, report) = build(1, 5, 25);
    // Paper: 99.3 % of CSV files parse into tables.
    assert!(
        report.parse_rate() > 0.97,
        "parse rate {:.3}",
        report.parse_rate()
    );
}

#[test]
fn filter_rate_matches_paper_regime() {
    let (_, report) = build(2, 5, 25);
    // Paper: curation filters out ≈9 % of parsed tables (we accept 2–15 %).
    let rate = report.filter_rate();
    assert!((0.01..0.20).contains(&rate), "filter rate {rate:.3}");
}

#[test]
fn corpus_dimensions_database_like() {
    let (corpus, _) = build(3, 6, 30);
    let stats = CorpusStats::of(&corpus);
    // Web tables average ~17×4; GitTables averages 142×12. The reproduction
    // must land clearly in database-like territory.
    assert!(stats.avg_rows > 50.0, "avg rows {}", stats.avg_rows);
    assert!(stats.avg_columns > 7.0, "avg cols {}", stats.avg_columns);
}

#[test]
fn numeric_columns_dominate() {
    let (corpus, _) = build(4, 6, 30);
    let (numeric, string, other) = CorpusStats::of(&corpus).atomic_fractions;
    // Table 4: 57.9 % numeric vs 41.6 % string, 0.5 % other.
    assert!(numeric > string, "numeric {numeric} vs string {string}");
    assert!(other < 0.05, "other {other}");
}

#[test]
fn semantic_coverage_exceeds_syntactic() {
    let (corpus, _) = build(5, 5, 20);
    let syn = AnnotationStats::of(&corpus, Method::Syntactic, OntologyKind::DBpedia, 10, 5);
    let sem = AnnotationStats::of(&corpus, Method::Semantic, OntologyKind::DBpedia, 10, 5);
    // Paper: semantic annotates 71 % of columns, syntactic 26 %.
    assert!(
        sem.mean_coverage > syn.mean_coverage + 0.1,
        "semantic {:.2} vs syntactic {:.2}",
        sem.mean_coverage,
        syn.mean_coverage
    );
    assert!(sem.annotated_tables >= syn.annotated_tables);
}

#[test]
fn id_is_a_top_type() {
    // §4.2: `id` — one of the most common types in databases — must be a top
    // semantic type in GitTables (it is absent from web-table top-10s).
    let (corpus, _) = build(6, 6, 30);
    let s = AnnotationStats::of(&corpus, Method::Syntactic, OntologyKind::DBpedia, 10, 10);
    let top: Vec<&str> = s.top_types.iter().map(|(l, _)| l.as_str()).collect();
    assert!(top.contains(&"id"), "top types: {top:?}");
}

#[test]
fn provenance_links_back_to_host() {
    let pipeline = Pipeline::new(PipelineConfig::small(7));
    let host = GitHost::new();
    pipeline.populate_host(&host);
    let (corpus, _) = pipeline.run(&host);
    for at in corpus.tables.iter().take(20) {
        let p = at.table.provenance();
        assert!(
            host.fetch(&p.repository, &p.path).is_some(),
            "missing source file {}",
            p.url()
        );
        assert!(!p.topic.is_empty());
    }
}

#[test]
fn anonymization_preserves_dimensions() {
    let (corpus, report) = build(8, 8, 25);
    // PII replacement swaps values but never changes table shape.
    for at in &corpus.tables {
        for col in at.table.columns() {
            assert_eq!(col.len(), at.table.num_rows());
        }
    }
    assert!(report.pii_rate() < 0.05, "pii rate {}", report.pii_rate());
}

#[test]
fn topic_subsets_partition_corpus() {
    let (corpus, _) = build(9, 5, 20);
    let total: usize = corpus
        .topics()
        .iter()
        .map(|t| corpus.topic_subset(t).len())
        .sum();
    assert_eq!(total, corpus.len());
}

#[test]
fn snapshot_repos_form_union_groups() {
    // §4.1: snapshot repositories hold many same-schema tables that can be
    // recombined through unions. Force a snapshot-heavy host and verify the
    // union machinery reassembles larger tables.
    let mut config = PipelineConfig::sized(12, 4, 30);
    config.topics = gittables_synth::wordnet::topic_subset(4);
    let pipeline = Pipeline::new(config);
    let host = GitHost::new();
    // Populate with an elevated snapshot probability.
    let gen = gittables_synth::repo::RepoGenerator::with_config(
        12,
        gittables_synth::repo::RepoConfig {
            snapshot_prob: 0.3,
            ..Default::default()
        },
    );
    for topic in &pipeline.config.topics {
        for i in 0..pipeline.config.repos_per_topic {
            let spec = gen.generate(topic, i);
            host.add_repository(gittables_githost::Repository {
                full_name: spec.full_name,
                license: spec.license,
                fork: spec.fork,
                files: spec
                    .files
                    .into_iter()
                    .map(|f| gittables_githost::RepoFile::new(f.path, f.content))
                    .collect(),
            });
        }
    }
    let (corpus, _) = pipeline.run(&host);
    let groups = gittables_corpus::union_groups(&corpus, 3);
    assert!(!groups.is_empty(), "expected snapshot union groups");
    let g = &groups[0];
    let unioned = gittables_corpus::union_tables(&corpus, g).expect("union");
    let member_rows: usize = g
        .members
        .iter()
        .map(|&i| corpus.tables[i].table.num_rows())
        .sum();
    assert_eq!(unioned.num_rows(), member_rows);
    assert!(unioned.num_rows() > corpus.tables[g.members[0]].table.num_rows());
}

#[test]
fn corpus_persists_roundtrip() {
    let (corpus, _) = build(10, 3, 8);
    let dir = std::env::temp_dir().join("gittables_it");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("c.json");
    gittables_corpus::persist::save_corpus(&corpus, &path).unwrap();
    let loaded = gittables_corpus::persist::load_corpus(&path).unwrap();
    assert_eq!(corpus, loaded);
    std::fs::remove_file(&path).ok();
}
