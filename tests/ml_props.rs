//! Property tests of the ML substrate: classifier contracts that must hold
//! for any data.

use gittables_ml::{
    Classifier, Dataset, ForestConfig, LogisticConfig, LogisticRegression, Mlp, MlpConfig,
    RandomForest,
};
use proptest::prelude::*;

fn dataset_strategy() -> impl Strategy<Value = Dataset> {
    (2usize..40, 1usize..4, any::<u64>()).prop_map(|(n, dim, seed)| {
        let mut state = seed;
        let mut next = move || {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            (state >> 33) as f32 / (1u64 << 31) as f32 - 0.5
        };
        let mut d = Dataset::new(vec![], vec![], vec!["a".into(), "b".into()]);
        for i in 0..n {
            let y = i % 2;
            let x: Vec<f32> = (0..dim)
                .map(|_| next() + if y == 0 { -1.0 } else { 1.0 })
                .collect();
            d.push(x, y);
        }
        d
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every classifier predicts a valid class index for any input after
    /// fitting on any dataset, and prediction is deterministic.
    #[test]
    fn classifiers_total_and_deterministic(d in dataset_strategy(), probe in proptest::collection::vec(-10.0f32..10.0, 0..4)) {
        let k = d.num_classes();
        let mut forest = RandomForest::new(ForestConfig { n_trees: 3, ..Default::default() });
        let mut logistic = LogisticRegression::new(LogisticConfig { epochs: 3, ..Default::default() });
        let mut mlp = Mlp::new(MlpConfig { epochs: 3, hidden: 4, ..Default::default() });
        forest.fit(&d);
        logistic.fit(&d);
        mlp.fit(&d);
        for model in [&forest as &dyn Classifier, &logistic, &mlp] {
            let p1 = model.predict(&probe);
            let p2 = model.predict(&probe);
            prop_assert!(p1 < k.max(1));
            prop_assert_eq!(p1, p2);
        }
    }

    /// Forest probability vectors are valid distributions.
    #[test]
    fn forest_proba_is_distribution(d in dataset_strategy(), probe in proptest::collection::vec(-10.0f32..10.0, 1..4)) {
        let mut forest = RandomForest::new(ForestConfig { n_trees: 5, ..Default::default() });
        forest.fit(&d);
        let p = forest.predict_proba(&probe);
        prop_assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        for v in p {
            prop_assert!((0.0..=1.0).contains(&v));
        }
        // Importances form a (sub-)distribution too.
        let imp = forest.feature_importance();
        let total: f64 = imp.iter().sum();
        prop_assert!(total <= 1.0 + 1e-9);
        for v in imp {
            prop_assert!(v >= 0.0);
        }
    }

    /// Stratified folds partition the sample set for any k.
    #[test]
    fn folds_partition(d in dataset_strategy(), k in 2usize..6, seed in any::<u64>()) {
        let folds = d.stratified_folds(k, seed);
        prop_assert_eq!(folds.len(), k);
        let mut seen = vec![false; d.len()];
        for f in &folds {
            for &i in f {
                prop_assert!(!seen[i]);
                seen[i] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }
}
