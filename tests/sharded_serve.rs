//! Scale-out correctness battery: a corpus served by N shard-local
//! engines behind the scatter-gather [`Router`] must answer every
//! endpoint **byte-identically** to the single whole-corpus engine —
//! for random corpora and every shard count (proptest), and at the HTTP
//! level between two running servers. Live `/reload` under concurrent
//! load must drop or corrupt zero responses.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use gittables_annotate::Annotation;
use gittables_corpus::{save_store, AnnotatedTable, Corpus};
use gittables_serve::{
    build_sidecars, client, QueryEngine, ReloadResponse, ReloadSpec, Router, Server, ServerConfig,
    ShardSet,
};
use gittables_table::{Provenance, Table};
use proptest::prelude::*;

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "gt_shard_{tag}_{}_{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Cell vocabulary stressing encoding paths, duplicate schemas (for the
/// completion dedup), and shared type labels across shard boundaries.
const NASTY: &[&str] = &[
    "plain",
    "",
    "nan",
    "has,comma",
    "café ☕ 表",
    "two\nlines",
    "123",
    "true",
];

#[derive(Debug, Clone)]
struct Spec {
    tables: Vec<(usize, usize)>,
    salt: u64,
}

fn spec_strategy() -> impl Strategy<Value = Spec> {
    (1usize..9, 1usize..4, 0usize..5, 0u64..u64::MAX).prop_map(|(n, cols, rows, salt)| Spec {
        tables: (0..n)
            .map(|i| (1 + (cols + i) % 4, (rows + 3 * i) % 5))
            .collect(),
        salt,
    })
}

fn build_corpus(spec: &Spec) -> Corpus {
    let mut corpus = Corpus::new(format!("shard-{}", spec.salt % 997));
    for (ti, &(cols, rows)) in spec.tables.iter().enumerate() {
        // Every third table repeats the schema of table 0: duplicate
        // schemas land in different shards, exercising the router's
        // cross-shard completion dedup.
        let schema_tag = if ti % 3 == 0 { 0 } else { ti };
        let header: Vec<String> = (0..cols).map(|c| format!("col{c}_{schema_tag}")).collect();
        let row_data: Vec<Vec<String>> = (0..rows)
            .map(|r| {
                (0..cols)
                    .map(|c| {
                        let k = spec
                            .salt
                            .wrapping_mul(31)
                            .wrapping_add((ti * 131 + r * 17 + c) as u64);
                        NASTY[(k % NASTY.len() as u64) as usize].to_string()
                    })
                    .collect()
            })
            .collect();
        let prov = Provenance::new(format!("owner/repo{}", ti % 3), format!("data/t{ti}.csv"))
            .with_topic(NASTY[(spec.salt as usize + ti) % NASTY.len()]);
        let table = Table::from_string_rows(format!("t{ti}"), &header, row_data)
            .unwrap()
            .with_provenance(prov);
        let mut at = AnnotatedTable::new(table);
        for (si, (method, ontology)) in Corpus::annotation_configs().into_iter().enumerate() {
            let slot = at.annotations_mut(method, ontology);
            slot.num_columns = cols;
            for c in 0..cols {
                if (spec.salt as usize + ti + si + c).is_multiple_of(2) {
                    slot.annotations.push(Annotation {
                        column: c,
                        type_id: ((spec.salt as u32).wrapping_add(c as u32)) % 1000,
                        // A small label pool so the same label spans
                        // multiple shards and /types must sum counts.
                        label: format!("type {}", (ti + c) % 3),
                        ontology,
                        method,
                        similarity: ((spec.salt % 1000) as f32).mul_add(1e-3, 1e-4 * c as f32),
                    });
                }
            }
        }
        corpus.push(at);
    }
    corpus
}

fn json<T: serde::Serialize>(v: &T) -> String {
    serde_json::to_string(v).unwrap()
}

/// Serializes every endpoint answer of a router, in deterministic order.
fn router_bytes(router: &Router) -> Vec<String> {
    let mut out = vec![json(&router.health())];
    for (q, k) in [
        ("status and sales amount", 3),
        ("col0", 1),
        ("café ☕ 表", 20),
        ("", 2),
        ("col1 col2", 0),
    ] {
        out.push(json(&router.search(q, k).unwrap()));
    }
    for prefix in [vec!["col0_0"], vec!["col0_1", "col1_1"], vec!["nope"]] {
        for k in [0, 2, 20] {
            out.push(json(&router.complete(&prefix, k).unwrap()));
        }
    }
    out.push(json(&router.type_counts().unwrap()));
    for tc in router.type_counts().unwrap() {
        out.push(json(&router.type_tables(&tc.label).unwrap()));
    }
    out.push(json(&router.type_tables("zzz_not_a_type").unwrap()));
    for id in 0..router.num_tables() + 2 {
        out.push(json(&router.try_table_summary(id).unwrap()));
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// For random corpora: every shard count answers every endpoint
    /// byte-identically to the single whole-corpus engine, on both the
    /// sidecar and the rebuild boot path.
    #[test]
    fn any_shard_count_matches_single_engine(
        spec in spec_strategy(),
        shards in 2usize..6,
        with_sidecars in any::<bool>(),
    ) {
        let corpus = build_corpus(&spec);
        let dir = tmp("prop");
        save_store(&corpus, &dir, 2).unwrap();
        if with_sidecars {
            build_sidecars(&dir).unwrap();
        }

        let single = Router::new(ShardSet::load(&dir, 1).unwrap());
        prop_assert_eq!(single.num_shards(), 1);
        let sharded = Router::new(ShardSet::load(&dir, shards).unwrap());
        if with_sidecars {
            prop_assert_eq!(&sharded.shard_set().build_stats().boot_path, "sidecar");
        }

        let want = router_bytes(&single);
        let got = router_bytes(&sharded);
        prop_assert_eq!(got.len(), want.len());
        for (i, (g, w)) in got.iter().zip(&want).enumerate() {
            prop_assert_eq!(
                g, w,
                "endpoint {} differs at {} shards (sidecars: {})",
                i, shards, with_sidecars
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn sharded_server_http_bytes_equal_single_shard_server() {
    // Two live servers over the same store — one engine vs three shard
    // engines — must emit byte-identical HTTP bodies for every target.
    let corpus = build_corpus(&Spec {
        tables: vec![(3, 4), (2, 2), (4, 1), (1, 3), (2, 3), (3, 0), (1, 1)],
        salt: 20260808,
    });
    let dir = tmp("http");
    save_store(&corpus, &dir, 2).unwrap();
    build_sidecars(&dir).unwrap();

    let one = Server::start_set(
        ShardSet::load(&dir, 1).unwrap(),
        "127.0.0.1:0",
        ServerConfig::default(),
    )
    .unwrap();
    let set = ShardSet::load(&dir, 3).unwrap();
    assert_eq!(set.num_shards(), 3);
    let three = Server::start_set(set, "127.0.0.1:0", ServerConfig::default()).unwrap();

    let mut targets = vec![
        "/health".to_string(),
        "/search?q=col0&k=5".to_string(),
        "/search?q=caf%C3%A9&k=20".to_string(),
        "/complete?prefix=col0_0&k=10".to_string(),
        "/complete?prefix=nope&k=3".to_string(),
        "/types".to_string(),
        "/types/type%200/tables".to_string(),
        "/types/zzz_nope/tables".to_string(),
        "/tables/notanid".to_string(),
    ];
    for id in 0..corpus.len() + 2 {
        targets.push(format!("/tables/{id}"));
    }
    for target in &targets {
        let (s1, b1) = client::get(one.addr(), target).expect("single-shard request");
        let (s3, b3) = client::get(three.addr(), target).expect("sharded request");
        assert_eq!(s1, s3, "{target}");
        assert_eq!(b1, b3, "HTTP bytes diverged for {target}");
    }

    one.shutdown();
    three.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn reload_swaps_snapshots_under_load_without_dropping_responses() {
    // Serve corpus A, hammer it from concurrent clients, rewrite the
    // store to corpus B mid-load, POST /reload: every response ever
    // received must be a complete, byte-exact answer from exactly one
    // of the two snapshots — no failures, no hybrids.
    let spec_a = Spec {
        tables: vec![(2, 3), (3, 1), (1, 4), (2, 2)],
        salt: 11,
    };
    let spec_b = Spec {
        tables: vec![(3, 2), (1, 1), (2, 5), (3, 3), (1, 2)],
        salt: 22,
    };
    let corpus_a = build_corpus(&spec_a);
    let dir = tmp("reload");
    save_store(&corpus_a, &dir, 2).unwrap();

    let target = "/search?q=col0&k=4";
    let body_a = json(
        &Router::new(ShardSet::load(&dir, 2).unwrap())
            .search("col0", 4)
            .unwrap(),
    );

    let handle = Server::start_set(
        ShardSet::load(&dir, 2).unwrap(),
        "127.0.0.1:0",
        ServerConfig {
            threads: 3,
            // No response cache: every request exercises the snapshot
            // it pinned, making a half-swapped answer detectable.
            cache_capacity: 0,
            reload: Some(ReloadSpec {
                dir: dir.clone(),
                shards: 2,
            }),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = handle.addr();
    assert_eq!(handle.num_shards(), 2);

    // Corpus B only exists after this point; compute its expected bytes
    // from an independent load.
    std::fs::remove_dir_all(&dir).unwrap();
    let corpus_b = build_corpus(&spec_b);
    save_store(&corpus_b, &dir, 3).unwrap();
    let body_b = json(
        &Router::new(ShardSet::load(&dir, 2).unwrap())
            .search("col0", 4)
            .unwrap(),
    );
    assert_ne!(body_a, body_b, "snapshots must be distinguishable");

    let stop = Arc::new(AtomicBool::new(false));
    let saw_b = Arc::new(AtomicBool::new(false));
    let total = Arc::new(AtomicUsize::new(0));
    let mut hammers = Vec::new();
    for _ in 0..4 {
        let (stop, saw_b, total) = (stop.clone(), saw_b.clone(), total.clone());
        let (body_a, body_b) = (body_a.clone(), body_b.clone());
        hammers.push(std::thread::spawn(move || {
            let mut client = client::HttpClient::connect(addr).expect("connect");
            while !stop.load(Ordering::SeqCst) {
                // Zero tolerance: under reload (unlike shutdown) every
                // single request must succeed with a full answer.
                let (status, body) = client.get(target).expect("request during reload");
                assert_eq!(status, 200);
                total.fetch_add(1, Ordering::SeqCst);
                if body == body_b {
                    saw_b.store(true, Ordering::SeqCst);
                } else {
                    assert_eq!(body, body_a, "response from neither snapshot");
                }
            }
        }));
    }

    // Let the hammer settle on snapshot A, then swap under load.
    std::thread::sleep(std::time::Duration::from_millis(150));
    let mut admin = client::HttpClient::connect(addr).expect("admin connect");
    let (status, body) = admin.post("/reload").expect("reload");
    assert_eq!(status, 200, "{body}");
    let ack: ReloadResponse = serde_json::from_str(&body).expect("reload JSON");
    assert_eq!(ack.status, "reloaded");
    assert_eq!(ack.generation, 1);
    assert_eq!(ack.shards, 2);
    assert_eq!(ack.tables, corpus_b.len());

    // Post-reload traffic must be answered from snapshot B.
    std::thread::sleep(std::time::Duration::from_millis(150));
    stop.store(true, Ordering::SeqCst);
    for h in hammers {
        h.join().expect("hammer thread");
    }
    assert!(saw_b.load(Ordering::SeqCst), "swap never became visible");
    assert!(total.load(Ordering::SeqCst) > 0, "hammer never ran");
    let (_, body) = client::get(addr, target).expect("post-reload request");
    assert_eq!(body, body_b);
    assert_eq!(handle.generation(), 1);

    handle.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn reload_method_and_availability_errors() {
    let corpus = build_corpus(&Spec {
        tables: vec![(2, 2), (1, 1)],
        salt: 33,
    });
    let dir = tmp("reload_err");
    save_store(&corpus, &dir, 8).unwrap();

    // Without a ReloadSpec the endpoint is a 409, not a 404: the route
    // exists, this deployment just cannot reload.
    let fixed = Server::start_set(
        ShardSet::load(&dir, 1).unwrap(),
        "127.0.0.1:0",
        ServerConfig::default(),
    )
    .unwrap();
    let mut c = client::HttpClient::connect(fixed.addr()).unwrap();
    let (status, _) = c.post("/reload").expect("post");
    assert_eq!(status, 409);
    fixed.shutdown();

    // With a spec: GET is a 405 (reload mutates state), POST works.
    let live = Server::start_set(
        ShardSet::load(&dir, 2).unwrap(),
        "127.0.0.1:0",
        ServerConfig {
            reload: Some(ReloadSpec {
                dir: dir.clone(),
                shards: 2,
            }),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let (status, _) = client::get(live.addr(), "/reload").expect("get");
    assert_eq!(status, 405);
    let mut c = client::HttpClient::connect(live.addr()).unwrap();
    let (status, body) = c.post("/reload").expect("post");
    assert_eq!(status, 200, "{body}");

    // A reload pointing at a now-broken store keeps the old snapshot.
    std::fs::remove_dir_all(&dir).unwrap();
    let (status, _) = c.post("/reload").expect("post after store loss");
    assert_eq!(status, 500);
    let (status, _) = client::get(live.addr(), "/health").expect("health");
    assert_eq!(status, 200, "old snapshot must keep serving");

    live.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn single_engine_start_still_serves() {
    // `Server::start` (the pre-scale-out API) must behave exactly as a
    // 1-shard start_set: existing callers see no change.
    let corpus = build_corpus(&Spec {
        tables: vec![(2, 2), (3, 1)],
        salt: 44,
    });
    let dir = tmp("compat");
    save_store(&corpus, &dir, 4).unwrap();
    let engine = Arc::new(QueryEngine::load(&dir).unwrap());
    let expected = json(&engine.search("col0", 3));
    let handle = Server::start(engine, "127.0.0.1:0", ServerConfig::default()).unwrap();
    assert_eq!(handle.num_shards(), 1);
    let (status, body) = client::get(handle.addr(), "/search?q=col0&k=3").unwrap();
    assert_eq!(status, 200);
    assert_eq!(body, expected);
    handle.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
