//! Property-based tests of the core invariants, via proptest.

use gittables_embed::NgramEmbedder;
use gittables_ontology::normalize_label;
use gittables_table::{infer_column_type, infer_value_type, AtomicType, Schema};
use gittables_tablecsv::{read_csv, write_csv, Dialect, ReadOptions};
use proptest::prelude::*;

/// Arbitrary cell content: printable text incl. delimiters, quotes, newlines.
fn cell() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[ -~\n]{0,24}").expect("valid regex")
}

/// Arbitrary non-degenerate header name (non-empty, not all-space).
fn header() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-zA-Z_][a-zA-Z0-9_ ]{0,15}").expect("valid regex")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// write_csv → read_csv is the identity on any table content, for any
    /// candidate dialect.
    #[test]
    fn csv_roundtrip(
        header in proptest::collection::vec(header(), 1..6),
        rows in proptest::collection::vec(
            proptest::collection::vec(cell(), 1..6), 1..8),
        delim_idx in 0usize..4,
    ) {
        let ncols = header.len();
        let rows: Vec<Vec<String>> = rows
            .into_iter()
            .map(|mut r| {
                r.resize(ncols, String::new());
                r
            })
            .collect();
        let dialect = Dialect::with_delimiter([b',', b';', b'\t', b'|'][delim_idx]);
        let text = write_csv(&header, &rows, dialect);
        let opts = ReadOptions { dialect: Some(dialect), ..Default::default() };
        match read_csv(&text, &opts) {
            Ok(parsed) => {
                prop_assert_eq!(&parsed.header, &header);
                // Rows that are entirely blank are legitimately dropped by the
                // §3.3 empty-line rule; all others must round-trip in order.
                let expect: Vec<&Vec<String>> = rows
                    .iter()
                    .filter(|r| !r.iter().all(|c| c.trim().is_empty()))
                    .collect();
                prop_assert_eq!(parsed.records.len(), expect.len());
                for (got, want) in parsed.records.iter().zip(expect) {
                    prop_assert_eq!(got, want);
                }
            }
            Err(e) => {
                // Only the all-blank-rows case may fail (NoRows).
                let all_blank = rows
                    .iter()
                    .all(|r| r.iter().all(|c| c.trim().is_empty()));
                prop_assert!(all_blank, "unexpected error {e} on {text:?}");
            }
        }
    }

    /// Label normalization is idempotent and produces lowercase output.
    #[test]
    fn normalize_idempotent(s in "[ -~]{0,32}") {
        let once = normalize_label(&s);
        let twice = normalize_label(&once);
        prop_assert_eq!(&once, &twice);
        prop_assert!(!once.chars().any(char::is_uppercase));
        prop_assert!(!once.starts_with(' ') && !once.ends_with(' '));
    }

    /// Value-type inference is total and deterministic; numeric values
    /// round-trip through parse.
    #[test]
    fn value_inference_total(s in "[ -~]{0,24}") {
        let t1 = infer_value_type(&s);
        let t2 = infer_value_type(&s);
        prop_assert_eq!(t1, t2);
        if t1 == AtomicType::Integer {
            prop_assert!(s.trim().parse::<i128>().is_ok(), "{}", s);
        }
        if t1 == AtomicType::Float {
            prop_assert!(s.trim().parse::<f64>().is_ok(), "{}", s);
        }
    }

    /// Column inference never claims numeric for a column without a single
    /// numeric cell.
    #[test]
    fn column_inference_sound(values in proptest::collection::vec("[a-zA-Z ]{1,8}", 1..12)) {
        let t = infer_column_type(&values);
        prop_assert!(!t.is_numeric(), "{:?} for {:?}", t, values);
    }

    /// Embedding cosine is bounded, symmetric, and reflexive (=1 on self for
    /// non-empty input).
    #[test]
    fn embedding_cosine_properties(a in "[a-z ]{1,16}", b in "[a-z ]{1,16}") {
        let e = NgramEmbedder::default();
        let ab = e.cosine(&a, &b);
        let ba = e.cosine(&b, &a);
        prop_assert!((-1.0..=1.0).contains(&ab));
        prop_assert!((ab - ba).abs() < 1e-5);
        if !a.trim().is_empty() {
            prop_assert!((e.cosine(&a, &a) - 1.0).abs() < 1e-5);
        }
    }

    /// Schema prefix+suffix always reconstructs the schema.
    #[test]
    fn schema_prefix_suffix_partition(
        attrs in proptest::collection::vec("[a-z]{1,8}", 0..10),
        n in 0usize..12,
    ) {
        let s = Schema::new(attrs.clone());
        let mut rebuilt: Vec<String> = s.prefix(n).attributes().to_vec();
        rebuilt.extend(s.suffix(n).iter().cloned());
        prop_assert_eq!(rebuilt, attrs);
    }

    /// Sniffer: a clean single-delimiter rendering is always detected as a
    /// dialect that re-parses to the same shape.
    #[test]
    fn sniffer_recovers_shape(
        ncols in 2usize..6,
        nrows in 2usize..8,
        delim_idx in 0usize..4,
    ) {
        let dialect = Dialect::with_delimiter([b',', b';', b'\t', b'|'][delim_idx]);
        let header: Vec<String> = (0..ncols).map(|i| format!("col{i}")).collect();
        let rows: Vec<Vec<String>> = (0..nrows)
            .map(|r| (0..ncols).map(|c| format!("v{r}x{c}")).collect())
            .collect();
        let text = write_csv(&header, &rows, dialect);
        let parsed = read_csv(&text, &ReadOptions::default()).expect("clean csv parses");
        prop_assert_eq!(parsed.header.len(), ncols);
        prop_assert_eq!(parsed.records.len(), nrows);
    }

    /// Feature extraction is total (finite) on arbitrary cell content.
    #[test]
    fn features_always_finite(values in proptest::collection::vec(cell(), 0..12)) {
        let f = gittables_ml::extract_features(&values);
        prop_assert_eq!(f.len(), gittables_ml::FEATURE_COUNT);
        for v in f {
            prop_assert!(v.is_finite());
        }
    }
}
