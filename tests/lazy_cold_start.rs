//! Cold-start regression pin for the sidecar boot path: booting the
//! engine off mapped sidecars must keep peak RSS near-flat as the corpus
//! doubles (the materialized rebuild grows linearly — that gap is the
//! point of the lazy path), report `boot_path: "sidecar"` under
//! `/metrics`, and spend ≈ 0 ms in index builds.
//!
//! Peak RSS (`VmHWM`) is a per-process high-water mark, so each boot is
//! measured in a **child process**: the test re-execs its own binary
//! filtered to [`child_probe`], which boots, answers one query per
//! endpoint family, and prints one `COLDSTART {json}` line.

use std::path::PathBuf;

use gittables_bench::report::{number_field, peak_rss_kb};
use gittables_corpus::{save_store_as, AnnotatedTable, Corpus, StoreFormat};
use gittables_serve::{build_sidecars, QueryEngine};
use gittables_table::{Provenance, Table};

const DIR_VAR: &str = "GT_COLD_START_DIR";
const MODE_VAR: &str = "GT_COLD_START_MODE";

/// Child half: boots the engine over `$GT_COLD_START_DIR` (sidecar-first
/// via [`QueryEngine::load`], or the rebuild path when
/// `$GT_COLD_START_MODE=materialized`), exercises each endpoint family,
/// and prints its boot stats plus this process's peak RSS. Runs as an
/// inert no-op in a normal suite invocation (the env vars are unset).
#[test]
fn child_probe() {
    let Ok(dir) = std::env::var(DIR_VAR) else {
        return;
    };
    let materialized = std::env::var(MODE_VAR).as_deref() == Ok("materialized");
    let engine = if materialized {
        QueryEngine::load_materialized(&dir).unwrap()
    } else {
        QueryEngine::load(&dir).unwrap()
    };
    // Touch every index (search scores the full matrix) and one table
    // block, so the measured high-water mark covers real serving.
    let hits = engine.search("status quantity price", 3).len();
    let completions = engine.complete(&["col0"], 3).len();
    let _types = engine.type_counts().len(); // synth corpus is unannotated
    let summary = engine.table_summary(0).is_some();
    assert!(hits > 0 && completions > 0 && summary);
    let stats = engine.build_stats();
    println!(
        "COLDSTART {{\"boot_sidecar\":{},\"index_build_ms\":{:.4},\"tables\":{},\"peak_rss_kb\":{}}}",
        u8::from(stats.boot_path == "sidecar"),
        stats.index_build_ms,
        engine.num_tables(),
        peak_rss_kb()
    );
}

/// A synth corpus whose cell data dominates memory: `tables` tables of
/// 300 rows x 6 columns of distinct strings.
fn synth_corpus(tables: usize) -> Corpus {
    let mut c = Corpus::new(format!("cold-{tables}"));
    let header = ["col0", "quantity", "status", "price", "city", "note"];
    for ti in 0..tables {
        let rows: Vec<Vec<String>> = (0..300)
            .map(|r| {
                (0..header.len())
                    .map(|col| format!("cell {ti} {r} {col} padding padding"))
                    .collect()
            })
            .collect();
        let t = Table::from_string_rows(format!("t{ti}"), &header, rows)
            .unwrap()
            .with_provenance(Provenance::new(format!("o/r{ti}"), format!("t{ti}.csv")));
        c.push(AnnotatedTable::new(t));
    }
    c
}

struct Probe {
    boot_sidecar: bool,
    index_build_ms: f64,
    tables: usize,
    peak_rss_kb: u64,
}

/// Re-execs this test binary filtered to [`child_probe`] and parses its
/// `COLDSTART` line.
fn spawn_probe(dir: &PathBuf, mode: &str) -> Probe {
    let exe = std::env::current_exe().expect("current exe");
    let out = std::process::Command::new(exe)
        .args(["child_probe", "--exact", "--nocapture", "--test-threads=1"])
        .env(DIR_VAR, dir)
        .env(MODE_VAR, mode)
        .output()
        .expect("spawn probe child");
    assert!(
        out.status.success(),
        "probe child failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    // `--nocapture` can interleave libtest's own "test child_probe ..."
    // prefix onto the same line, so split on the marker, not the line
    // start.
    let line = stdout
        .split_once("COLDSTART ")
        .unwrap_or_else(|| panic!("no COLDSTART line in probe output:\n{stdout}"))
        .1
        .lines()
        .next()
        .expect("marker is followed by the JSON line");
    Probe {
        boot_sidecar: number_field(line, "boot_sidecar") == Some(1.0),
        index_build_ms: number_field(line, "index_build_ms").expect("index_build_ms"),
        tables: number_field(line, "tables").expect("tables") as usize,
        peak_rss_kb: number_field(line, "peak_rss_kb").expect("peak_rss_kb") as u64,
    }
}

fn store_with_sidecars(tag: &str, tables: usize) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "gt_cold_start_{tag}_{}_{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    save_store_as(&synth_corpus(tables), &dir, 8, StoreFormat::ColV1).unwrap();
    build_sidecars(&dir).unwrap();
    dir
}

#[test]
fn sidecar_boot_rss_stays_near_flat_as_corpus_doubles() {
    let small = store_with_sidecars("small", 32);
    let big = store_with_sidecars("big", 64);

    let lazy_small = spawn_probe(&small, "lazy");
    let lazy_big = spawn_probe(&big, "lazy");
    let mat_small = spawn_probe(&small, "materialized");
    let mat_big = spawn_probe(&big, "materialized");
    std::fs::remove_dir_all(&small).ok();
    std::fs::remove_dir_all(&big).ok();

    assert_eq!(lazy_small.tables, 32);
    assert_eq!(lazy_big.tables, 64);
    assert!(lazy_small.boot_sidecar && lazy_big.boot_sidecar);
    assert!(!mat_small.boot_sidecar && !mat_big.boot_sidecar);

    // The materialized boot visibly pays for the doubled corpus...
    let mat_growth = mat_big.peak_rss_kb.saturating_sub(mat_small.peak_rss_kb);
    assert!(
        mat_growth > 2048,
        "materialized growth only {mat_growth} KB — corpus too small for the regression to be observable \
         (mat {} -> {} KB)",
        mat_small.peak_rss_kb,
        mat_big.peak_rss_kb
    );
    // ...while the sidecar boot's high-water mark stays near flat: its
    // growth is a small fraction of the materialized growth.
    let lazy_growth = lazy_big.peak_rss_kb.saturating_sub(lazy_small.peak_rss_kb);
    assert!(
        lazy_growth * 4 < mat_growth,
        "sidecar boot RSS grew {lazy_growth} KB vs materialized {mat_growth} KB \
         (lazy {} -> {} KB, mat {} -> {} KB)",
        lazy_small.peak_rss_kb,
        lazy_big.peak_rss_kb,
        mat_small.peak_rss_kb,
        mat_big.peak_rss_kb
    );
    assert!(
        lazy_big.peak_rss_kb < mat_big.peak_rss_kb,
        "sidecar boot must peak below the materialized boot ({} vs {} KB)",
        lazy_big.peak_rss_kb,
        mat_big.peak_rss_kb
    );

    // Sidecar boots reassemble, they don't rebuild: ≈ 0 index time.
    assert!(
        lazy_big.index_build_ms < 5.0,
        "sidecar index assembly took {:.2} ms",
        lazy_big.index_build_ms
    );
}

#[test]
fn metrics_report_sidecar_boot_path() {
    let dir = store_with_sidecars("metrics", 4);
    let engine = std::sync::Arc::new(QueryEngine::load(&dir).unwrap());
    let handle = gittables_serve::Server::start(
        engine,
        "127.0.0.1:0",
        gittables_serve::ServerConfig::default(),
    )
    .expect("bind");
    let (status, body) = gittables_serve::get(handle.addr(), "/metrics").expect("metrics");
    assert_eq!(status, 200);
    let snap: gittables_serve::MetricsSnapshot = serde_json::from_str(&body).expect("json");
    assert_eq!(snap.engine.boot_path, "sidecar", "{body}");
    assert_eq!(snap.engine.fallback_reason, None);
    assert!(snap.engine.index_build_ms < 5.0, "{body}");
    gittables_serve::get(handle.addr(), "/shutdown").ok();
    handle.join();
    std::fs::remove_dir_all(&dir).ok();
}
