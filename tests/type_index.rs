//! Pins the inverted semantic-type index against a brute-force scan of
//! every annotation on a pipeline-built synth corpus: same labels, same
//! posting lists in the same order, same counts.

use std::collections::BTreeMap;

use gittables_core::{Pipeline, PipelineConfig};
use gittables_corpus::{Corpus, TypeIndex, TypePosting};
use gittables_githost::GitHost;

fn corpus(seed: u64) -> Corpus {
    let pipeline = Pipeline::new(PipelineConfig::sized(seed, 8, 20));
    let host = GitHost::new();
    pipeline.populate_host(&host);
    pipeline.run(&host).0
}

/// The reference implementation: a straight scan over all annotations in
/// table order, configs in `annotation_configs` order, annotations in
/// stored order.
fn brute_force(corpus: &Corpus) -> BTreeMap<String, Vec<TypePosting>> {
    let mut map: BTreeMap<String, Vec<TypePosting>> = BTreeMap::new();
    for (id, at) in corpus.tables.iter().enumerate() {
        for (method, ontology) in Corpus::annotation_configs() {
            for a in &at.annotations(method, ontology).annotations {
                map.entry(a.label.clone()).or_default().push(TypePosting {
                    table: id,
                    column: a.column,
                    method,
                    ontology,
                    similarity: a.similarity,
                });
            }
        }
    }
    map
}

#[test]
fn posting_lists_match_brute_force_scan() {
    let c = corpus(55);
    let idx = TypeIndex::build(&c);
    let brute = brute_force(&c);
    assert!(!brute.is_empty(), "synth corpus must be annotated");

    // Same label set, in sorted order.
    let brute_labels: Vec<&String> = brute.keys().collect();
    assert_eq!(
        idx.labels().iter().collect::<Vec<_>>(),
        brute_labels,
        "label sets diverge"
    );

    // Same posting lists, byte for byte, in the same order.
    let mut total = 0usize;
    for (label, want) in &brute {
        let got = idx
            .postings(label)
            .unwrap_or_else(|| panic!("{label} missing"));
        assert_eq!(got, want.as_slice(), "postings diverge for `{label}`");
        total += want.len();

        // tables_with == sorted distinct table ids of the brute list.
        let mut tables: Vec<usize> = want.iter().map(|p| p.table).collect();
        tables.sort_unstable();
        tables.dedup();
        assert_eq!(
            idx.tables_with(label),
            tables,
            "tables diverge for `{label}`"
        );
    }
    assert_eq!(idx.total_postings(), total);

    // counts() agrees with the brute-force cardinalities.
    for count in idx.counts() {
        let want = &brute[&count.label];
        assert_eq!(count.postings, want.len(), "{}", count.label);
        let mut tables: Vec<usize> = want.iter().map(|p| p.table).collect();
        tables.sort_unstable();
        tables.dedup();
        assert_eq!(count.tables, tables.len(), "{}", count.label);
    }
}

#[test]
fn index_queries_are_postings_bounded() {
    // The O(postings) promise in practice: looking up every label via the
    // index touches exactly the postings the brute scan assembled — no
    // full-corpus rescan is observable through the public API, and empty
    // lookups stay empty.
    let c = corpus(56);
    let idx = TypeIndex::build(&c);
    assert!(idx.postings("definitely-not-a-semantic-type").is_none());
    for label in idx.labels() {
        let postings = idx.postings(label).expect("listed label resolves");
        assert!(
            !postings.is_empty(),
            "indexed label `{label}` has no postings"
        );
        for p in postings {
            // Every posting must point at a real (table, column) that
            // carries the label under the recorded config.
            let at = c.table_by_id(p.table).expect("table id in range");
            let ann = at
                .annotations(p.method, p.ontology)
                .for_column(p.column)
                .expect("annotated column");
            assert_eq!(&ann.label, label);
            assert_eq!(ann.similarity, p.similarity);
        }
    }
}
