//! End-to-end fault-injection suite: the pipeline run against a seeded
//! [`FlakyHost`] must either *heal* (transient faults: retry/backoff
//! converges to the bit-identical fault-free corpus — the headline
//! robustness oracle) or *quarantine* (permanent faults and exhausted
//! budgets set whole repositories aside deterministically, and a
//! store-backed resume with `--retry-quarantined` re-admits them once the
//! fault is gone).

use std::collections::HashSet;

use gittables_core::{FaultPolicy, Pipeline, PipelineConfig, QuarantineLog};
use gittables_corpus::store::CorpusStore;
use gittables_corpus::Corpus;
use gittables_githost::{
    FaultSpec, FlakyHost, GitHost, HostPool, PoolPolicy, RateBudget, RepoFile, Repository,
};

/// The laptop-scale config with backoff sleeping disabled: delays are
/// still scheduled and accounted (`report.backoff_ms`), the suite just
/// does not wait them out.
fn cfg(seed: u64) -> PipelineConfig {
    PipelineConfig {
        fault: FaultPolicy {
            sleep: false,
            ..FaultPolicy::default()
        },
        ..PipelineConfig::small(seed)
    }
}

/// A host populated for `pipeline`'s configuration.
fn populated(pipeline: &Pipeline) -> GitHost {
    let host = GitHost::new();
    pipeline.populate_host(&host);
    host
}

/// Repository names a corpus's tables come from.
fn corpus_repos(corpus: &Corpus) -> HashSet<String> {
    corpus
        .tables
        .iter()
        .map(|at| at.table.provenance().repository.clone())
        .collect()
}

/// The headline oracle: with only transient faults (errors + truncated
/// downloads, both below the retry limits) the retrying pipeline's corpus
/// and counters are bit-identical to the fault-free run, in both run
/// modes — the faults leave no trace beyond the retry accounting.
#[test]
fn transient_faults_converge_to_fault_free_corpus() {
    // Convergence needs bounds the fault schedule cannot exhaust: streaks
    // cap below `max_attempts` by construction, and the per-repository
    // budget is lifted out of the way (budget exhaustion is its own test).
    let mut config = cfg(77);
    config.fault.repo_retry_budget = u32::MAX;
    let pipeline = Pipeline::new(config);
    let (clean_corpus, clean_report) = pipeline.run_parallel(&populated(&pipeline));

    let flaky_serial = FlakyHost::new(populated(&pipeline), FaultSpec::transient(9, 0.2));
    let (serial_corpus, serial_report) = pipeline.run(&flaky_serial);
    let flaky_parallel = FlakyHost::new(populated(&pipeline), FaultSpec::transient(9, 0.2));
    let (parallel_corpus, parallel_report) = pipeline.run_parallel(&flaky_parallel);

    let counts = flaky_serial.counts();
    assert!(
        counts.transient > 0 && counts.truncated > 0,
        "scenario must actually inject faults: {counts:?}"
    );
    assert!(serial_report.retries > 0, "faults must be retried");
    assert!(
        serial_report.backoff_ms > 0,
        "retries must schedule backoff"
    );
    assert!(
        serial_report.quarantined_repos.is_empty() && serial_report.quarantined_files.is_empty(),
        "transient-only faults must not quarantine: {:?}",
        serial_report.quarantined_repos
    );

    // Same deterministic fault schedule in both run modes (extraction is
    // serial in both) ⇒ identical reports; and the corpus is exactly the
    // fault-free one.
    assert_eq!(serial_report, parallel_report);
    assert_eq!(serial_corpus, parallel_corpus);
    assert_eq!(serial_corpus, clean_corpus);
    assert_eq!(serial_report.kept, clean_report.kept);
    assert_eq!(serial_report.fetched, clean_report.fetched);
}

/// Permanently corrupt files quarantine their repository — recorded with
/// a reason, excluded from the corpus — and two identical runs agree
/// bit-for-bit on corpus, report, and quarantine lists.
#[test]
fn corrupt_content_quarantines_repository_deterministically() {
    let pipeline = Pipeline::new(cfg(31));
    let run = || {
        let flaky = FlakyHost::new(
            populated(&pipeline),
            FaultSpec {
                seed: 5,
                corrupt_rate: 0.15,
                ..FaultSpec::default()
            },
        );
        let out = pipeline.run_parallel(&flaky);
        (out, flaky.counts())
    };
    let ((corpus_a, report_a), counts_a) = run();
    let ((corpus_b, report_b), counts_b) = run();
    assert_eq!(counts_a, counts_b);
    assert!(counts_a.corrupt > 0, "scenario must hit corrupt files");

    assert_eq!(corpus_a, corpus_b);
    assert_eq!(report_a, report_b);
    assert!(!report_a.quarantined_repos.is_empty());
    assert!(report_a
        .quarantined_repos
        .iter()
        .all(|q| q.reason == "corrupt content"));
    assert!(report_a
        .quarantined_files
        .iter()
        .all(|q| q.reason == "corrupt content"));

    // Quarantine is repository-granular: nothing from a quarantined
    // repository reaches the corpus, and the stage counters stay
    // consistent over the surviving files.
    let kept_repos = corpus_repos(&corpus_a);
    for q in &report_a.quarantined_repos {
        assert!(
            !kept_repos.contains(&q.name),
            "{} leaked into corpus",
            q.name
        );
    }
    assert_eq!(report_a.parsed + report_a.parse_failed, report_a.fetched);
}

/// Exhausted retry bounds are permanent-fault-equivalent: a zero
/// per-repository retry budget turns the first would-be retry into a
/// quarantine, and a too-small per-operation attempt limit does the same
/// once a fault streak outlasts it.
#[test]
fn exhausted_retry_bounds_quarantine() {
    // Budget path: any repository needing even one retry is quarantined.
    let mut budget_cfg = cfg(12);
    budget_cfg.fault.repo_retry_budget = 0;
    let pipeline = Pipeline::new(budget_cfg);
    let flaky = FlakyHost::new(populated(&pipeline), FaultSpec::transient(3, 0.3));
    let (corpus, report) = pipeline.run_parallel(&flaky);
    assert!(flaky.counts().transient > 0);
    assert!(
        report
            .quarantined_repos
            .iter()
            .any(|q| q.reason == "retry budget exhausted"),
        "{:?}",
        report.quarantined_repos
    );
    let kept = corpus_repos(&corpus);
    assert!(report
        .quarantined_repos
        .iter()
        .all(|q| !kept.contains(&q.name)));

    // Attempt-limit path: streaks of 3 outlast a 2-attempt limit.
    let mut attempts_cfg = cfg(12);
    attempts_cfg.fault.max_attempts = 2;
    let pipeline = Pipeline::new(attempts_cfg);
    let flaky = FlakyHost::new(
        populated(&pipeline),
        FaultSpec {
            seed: 6,
            transient_rate: 0.4,
            max_consecutive: 3,
            ..FaultSpec::default()
        },
    );
    let (_, report) = pipeline.run_parallel(&flaky);
    assert!(
        report
            .quarantined_repos
            .iter()
            .any(|q| q.reason == "retry attempts exhausted"),
        "{:?}",
        report.quarantined_repos
    );
}

/// The self-healing store resume: a run against a corrupting host
/// quarantines repositories into `quarantine.json`; a later fault-free
/// run keeps them out (sticky) until `--retry-quarantined` re-attempts
/// them — after which the corpus, report, and (empty) quarantine log all
/// match the never-faulted run exactly.
#[test]
fn store_resume_heals_quarantined_repositories() {
    let pipeline = Pipeline::new(cfg(58));
    let (clean_corpus, clean_report) = pipeline.run_parallel(&populated(&pipeline));

    let dir = std::env::temp_dir().join(format!(
        "gt_fault_heal_{}_{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    let store = CorpusStore::create(&dir, pipeline.corpus_name()).unwrap();

    // Run 1: the host corrupts some files permanently.
    let flaky = FlakyHost::new(
        populated(&pipeline),
        FaultSpec {
            seed: 2,
            corrupt_rate: 0.15,
            ..FaultSpec::default()
        },
    );
    let faulted = pipeline.run_to_store(&flaky, &store).unwrap();
    assert!(
        flaky.counts().corrupt > 0,
        "scenario must corrupt something"
    );
    assert!(!faulted.report.quarantined_repos.is_empty());
    let log = QuarantineLog::load(&dir).unwrap();
    assert_eq!(log.repos, faulted.report.quarantined_repos);
    assert!(faulted.corpus.len() < clean_corpus.len());

    // Run 2: the host is healthy again, but quarantine is sticky — the
    // repositories stay out without any re-fetch, and the log survives.
    let sticky = pipeline
        .run_to_store(&populated(&pipeline), &store)
        .unwrap();
    assert_eq!(sticky.corpus, faulted.corpus);
    assert_eq!(
        sticky.report.quarantined_repos,
        faulted.report.quarantined_repos
    );
    assert_eq!(sticky.shards_written, 0);
    assert_eq!(QuarantineLog::load(&dir).unwrap().repos, log.repos);

    // Run 3: retry the quarantine against the healthy host — the
    // repositories heal, the corpus converges to the fault-free run, and
    // the quarantine log empties.
    let healed = pipeline
        .run_to_store_opts(&populated(&pipeline), &store, None, true)
        .unwrap();
    assert_eq!(healed.corpus, clean_corpus);
    assert_eq!(healed.report, clean_report);
    assert!(
        healed.shards_written > 0,
        "healed repositories are processed"
    );
    assert!(QuarantineLog::load(&dir).unwrap().repos.is_empty());

    std::fs::remove_dir_all(&dir).ok();
}

/// Satellite regression: a worker panicking on pathological input (here:
/// a poisoned synthetic table tripping the test-hook marker) quarantines
/// that repository instead of crashing the run — every other repository
/// is processed normally.
#[test]
fn poisoned_table_quarantines_repository_not_the_run() {
    let marker = "poisonmarkerx";
    let clean_pipeline = Pipeline::new(cfg(64));
    let (clean_corpus, _) = clean_pipeline.run_parallel(&populated(&clean_pipeline));

    let mut poisoned_cfg = cfg(64);
    poisoned_cfg.fault.poison_marker = Some(marker.to_string());
    let pipeline = Pipeline::new(poisoned_cfg);
    let host = populated(&pipeline);
    // One extra repository whose CSV matches the first topic's query and
    // carries the poison marker in a cell.
    let noun = pipeline.config.topics[0].noun.clone();
    host.add_repository(Repository {
        full_name: "poison/repo".into(),
        license: Some("mit".into()),
        fork: false,
        files: vec![RepoFile::new(
            "bad.csv",
            format!("{noun},value\n{marker},1\n"),
        )],
    });

    for (corpus, report) in [pipeline.run(&host), pipeline.run_parallel(&host)] {
        assert!(
            report
                .quarantined_repos
                .iter()
                .any(|q| q.name == "poison/repo" && q.reason == "worker panic"),
            "{:?}",
            report.quarantined_repos
        );
        assert!(!corpus_repos(&corpus).contains("poison/repo"));
        // The panic quarantined exactly one repository; everything else
        // matches the run without the poisoned repository present.
        assert_eq!(corpus, clean_corpus);
        assert_eq!(report.parsed + report.parse_failed, report.fetched);
    }
}

/// Builds a deterministic-mode pool of `replicas` transient-faulty
/// mirrors of `pipeline`'s host. Per-replica fault schedules differ
/// (seed + index) while hedging and a modest rate budget stay active, so
/// the oracle exercises every scheduling path. Only transport errors are
/// injected — truncation is a *content*-level fault the client detects
/// against the advertised size (the single-host oracle covers it), so
/// the pool cannot and should not absorb it.
fn transient_pool(
    pipeline: &Pipeline,
    replicas: usize,
    rate: f64,
    seed: u64,
) -> HostPool<FlakyHost<GitHost>> {
    let backends: Vec<FlakyHost<GitHost>> = (0..replicas)
        .map(|i| {
            FlakyHost::new(
                populated(pipeline),
                FaultSpec {
                    seed: seed + i as u64,
                    transient_rate: rate,
                    ..FaultSpec::default()
                },
            )
        })
        .collect();
    HostPool::new(
        backends,
        PoolPolicy {
            seed,
            max_attempts: 10,
            budget: Some(RateBudget {
                capacity: 8,
                refill_interval_ms: 5,
            }),
            deterministic: true,
            ..PoolPolicy::default()
        },
    )
}

/// The multi-backend extension of the headline oracle: with only
/// transient faults across a 2-replica [`HostPool`] — including hedged
/// and failed-over operations — the corpus AND the report are
/// bit-identical to the fault-free single-host run, in serial, parallel,
/// and store-resumed modes. The pool absorbs every fault before the
/// retry layer can even see it.
#[test]
fn transient_faults_over_host_pool_are_invisible() {
    let pipeline = Pipeline::new(cfg(83));
    let (clean_corpus, clean_report) = pipeline.run_parallel(&populated(&pipeline));

    let pool_serial = transient_pool(&pipeline, 2, 0.25, 17);
    let (serial_corpus, serial_report) = pipeline.run(&pool_serial);
    let pool_parallel = transient_pool(&pipeline, 2, 0.25, 17);
    let (parallel_corpus, parallel_report) = pipeline.run_parallel(&pool_parallel);

    // The scenario must genuinely exercise the pool: faults injected on
    // BOTH replicas, failovers taken, hedges issued.
    let stats = pool_serial.stats();
    for i in 0..2 {
        assert!(
            pool_serial.replica(i).counts().transient > 0,
            "replica {i} injected no faults"
        );
    }
    assert!(stats.failovers > 0, "no failovers exercised: {stats:?}");
    assert!(stats.hedges > 0, "no hedges exercised: {stats:?}");
    assert!(
        stats.replicas.iter().all(|r| r.served > 0),
        "both replicas must serve traffic: {stats:?}"
    );

    // Bit-identical to the fault-free run — corpus and full report, so
    // zero retries, zero backoff, zero quarantine leaked through.
    assert_eq!(serial_corpus, clean_corpus);
    assert_eq!(serial_report, clean_report);
    assert_eq!(parallel_corpus, clean_corpus);
    assert_eq!(parallel_report, clean_report);

    // Deterministic mode: an identical pool run reproduces the exact
    // scheduling stats, not just the corpus.
    assert_eq!(pool_parallel.stats(), stats);

    // Store-resumed mode: a capped first pass plus a completing second
    // pass over fresh pools lands on the same corpus and an empty
    // quarantine.
    let dir = std::env::temp_dir().join(format!(
        "gt_pool_oracle_{}_{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    let store = CorpusStore::create(&dir, pipeline.corpus_name()).unwrap();
    let first = pipeline
        .run_to_store_opts(
            &transient_pool(&pipeline, 2, 0.25, 17),
            &store,
            Some(2),
            false,
        )
        .unwrap();
    assert_eq!(first.shards_written, 2);
    let resumed = pipeline
        .run_to_store_opts(&transient_pool(&pipeline, 2, 0.25, 17), &store, None, false)
        .unwrap();
    assert_eq!(resumed.corpus, clean_corpus);
    assert!(resumed.report.quarantined_repos.is_empty());
    assert!(QuarantineLog::load(&dir).unwrap().repos.is_empty());
    std::fs::remove_dir_all(&dir).ok();
}

/// A replica blackout mid-pool: one backend fails every operation, the
/// other is healthy. The circuit breaker ejects the dead replica after
/// its failure threshold, the pool serves everything from the survivor,
/// and the pipeline output is exactly the fault-free run.
#[test]
fn replica_blackout_trips_breaker_and_leaves_no_trace() {
    let pipeline = Pipeline::new(cfg(91));
    let (clean_corpus, clean_report) = pipeline.run_parallel(&populated(&pipeline));

    let dead = FlakyHost::new(
        populated(&pipeline),
        FaultSpec {
            seed: 40,
            transient_rate: 1.0,
            max_consecutive: u32::MAX,
            ..FaultSpec::default()
        },
    );
    let healthy = FlakyHost::new(populated(&pipeline), FaultSpec::transient(41, 0.0));
    let pool = HostPool::new(
        vec![dead, healthy],
        PoolPolicy {
            seed: 7,
            deterministic: true,
            ..PoolPolicy::default()
        },
    );
    let (corpus, report) = pipeline.run_parallel(&pool);

    assert_eq!(corpus, clean_corpus);
    assert_eq!(report, clean_report);

    let stats = pool.stats();
    assert!(
        stats.breaker_opens() >= 1,
        "dead replica's breaker never opened: {stats:?}"
    );
    assert_eq!(stats.replicas[0].served, 0, "dead replica served traffic");
    assert_eq!(
        stats.replicas[1].transient_errors, 0,
        "healthy replica saw faults"
    );
    assert!(stats.replicas[1].served > 0);
}
