//! End-to-end SQL-dump ingestion (ISSUE 9): mixed CSV + SQL corpora flow
//! through fetch → parse → annotate → store with the same determinism,
//! fault-handling, and resume guarantees as CSV-only corpora, and
//! malformed dumps are *content* failures — counted in
//! `PipelineReport::parse_failed`, never a panic or a quarantine.

use gittables_core::{FaultPolicy, Pipeline, PipelineConfig};
use gittables_corpus::store::CorpusStore;
use gittables_githost::{FaultSpec, FlakyHost, GitHost, RepoFile, Repository};
use gittables_synth::wordnet::Topic;
use gittables_synth::Domain;

/// Laptop-scale mixed corpus: roughly half the synthesized files are SQL
/// dumps. Backoff sleeping is disabled (still accounted) to keep the
/// suite fast.
fn mixed_cfg(seed: u64) -> PipelineConfig {
    PipelineConfig {
        sql_file_prob: 0.5,
        fault: FaultPolicy {
            sleep: false,
            ..FaultPolicy::default()
        },
        ..PipelineConfig::small(seed)
    }
}

fn populated(pipeline: &Pipeline) -> GitHost {
    let host = GitHost::new();
    pipeline.populate_host(&host);
    host
}

fn temp_store_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "gt_sql_ingest_{tag}_{}_{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

#[test]
fn mixed_corpus_ingests_both_kinds() {
    let pipeline = Pipeline::new(mixed_cfg(91));
    let (corpus, report) = pipeline.run_parallel(&populated(&pipeline));
    let sql_tables = corpus
        .tables
        .iter()
        .filter(|at| at.table.provenance().path.ends_with(".sql"))
        .count();
    let csv_tables = corpus.len() - sql_tables;
    assert!(sql_tables > 0, "no tables came from SQL dumps");
    assert!(csv_tables > 0, "no tables came from CSV files");
    // Per-file invariant unchanged by multi-table dumps: parsed and
    // parse_failed count files; kept counts tables.
    assert_eq!(report.parsed + report.parse_failed, report.fetched);
    assert_eq!(report.kept, corpus.len());
    // SQL tables are named after their SQL table, not the file.
    let named = corpus
        .tables
        .iter()
        .find(|at| at.table.provenance().path.ends_with(".sql"))
        .expect("a SQL table exists");
    assert!(!named.table.name().ends_with(".sql"));
}

/// The ISSUE 9 acceptance oracle: a mixed corpus is bit-identical across
/// serial, parallel, and store-backed-resumed runs.
#[test]
fn mixed_corpus_serial_parallel_resumed_identical() {
    let pipeline = Pipeline::new(mixed_cfg(93));
    let (serial, serial_report) = pipeline.run(&populated(&pipeline));
    let (parallel, parallel_report) = pipeline.run_parallel(&populated(&pipeline));
    assert_eq!(serial, parallel);
    assert_eq!(serial_report, parallel_report);

    // Store-backed, interrupted after a few shards, then resumed to
    // completion: same corpus and report again.
    let dir = temp_store_dir("resume");
    let store = CorpusStore::create(&dir, pipeline.corpus_name()).unwrap();
    let host = populated(&pipeline);
    let partial = pipeline
        .run_to_store_bounded(&host, &store, Some(3))
        .unwrap();
    assert_eq!(partial.shards_written, 3);
    let resumed = pipeline.run_to_store(&host, &store).unwrap();
    assert_eq!(resumed.corpus, serial);
    assert_eq!(resumed.report, serial_report);
    assert_eq!(resumed.shards_skipped, 3);
    std::fs::remove_dir_all(&dir).ok();
}

/// Transient host faults (errors + truncated downloads) on a mixed corpus
/// heal by retry: the corpus is bit-identical to the fault-free run.
#[test]
fn mixed_corpus_transient_faults_heal() {
    let mut config = mixed_cfg(95);
    config.fault.repo_retry_budget = u32::MAX;
    // Convergence needs bounds the schedule cannot exhaust. Transient and
    // truncation streaks cap at `max_consecutive` (2) *independently*, so
    // one fetch can burn 2 + 2 = 4 failed attempts — give it one more.
    config.fault.max_attempts = 5;
    let pipeline = Pipeline::new(config);
    let (clean, _) = pipeline.run_parallel(&populated(&pipeline));

    let flaky = FlakyHost::new(populated(&pipeline), FaultSpec::transient(9, 0.2));
    let (healed, report) = pipeline.run_parallel(&flaky);
    let counts = flaky.counts();
    assert!(counts.transient > 0, "no faults injected: {counts:?}");
    assert!(report.retries > 0);
    assert!(
        report.quarantined_repos.is_empty() && report.quarantined_files.is_empty(),
        "repos: {:?}\nfiles: {:?}",
        report.quarantined_repos,
        report.quarantined_files
    );
    assert_eq!(healed, clean);
}

/// Malformed dumps — truncated statements, unterminated literals, binary
/// garbage — are parse failures. They must not panic a worker and must
/// not quarantine anything: quarantine is for *host* faults, parse_failed
/// for *content* faults.
#[test]
fn malformed_dumps_fail_parse_without_quarantine() {
    let host = GitHost::new();
    host.add_repository(Repository {
        full_name: "acme/dumps".into(),
        license: Some("mit".into()),
        fork: false,
        files: vec![
            RepoFile::new(
                "good.sql",
                "CREATE TABLE orders (id int, total int, region text);\n\
                 INSERT INTO orders VALUES (1,10,'east'),(2,20,'west'),(3,30,'north');\n",
            ),
            RepoFile::new(
                "truncated.sql",
                "-- orders dump\nCREATE TABLE orders (id int, total int",
            ),
            RepoFile::new(
                "unterminated.sql",
                "INSERT INTO orders VALUES (1, 'never closed\n",
            ),
            RepoFile::new(
                "garbage.sql",
                "orders \u{1}\u{2}\u{7f}\u{3}\u{4} not sql at all",
            ),
            RepoFile::new("good.csv", "orders,total\n1,10\n2,20\n"),
        ],
    });
    let mut config = mixed_cfg(97);
    config.topics = vec![Topic {
        noun: "orders".into(),
        domain: Domain::Business,
    }];
    let pipeline = Pipeline::new(config);
    let (corpus, report) = pipeline.run_parallel(&host);

    assert_eq!(report.fetched, 5);
    assert_eq!(report.parsed, 2, "good.sql and good.csv parse");
    assert_eq!(report.parse_failed, 3, "each malformed dump is one failure");
    assert!(
        report.quarantined_repos.is_empty() && report.quarantined_files.is_empty(),
        "content failures must never quarantine: {:?}",
        report.quarantined_repos
    );
    // The healthy dump's table made it through with SQL naming.
    assert!(corpus
        .tables
        .iter()
        .any(|at| at.table.name() == "orders" && at.table.provenance().path == "good.sql"));
}
