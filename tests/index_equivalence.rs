//! Equivalence of the contiguous dot-product [`EmbeddingIndex`] with the
//! pre-refactor implementation: per-label `Vec<Vec<f32>>` rows scored by
//! full cosine (norms recomputed per query). The refactor stores one flat
//! L2-pre-normalized matrix and scores with a plain dot product, so the
//! top-1 neighbour over the full dbpedia ontology must be preserved for
//! every label and for messy real-world-style header queries.

use gittables_embed::{EmbeddingIndex, NgramEmbedder};
use gittables_ontology::{dbpedia, normalize_label};

/// The historical scoring path: cosine with norms computed per call.
fn ref_cosine(a: &[f32], b: &[f32]) -> f32 {
    let dot: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
    let nb: f32 = b.iter().map(|x| x * x).sum::<f32>().sqrt();
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    (dot / (na * nb)).clamp(-1.0, 1.0)
}

/// Pre-refactor brute top-1: argmax of cosine over unnormalized row
/// vectors, ties broken by ascending index.
fn ref_top1(embedder: &NgramEmbedder, rows: &[Vec<f32>], query: &str) -> Option<(usize, f32)> {
    let qv = embedder.embed(query);
    let mut best: Option<(usize, f32)> = None;
    for (i, v) in rows.iter().enumerate() {
        let sim = ref_cosine(&qv, v);
        if best.is_none_or(|(_, b)| sim > b) {
            best = Some((i, sim));
        }
    }
    best
}

fn build() -> (Vec<String>, Vec<Vec<f32>>, EmbeddingIndex) {
    let ontology = dbpedia();
    let labels: Vec<String> = ontology.types().iter().map(|t| t.label.clone()).collect();
    let embedder = NgramEmbedder::default();
    let rows: Vec<Vec<f32>> = labels.iter().map(|l| embedder.embed(l)).collect();
    let index = EmbeddingIndex::build(embedder, &labels);
    (labels, rows, index)
}

/// Messy header-style queries: abbreviations, typos, snake_case survivors.
const HEADER_QUERIES: &[&str] = &[
    "cust_name",
    "tot_price",
    "ship_city",
    "created_at",
    "birth_date",
    "order numbr",
    "speciess",
    "country code",
    "emial",
    "first name",
    "lat",
    "lon",
    "postal cd",
    "phone no",
    "user id",
];

#[test]
fn brute_dot_product_matches_reference_cosine_on_full_dbpedia() {
    let (labels, rows, index) = build();
    assert_eq!(index.len(), labels.len());
    // Every 7th label as a query keeps the quadratic reference affordable
    // while sweeping the whole alphabet of type labels.
    let queries: Vec<String> = labels
        .iter()
        .step_by(7)
        .map(|l| normalize_label(l))
        .chain(HEADER_QUERIES.iter().map(|q| normalize_label(q)))
        .collect();
    for q in &queries {
        let (ref_idx, ref_sim) = ref_top1(index.embedder(), &rows, q).expect("non-empty");
        let got = index.nearest_brute(q, 1)[0];
        // Pre-normalizing rows changes low-order float bits, so a genuine
        // near-tie may legitimately flip; anything else must agree exactly.
        assert!(
            got.index == ref_idx || (got.similarity - ref_sim).abs() < 1e-5,
            "query {q:?}: new top-1 {} ({}) vs reference {} ({})",
            labels[got.index],
            got.similarity,
            labels[ref_idx],
            ref_sim,
        );
        assert!(
            (got.similarity - ref_sim).abs() < 1e-4,
            "query {q:?}: similarity drifted: {} vs {}",
            got.similarity,
            ref_sim
        );
    }
}

#[test]
fn pruned_matches_brute_top1_on_every_label() {
    let (labels, _, index) = build();
    for label in &labels {
        let q = normalize_label(label);
        if q.is_empty() {
            continue;
        }
        let brute = index.nearest_brute(&q, 1)[0];
        let pruned = index.nearest_pruned(&q, 1)[0];
        assert_eq!(
            pruned.index, brute.index,
            "label {label:?}: pruned {} vs brute {}",
            labels[pruned.index], labels[brute.index]
        );
        assert_eq!(pruned.similarity, brute.similarity);
    }
}

#[test]
fn pruned_matches_reference_pruned_on_header_queries() {
    // Pruning is lossy by design (a label sharing no n-gram can still score
    // higher — "emial" does exactly that), so the oracle here is the
    // *pre-refactor pruned* search: reference cosine restricted to the same
    // candidate set, brute fallback when it is empty.
    let (labels, rows, index) = build();
    for q in HEADER_QUERIES {
        let q = normalize_label(q);
        let cands = index.candidates(&q);
        let qv = index.embedder().embed(&q);
        let reference = if cands.is_empty() {
            ref_top1(index.embedder(), &rows, &q)
        } else {
            let mut best: Option<(usize, f32)> = None;
            for &i in &cands {
                let sim = ref_cosine(&qv, &rows[i]);
                if best.is_none_or(|(_, b)| sim > b) {
                    best = Some((i, sim));
                }
            }
            best
        };
        let (ref_idx, ref_sim) = reference.expect("non-empty index");
        let pruned = index.nearest_pruned(&q, 1)[0];
        assert!(
            pruned.index == ref_idx || (pruned.similarity - ref_sim).abs() < 1e-5,
            "query {q:?}: pruned {} ({}) vs reference pruned {} ({})",
            labels[pruned.index],
            pruned.similarity,
            labels[ref_idx],
            ref_sim,
        );
    }
}
