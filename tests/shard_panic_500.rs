//! Satellite regression for query-time panic isolation: a panicking
//! shard thread must turn into a typed HTTP 500 (with the panic counted
//! in `/metrics` as `shard_errors`) — never a hung request or a dead
//! server. Runs in its own test binary because the panic is injected via
//! the process-wide `GITTABLES_PANIC_SHARD` hook, which must not race
//! other tests' router calls.

use gittables_corpus::{save_store, AnnotatedTable, Corpus};
use gittables_serve::{client, MetricsSnapshot, Server, ServerConfig, ShardSet};
use gittables_table::{Provenance, Table};

fn corpus() -> Corpus {
    let mut c = Corpus::new("panic500");
    for ti in 0..6 {
        let rows: Vec<Vec<String>> = (0..4)
            .map(|r| (0..3).map(|col| format!("cell {ti} {r} {col}")).collect())
            .collect();
        let t = Table::from_string_rows(format!("t{ti}"), &["col0", "status", "price"], rows)
            .unwrap()
            .with_provenance(Provenance::new(format!("o/r{ti}"), format!("t{ti}.csv")));
        c.push(AnnotatedTable::new(t));
    }
    c
}

#[test]
fn panicking_shard_returns_typed_500_and_server_survives() {
    let dir = std::env::temp_dir().join(format!("gt_panic500_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    save_store(&corpus(), &dir, 2).unwrap();

    let set = ShardSet::load(&dir, 2).unwrap();
    assert_eq!(set.num_shards(), 2);
    let handle = Server::start_set(
        set,
        "127.0.0.1:0",
        ServerConfig {
            // No response cache: the panic must not be masked by a cached
            // answer for the same target.
            cache_capacity: 0,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = handle.addr();

    let (status, _) = client::get(addr, "/search?q=status&k=3").unwrap();
    assert_eq!(status, 200, "baseline query must succeed");

    // Arm the hook: shard 1's query thread panics on every fan-out.
    std::env::set_var("GITTABLES_PANIC_SHARD", "1");
    for target in ["/search?q=status&k=3", "/complete?prefix=col&k=3", "/types"] {
        let (status, body) = client::get(addr, target).unwrap();
        assert_eq!(status, 500, "{target}: {body}");
        assert!(
            body.contains("panicked"),
            "{target}: 500 body must name the panic, got: {body}"
        );
    }
    std::env::remove_var("GITTABLES_PANIC_SHARD");

    // The panics were counted, and the server keeps serving normally.
    let (status, body) = client::get(addr, "/metrics").unwrap();
    assert_eq!(status, 200);
    let snap: MetricsSnapshot = serde_json::from_str(&body).unwrap();
    assert_eq!(snap.shard_errors, 3, "{body}");
    let (status, _) = client::get(addr, "/search?q=status&k=3").unwrap();
    assert_eq!(status, 200, "server must recover once the hook is unset");

    handle.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
