//! Concurrency tests: the host and annotators are shared immutably across
//! pipeline workers; verify they behave under parallel access.

use std::sync::Arc;

use gittables_annotate::{SemanticAnnotator, SyntacticAnnotator};
use gittables_githost::{GitHost, Query, RepoFile, Repository};
use gittables_ontology::dbpedia;
use gittables_table::Table;

fn populated_host(n: usize) -> GitHost {
    let host = GitHost::new();
    for i in 0..n {
        host.add_repository(Repository {
            full_name: format!("u{i}/r{i}"),
            license: Some("mit".into()),
            fork: false,
            files: vec![RepoFile::new("f.csv", format!("id,v\n{i},{}\n", i * 2))],
        });
    }
    host
}

#[test]
fn parallel_searches_agree_with_serial() {
    let host = Arc::new(populated_host(500));
    let serial = host.search_api().count(&Query::csv("id"));
    let mut handles = Vec::new();
    for _ in 0..8 {
        let host = host.clone();
        handles.push(std::thread::spawn(move || {
            let api = host.search_api();
            (0..20)
                .map(|_| api.count(&Query::csv("id")))
                .collect::<Vec<_>>()
        }));
    }
    for h in handles {
        for c in h.join().expect("search thread") {
            assert_eq!(c, serial);
        }
    }
}

#[test]
fn concurrent_insert_and_search_is_safe() {
    let host = Arc::new(GitHost::new());
    let writer = {
        let host = host.clone();
        std::thread::spawn(move || {
            for i in 0..200 {
                host.add_repository(Repository {
                    full_name: format!("w/r{i}"),
                    license: None,
                    fork: false,
                    files: vec![RepoFile::new("f.csv", "id\n1\n")],
                });
            }
        })
    };
    let reader = {
        let host = host.clone();
        std::thread::spawn(move || {
            let api = host.search_api();
            let mut last = 0;
            for _ in 0..200 {
                let c = api.count(&Query::csv("id"));
                assert!(c >= last, "count must be monotone");
                last = c;
            }
        })
    };
    writer.join().expect("writer");
    reader.join().expect("reader");
    assert_eq!(host.search_api().count(&Query::csv("id")), 200);
}

#[test]
fn annotators_shared_across_threads() {
    let ont = Arc::new(dbpedia());
    let sem = Arc::new(SemanticAnnotator::new(ont.clone()));
    let syn = Arc::new(SyntacticAnnotator::new(ont));
    let table = Arc::new(
        Table::from_rows(
            "t",
            &["id", "species", "country", "total_price"],
            &[&["1", "Homo sapiens", "Vietnam", "9.5"]],
        )
        .unwrap(),
    );
    let expected_sem = sem.annotate(&table);
    let expected_syn = syn.annotate(&table);
    let mut handles = Vec::new();
    for _ in 0..8 {
        let sem = sem.clone();
        let syn = syn.clone();
        let table = table.clone();
        handles.push(std::thread::spawn(move || {
            (sem.annotate(&table), syn.annotate(&table))
        }));
    }
    for h in handles {
        let (s, y) = h.join().expect("annotator thread");
        assert_eq!(s, expected_sem);
        assert_eq!(y, expected_syn);
    }
}
